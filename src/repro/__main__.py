"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``
    Solve an EMP query on a registry dataset or a GeoJSON file and
    print the solution report; optionally write GeoJSON/SVG output.
``check``
    Run the preflight gate (dataset lint, component scan, per-
    constraint relaxation bounds) plus the feasibility phase and print
    both reports; ``--preflight-output`` writes the machine-readable
    JSON report. Exits 1 when preflight rejects the instance.
``datasets``
    List the built-in dataset registry (Table I of the paper).
``report``
    Alias for ``python -m repro.bench.report``.
``obs``
    Inspect a solve's telemetry event log (written via
    ``solve --trace-output``): ``obs report`` renders the span tree,
    ``obs chrome`` exports Chrome ``trace_event`` JSON for
    ``chrome://tracing``, ``obs prom`` prints the final metrics in
    Prometheus text exposition, ``obs validate`` checks the log for
    unclosed spans / malformed records. ``obs top`` and ``obs tail``
    are the live operations console: they poll a running solve
    service's HTTP API (jobs list + offset-based event reads) and
    render a fleet table with per-job progress/ETA/health, or stream
    one job's event log.
``serve``
    Start the durable solve service (HTTP API + worker fleet); alias
    for ``python -m repro.service serve``. The other service commands
    (``worker``, ``submit``, ``status``, ``cancel``, ``reap``) are
    reachable as ``python -m repro service <command>``.

Constraints are given as compact strings, one ``--constraint`` per
constraint: ``AGG:ATTR:LOWER:UPPER`` with ``-`` for an open bound,
e.g. ``SUM:TOTALPOP:20000:-``, ``AVG:EMPLOYED:1500:3500``,
``COUNT::2:40``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .core.constraints import Constraint, ConstraintSet
from .data.datasets import DATASETS, load_dataset
from .data.geojson import dump_geojson, load_geojson
from .exceptions import ReproError, SolverInterrupted
from .fact.config import CertifyLevel, FaCTConfig
from .fact.reporting import (
    format_feasibility_report,
    format_preflight_report,
    format_solution_report,
)
from .fact.solver import FaCT
from .preflight import run_preflight
from .runtime.atomic import atomic_write_text

__all__ = ["main", "parse_constraint"]


def parse_constraint(text: str) -> Constraint:
    """Parse ``AGG:ATTR:LOWER:UPPER`` (``-`` = open bound)."""
    parts = text.split(":")
    if len(parts) != 4:
        raise ReproError(
            f"constraint {text!r} must have form AGG:ATTR:LOWER:UPPER"
        )
    aggregate, attribute, lower_text, upper_text = parts
    lower = float("-inf") if lower_text in ("-", "") else float(lower_text)
    upper = float("inf") if upper_text in ("-", "") else float(upper_text)
    return Constraint(aggregate, attribute, lower, upper)


def _load_collection(args) -> object:
    if args.geojson_input:
        if not args.attributes:
            raise ReproError("--attributes is required with --geojson-input")
        names = args.attributes.split(",")
        return load_geojson(
            args.geojson_input,
            attribute_names=names,
            dissimilarity_attribute=args.dissimilarity or names[-1],
            contiguity=args.contiguity,
        )
    return load_dataset(args.dataset, scale=args.scale)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="2k", help="registry dataset")
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--geojson-input", help="load areas from GeoJSON")
    parser.add_argument(
        "--attributes", help="comma-separated properties (GeoJSON input)"
    )
    parser.add_argument("--dissimilarity", help="dissimilarity attribute")
    parser.add_argument("--contiguity", default="rook",
                        choices=["rook", "queen"])
    parser.add_argument(
        "--constraint",
        "-c",
        action="append",
        default=[],
        metavar="AGG:ATTR:L:U",
        help="may repeat; '-' for an open bound",
    )


def _constraints(args) -> ConstraintSet:
    if args.constraint:
        return ConstraintSet([parse_constraint(c) for c in args.constraint])
    from .data.schema import default_constraints

    return ConstraintSet(default_constraints())


def _run_obs(args) -> int:
    """The ``obs`` subcommand: exporters over a telemetry JSONL file,
    plus the live fleet console (``obs top`` / ``obs tail``)."""
    if args.obs_command == "top":
        from .obs.console import run_top

        return run_top(
            args.url, once=args.once, interval=args.interval
        )
    if args.obs_command == "tail":
        from .obs.console import run_tail

        return run_tail(
            args.url,
            args.job,
            follow=not args.no_follow,
            interval=args.interval,
        )

    from .obs import (
        chrome_trace,
        final_metrics_snapshot,
        prometheus_text,
        read_events,
        render_report,
        validate_events,
    )

    try:
        events = read_events(args.trace)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.obs_command == "validate":
        problems = validate_events(events)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        print(f"ok: {len(events)} events, no unclosed spans")
        return 0
    if args.obs_command == "report":
        print(render_report(events))
        return 0
    if args.obs_command == "chrome":
        payload = json.dumps(chrome_trace(events), sort_keys=True)
        if args.output:
            atomic_write_text(args.output, payload + "\n")
            print(
                f"chrome trace written to {args.output} "
                "(load via chrome://tracing or https://ui.perfetto.dev)"
            )
        else:
            print(payload)
        return 0
    # prom
    snapshot = final_metrics_snapshot(events)
    if snapshot is None:
        print("error: no metrics snapshot in event log", file=sys.stderr)
        return 1
    print(prometheus_text(snapshot), end="")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # The service has its own argument surface; hand over before
    # parsing. ``repro serve …`` == ``repro.service serve …``,
    # ``repro service <cmd> …`` == ``repro.service <cmd> …``.
    if argv and argv[0] in ("serve", "service"):
        from .service.cli import main as service_main

        return service_main(argv if argv[0] == "serve" else argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="EMP regionalization with the FaCT solver",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    solve = commands.add_parser("solve", help="solve an EMP query")
    _add_common(solve)
    solve.add_argument("--seed", type=int, default=7)
    solve.add_argument("--no-tabu", action="store_true")
    solve.add_argument("--restarts", type=int, default=3)
    solve.add_argument(
        "--decompose",
        action="store_true",
        help=(
            "solve a disconnected geography per connected component and "
            "merge (per-component provenance lands in the report and "
            "certificate)"
        ),
    )
    solve.add_argument(
        "--no-preflight",
        action="store_true",
        help=(
            "skip the preflight gate (component scan + relaxation "
            "bounds) and go straight to the feasibility phase"
        ),
    )
    solve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget; on expiry the best-so-far solution is "
            "reported, flagged with its status"
        ),
    )
    solve.add_argument(
        "--strict-timeout",
        action="store_true",
        help="exit with an error on timeout instead of reporting best-so-far",
    )
    solve.add_argument(
        "--certify",
        choices=[CertifyLevel.OFF, CertifyLevel.FINAL, CertifyLevel.PARANOID],
        default=None,
        help=(
            "re-validate the result from first principles: 'final' "
            "certifies the returned solution, 'paranoid' also certifies "
            "phase boundaries (default: REPRO_CERTIFY env var, else off)"
        ),
    )
    solve.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help=(
            "write periodic atomic solve checkpoints to PATH so an "
            "interrupted run can be resumed with --resume-from"
        ),
    )
    solve.add_argument(
        "--resume-from",
        metavar="PATH",
        default=None,
        help=(
            "resume a previous run from its checkpoint file; completed "
            "work units replay and the result is bit-identical to an "
            "uninterrupted run with the same seed"
        ),
    )
    solve.add_argument(
        "--keep-checkpoint",
        action="store_true",
        help=(
            "retain the checkpoint file after a completed solve "
            "(default: deleted on success)"
        ),
    )
    solve.add_argument(
        "--pool-retries",
        type=int,
        default=1,
        metavar="N",
        help="retries per crashed worker-pool task (default 1)",
    )
    solve.add_argument(
        "--pool-retry-backoff",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=(
            "backoff before each worker-pool task retry "
            "(exponential, deterministic jitter; default 0)"
        ),
    )
    solve.add_argument(
        "--certificate-output",
        metavar="PATH",
        default=None,
        help="write the solution certificate as JSON (implies --certify final)",
    )
    solve.add_argument("--geojson-output", help="write regions as GeoJSON")
    solve.add_argument("--svg-output", help="write a region map as SVG")
    solve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (results are identical at any count)",
    )
    solve.add_argument(
        "--portfolio",
        type=int,
        default=1,
        metavar="N",
        help="Tabu portfolio members (best of N independent searches)",
    )
    solve.add_argument(
        "--trace-output",
        metavar="PATH",
        default=None,
        help=(
            "record solve telemetry (spans, events, metric snapshots) "
            "as JSONL; inspect with 'python -m repro obs report PATH'"
        ),
    )
    solve.add_argument(
        "--metrics-output",
        metavar="PATH",
        default=None,
        help=(
            "write the final metrics snapshot (.prom/.txt: Prometheus "
            "text exposition, otherwise JSON)"
        ),
    )

    check = commands.add_parser(
        "check", help="preflight gate + feasibility phase, no solve"
    )
    _add_common(check)
    check.add_argument(
        "--preflight-output",
        metavar="PATH",
        default=None,
        help="write the preflight report as JSON (CI artifact format)",
    )

    commands.add_parser("datasets", help="list the dataset registry")

    report = commands.add_parser(
        "report", help="regenerate all tables/figures (see bench.report)"
    )
    report.add_argument("--scale", type=float, default=1.0)
    report.add_argument("--quick", action="store_true")
    report.add_argument("--output", default="EXPERIMENTS.generated.md")

    obs = commands.add_parser(
        "obs", help="inspect solve telemetry (--trace-output files)"
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    for name, help_text in (
        ("report", "render the span tree and per-phase timing"),
        ("chrome", "export Chrome trace_event JSON (chrome://tracing)"),
        ("prom", "print final metrics in Prometheus text exposition"),
        ("validate", "check the event log (unclosed spans, bad JSONL)"),
    ):
        sub = obs_commands.add_parser(name, help=help_text)
        sub.add_argument("trace", help="telemetry JSONL file")
        if name == "chrome":
            sub.add_argument(
                "--output", "-o", default=None,
                help="write JSON here instead of stdout",
            )

    top = obs_commands.add_parser(
        "top", help="live fleet table (reads the service HTTP API)"
    )
    top.add_argument(
        "--url", default="http://127.0.0.1:8008",
        help="service base URL (default http://127.0.0.1:8008)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (no screen refresh)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh cadence (default 2.0)",
    )

    tail = obs_commands.add_parser(
        "tail", help="stream one job's events from the service API"
    )
    tail.add_argument(
        "--url", default="http://127.0.0.1:8008",
        help="service base URL (default http://127.0.0.1:8008)",
    )
    tail.add_argument("--job", required=True, help="job id to follow")
    tail.add_argument(
        "--no-follow", action="store_true",
        help="print the events recorded so far and exit",
    )
    tail.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="poll cadence while following (default 0.5)",
    )

    args = parser.parse_args(argv)

    try:
        if args.command == "datasets":
            print(f"{'name':>6} | {'areas':>7} | {'components':>10} | description")
            print("-" * 60)
            for spec in DATASETS.values():
                print(
                    f"{spec.name:>6} | {spec.n_areas:>7} | "
                    f"{spec.patches:>10} | {spec.description}"
                )
            return 0

        if args.command == "obs":
            return _run_obs(args)

        if args.command == "report":
            from .bench.report import main as report_main

            forwarded = ["--scale", str(args.scale), "--output", args.output]
            if args.quick:
                forwarded.append("--quick")
            return report_main(forwarded)

        collection = _load_collection(args)
        constraints = _constraints(args)

        if args.command == "check":
            report = run_preflight(collection, constraints)
            print(format_preflight_report(report))
            print(format_feasibility_report(report.feasibility))
            if args.preflight_output:
                atomic_write_text(
                    args.preflight_output,
                    json.dumps(report.as_dict(), indent=1, sort_keys=True)
                    + "\n",
                )
                print(f"preflight report written to {args.preflight_output}")
            return 0 if report.ok else 1

        certify = args.certify
        if args.certificate_output and certify is None:
            certify = CertifyLevel.FINAL
        solver = FaCT(
            FaCTConfig(
                rng_seed=args.seed,
                construction_iterations=args.restarts,
                enable_tabu=not args.no_tabu,
                deadline_seconds=args.timeout,
                strict_interrupt=args.strict_timeout,
                certify=certify,
                checkpoint_path=args.checkpoint,
                checkpoint_keep_on_complete=args.keep_checkpoint,
                pool_task_retries=args.pool_retries,
                pool_retry_backoff_seconds=args.pool_retry_backoff,
                n_jobs=args.jobs,
                tabu_portfolio=args.portfolio,
                trace_path=args.trace_output,
                metrics_path=args.metrics_output,
                preflight=not args.no_preflight,
                decompose_components=args.decompose,
            )
        )
        try:
            solution = solver.solve(
                collection, constraints, resume_from=args.resume_from
            )
        except SolverInterrupted as interrupt:
            print(
                f"error: {interrupt} (re-run without --strict-timeout to "
                "accept best-so-far results)",
                file=sys.stderr,
            )
            return 2
        print(format_solution_report(solution, collection))
        if args.trace_output:
            print(
                f"telemetry written to {args.trace_output} "
                f"(inspect: python -m repro obs report {args.trace_output})"
            )
        if args.metrics_output:
            print(f"metrics written to {args.metrics_output}")
        if args.certificate_output and solution.certificate is not None:
            atomic_write_text(
                args.certificate_output,
                json.dumps(solution.certificate.as_dict(), indent=1,
                           sort_keys=True) + "\n",
            )
            print(f"certificate written to {args.certificate_output}")
        if args.geojson_output:
            dump_geojson(
                collection, args.geojson_output, solution.partition.labels()
            )
            print(f"regions written to {args.geojson_output}")
        if args.svg_output:
            from .viz import partition_to_svg

            partition_to_svg(collection, solution.partition, args.svg_output)
            print(f"map written to {args.svg_output}")
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - CLI dispatch
    raise SystemExit(main())
