"""Lightweight visualization: render partitions as SVG maps.

The paper illustrates its running example with colored region maps
(Figures 1-4). This module renders an :class:`AreaCollection`'s
polygons with one fill color per region into a standalone SVG file —
no plotting dependency required, viewable in any browser, and handy
for eyeballing solver output:

    from repro.viz import partition_to_svg
    partition_to_svg(collection, solution.partition, "regions.svg")

Unassigned areas are hatched gray; region colors cycle through a
color-blind-friendly palette.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from .core.area import AreaCollection
from .core.partition import Partition
from .exceptions import DatasetError

__all__ = ["partition_to_svg", "PALETTE", "UNASSIGNED_FILL"]

# Okabe-Ito palette (color-blind safe) cycled across regions.
PALETTE = (
    "#E69F00",
    "#56B4E9",
    "#009E73",
    "#F0E442",
    "#0072B2",
    "#D55E00",
    "#CC79A7",
    "#999999",
)

UNASSIGNED_FILL = "#DDDDDD"


def _svg_path(polygon, scale: float, min_x: float, max_y: float) -> str:
    """One closed SVG path (y flipped: SVG grows downward)."""
    points = [
        f"{(v.x - min_x) * scale:.2f},{(max_y - v.y) * scale:.2f}"
        for v in polygon.vertices
    ]
    return "M " + " L ".join(points) + " Z"


def partition_to_svg(
    collection: AreaCollection,
    partition: Partition | Mapping[int, int] | None = None,
    path: str | Path | None = None,
    width: float = 800.0,
    stroke: str = "#333333",
) -> str:
    """Render the collection (optionally colored by region) as SVG.

    Parameters
    ----------
    collection:
        Areas; every area must carry a polygon.
    partition:
        A :class:`Partition`, an ``area_id -> region`` mapping, or
        ``None`` (all areas drawn unassigned-gray).
    path:
        When given, the SVG text is also written to this file.
    width:
        Output width in pixels (height preserves the aspect ratio).

    Returns the SVG document as a string.
    """
    polygons = {}
    for area in collection:
        if area.polygon is None:
            raise DatasetError(
                f"area {area.area_id} has no polygon; cannot render SVG"
            )
        polygons[area.area_id] = area.polygon

    if partition is None:
        labels: dict[int, int] = {area_id: -1 for area_id in polygons}
    elif isinstance(partition, Partition):
        labels = partition.labels()
    else:
        labels = {int(k): int(v) for k, v in partition.items()}

    min_x = min(p.bbox.min_x for p in polygons.values())
    max_x = max(p.bbox.max_x for p in polygons.values())
    min_y = min(p.bbox.min_y for p in polygons.values())
    max_y = max(p.bbox.max_y for p in polygons.values())
    extent_x = max(max_x - min_x, 1e-9)
    extent_y = max(max_y - min_y, 1e-9)
    scale = width / extent_x
    height = extent_y * scale

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width:.0f}" height="{height:.0f}" '
        f'viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<rect width="100%" height="100%" fill="white"/>',
    ]
    stroke_width = max(0.4, width / 1600)
    for area_id, polygon in polygons.items():
        label = labels.get(area_id, -1)
        if label < 0:
            fill = UNASSIGNED_FILL
        else:
            fill = PALETTE[label % len(PALETTE)]
        parts.append(
            f'<path d="{_svg_path(polygon, scale, min_x, max_y)}" '
            f'fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{stroke_width:.2f}">'
            f"<title>area {area_id}, region {label}</title></path>"
        )
    parts.append("</svg>")
    document = "\n".join(parts)

    if path is not None:
        Path(path).write_text(document, encoding="utf-8")
    return document
