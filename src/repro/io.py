"""Solution persistence: save and load partitions as JSON.

Regionalization studies iterate: analysts solve, inspect, tweak the
query, and compare against earlier answers. This module serializes a
:class:`~repro.core.partition.Partition` (plus optional metadata such
as the query and solver statistics) to a small JSON document so runs
can be archived and reloaded without recomputing:

    from repro.io import save_partition, load_partition
    save_partition(solution.partition, "run1.json",
                   metadata={"query": [str(c) for c in constraints]})
    partition, metadata = load_partition("run1.json")

The format is stable and versioned (``"format": "repro-partition/1"``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from .core.partition import Partition
from .exceptions import DatasetError
from .runtime.atomic import atomic_write_text

__all__ = ["save_partition", "load_partition", "partition_to_dict",
           "partition_from_dict"]

_FORMAT = "repro-partition/1"


def partition_to_dict(
    partition: Partition, metadata: Mapping | None = None
) -> dict:
    """Serialize a partition (and optional metadata) to plain dicts."""
    return {
        "format": _FORMAT,
        "p": partition.p,
        "regions": [sorted(members) for members in partition.regions],
        "unassigned": sorted(partition.unassigned),
        "metadata": dict(metadata) if metadata else {},
    }


def partition_from_dict(document: Mapping) -> tuple[Partition, dict]:
    """Rebuild a partition (and its metadata) from a serialized dict."""
    if document.get("format") != _FORMAT:
        raise DatasetError(
            f"unsupported partition format {document.get('format')!r}; "
            f"expected {_FORMAT!r}"
        )
    try:
        regions = tuple(
            frozenset(int(i) for i in members)
            for members in document["regions"]
        )
        unassigned = frozenset(int(i) for i in document["unassigned"])
    except (KeyError, TypeError, ValueError) as error:
        raise DatasetError(f"malformed partition document: {error}") from None
    partition = Partition(regions, unassigned)
    declared_p = document.get("p")
    if declared_p is not None and declared_p != partition.p:
        raise DatasetError(
            f"partition document declares p={declared_p} but contains "
            f"{partition.p} regions"
        )
    return partition, dict(document.get("metadata", {}))


def save_partition(
    partition: Partition,
    path: str | Path,
    metadata: Mapping | None = None,
) -> None:
    """Write a partition to a JSON file (atomically — a kill mid-write
    leaves any previous file intact)."""
    document = partition_to_dict(partition, metadata)
    atomic_write_text(path, json.dumps(document, indent=1))


def load_partition(path: str | Path) -> tuple[Partition, dict]:
    """Read a partition (and its metadata) from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return partition_from_dict(document)
