"""Array-native solver core: the accelerated ``numpy`` backend state.

The object-graph hot paths (:class:`~repro.core.region.Region`,
:class:`~repro.fact.state.SolutionState`) are exact but pure Python —
fast enough at 2k areas, not at the 25k–50k registry datasets. This
module holds the flat-array mirror of that state which the vectorized
Tabu candidate scoring (:mod:`repro.fact.tabu`) batch-evaluates with
numpy:

- :class:`CollectionArrays` — the **static** per-collection arrays,
  built once and cached weakly: CSR rook adjacency (``indptr`` /
  ``indices`` over dense positions, from
  :func:`repro.contiguity.graph.csr_adjacency`), the dissimilarity
  vector, one float64 vector per attribute, and optional centroid
  coordinates.
- :class:`ArrayState` — the **mutable** per-solution arrays: a flat
  int64 label vector (``-1`` unassigned, ``-2`` excluded) plus
  per-region aggregate vectors (attribute sums, member counts,
  coordinate sums), maintained by the same
  ``Region.add_area``/``remove_area`` calls that update the scalar
  :class:`~repro.core.aggregates.AggregateState` — one hook site, so
  every float accumulates in the identical order and the mirror stays
  **bit-identical** to the object graph.

Backend selection mirrors the hot-path cache gate in
:mod:`repro.core.perf`: a process-wide override installed by
:func:`set_active_backend` (shipped to worker processes in the pool
payload), else the ``REPRO_BACKEND`` environment variable, else
auto-detection (numpy when importable). The pure-Python path remains
the reference oracle — both backends must produce bit-identical
partitions, certificates and objective values, which
``python -m repro.bench micro`` and the backend-parity CI job assert.
"""

from __future__ import annotations

import os
import weakref
from typing import TYPE_CHECKING, Iterable

from ..contiguity.graph import csr_adjacency
from ..exceptions import InvalidConstraintError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .area import AreaCollection

try:  # numpy is optional: without it the backend resolves to python.
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised via monkeypatch
    _numpy = None

__all__ = [
    "BACKENDS",
    "RESOLVED_BACKENDS",
    "UNASSIGNED",
    "EXCLUDED",
    "numpy_available",
    "numpy_version",
    "validate_backend",
    "backend_from_env",
    "resolve_backend",
    "set_active_backend",
    "active_backend",
    "CollectionArrays",
    "collection_arrays",
    "ArrayState",
]

# Environment knob consulted when the config leaves backend = "auto";
# lets a whole test/CI run pin a backend without touching code.
_BACKEND_ENV = "REPRO_BACKEND"

# "auto" is a config-level request; it always resolves to one of
# RESOLVED_BACKENDS before any state is built.
BACKENDS = ("auto", "numpy", "python")
RESOLVED_BACKENDS = ("numpy", "python")

# Label-vector sentinels. Distinct so the flat vector alone encodes the
# full partition including the feasibility-phase exclusions.
UNASSIGNED = -1
EXCLUDED = -2

# None = defer to REPRO_BACKEND / auto-detection; otherwise a resolved
# backend name installed process-wide by set_active_backend() (the
# solver installs it for the duration of a solve, and the worker-pool
# initializer replays it inside every worker process).
_override: str | None = None


def numpy_available() -> bool:
    """True when numpy imported successfully in this process."""
    return _numpy is not None


def numpy_version() -> str | None:
    """The imported numpy's version string, or ``None`` without numpy."""
    return None if _numpy is None else str(_numpy.__version__)


def validate_backend(value: str, *, resolved: bool = False) -> str:
    """Return the canonical backend name or raise naming the options.

    With ``resolved=True`` only ``"numpy"``/``"python"`` are accepted
    (``"auto"`` must already have been resolved away).
    """
    allowed = RESOLVED_BACKENDS if resolved else BACKENDS
    name = str(value).lower()
    if name not in allowed:
        raise InvalidConstraintError(
            f"unknown backend {value!r}; expected one of "
            + ", ".join(repr(option) for option in allowed)
        )
    return name


def backend_from_env() -> str | None:
    """The ``REPRO_BACKEND`` request, validated; ``None`` when unset.

    An unknown value raises immediately with the allowed names — a
    typo'd environment must not silently fall back to auto-detection.
    """
    raw = os.environ.get(_BACKEND_ENV, "").strip()
    if not raw:
        return None
    return validate_backend(raw)


def resolve_backend(requested: str = "auto") -> str:
    """Resolve a config-level request to ``"numpy"`` or ``"python"``.

    Precedence: an explicit config value beats ``REPRO_BACKEND``,
    which beats auto-detection — the env var pins *unconfigured* runs
    (the parity CI job, test sweeps) while an explicit
    ``FaCTConfig(backend=...)`` stays authoritative, letting one
    process compare both backends (the scaling benchmark does).
    Requesting numpy without numpy importable is an error, not a
    silent downgrade.
    """
    requested = validate_backend(requested)
    if requested == "auto":
        env = backend_from_env()
        requested = env if env is not None and env != "auto" else "auto"
    if requested == "auto":
        return "numpy" if numpy_available() else "python"
    if requested == "numpy" and not numpy_available():
        raise InvalidConstraintError(
            "backend 'numpy' requested but numpy is not importable; "
            "use backend='python' or install numpy"
        )
    return requested


def set_active_backend(backend: str | None) -> str | None:
    """Install a process-wide resolved-backend override.

    Returns the previous override so callers can restore it::

        previous = set_active_backend(resolve_backend(config.backend))
        try:
            ...  # solve
        finally:
            set_active_backend(previous)

    Pass ``None`` to fall back to env/auto resolution.
    """
    global _override
    previous = _override
    _override = (
        None if backend is None else validate_backend(backend, resolved=True)
    )
    return previous


def active_backend() -> str:
    """The backend new solver states are built for, resolved.

    The installed override when one is active (inside a solve, or in a
    worker process initialized from the pool payload), else the
    env/auto resolution.
    """
    if _override is not None:
        return _override
    return resolve_backend("auto")


# ----------------------------------------------------------------------
# static per-collection arrays
# ----------------------------------------------------------------------
class CollectionArrays:
    """Immutable flat-array view of one :class:`AreaCollection`.

    Everything here is a pure function of the collection, so one
    instance is built per collection (see :func:`collection_arrays`)
    and shared by every solve over it. Areas are addressed by **dense
    position** — their index in ``collection.ids`` insertion order —
    with ``index`` mapping raw area ids to positions.
    """

    __slots__ = (
        "np",
        "ids",
        "index",
        "_dense_ids",
        "indptr",
        "indices",
        "dissimilarity",
        "attributes",
        "coord_x",
        "coord_y",
    )

    def __init__(self, collection: "AreaCollection"):
        if _numpy is None:  # pragma: no cover - numpy is bundled in CI
            raise InvalidConstraintError(
                "CollectionArrays requires numpy (backend 'numpy')"
            )
        np = self.np = _numpy
        ids = list(collection.ids)
        self.ids = np.asarray(ids, dtype=np.int64)
        self.index = {area_id: i for i, area_id in enumerate(ids)}
        # Synthetic collections number areas 0..n-1 in insertion order;
        # when that holds, ids ARE positions and lookups vectorize.
        self._dense_ids = ids == list(range(len(ids)))
        indptr, indices = csr_adjacency(ids, collection.neighbors)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.dissimilarity = np.asarray(
            [collection.dissimilarity(area_id) for area_id in ids],
            dtype=np.float64,
        )
        self.attributes = {
            name: np.asarray(
                [collection.attribute(area_id, name) for area_id in ids],
                dtype=np.float64,
            )
            for name in sorted(collection.attribute_names)
        }
        # Centroid coordinates exist only when every area carries a
        # polygon (the compactness objective's requirement); synthetic
        # census collections have none, so these stay None there.
        coords: list[tuple[float, float]] = []
        for area_id in ids:
            polygon = collection.area(area_id).polygon
            if polygon is None:
                coords = []
                break
            centroid = polygon.centroid
            coords.append((centroid.x, centroid.y))
        if coords:
            self.coord_x = np.asarray(
                [xy[0] for xy in coords], dtype=np.float64
            )
            self.coord_y = np.asarray(
                [xy[1] for xy in coords], dtype=np.float64
            )
        else:
            self.coord_x = None
            self.coord_y = None

    def __len__(self) -> int:
        return len(self.index)

    def positions(self, area_ids: Iterable[int]):
        """Dense positions of *area_ids* as an int64 array."""
        if self._dense_ids:
            return self.np.asarray(list(area_ids), dtype=self.np.int64)
        index = self.index
        return self.np.asarray(
            [index[area_id] for area_id in area_ids], dtype=self.np.int64
        )


_COLLECTION_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def collection_arrays(collection: "AreaCollection") -> CollectionArrays:
    """The (weakly cached) :class:`CollectionArrays` of *collection*."""
    arrays = _COLLECTION_CACHE.get(collection)
    if arrays is None:
        arrays = CollectionArrays(collection)
        _COLLECTION_CACHE[collection] = arrays
    return arrays


# ----------------------------------------------------------------------
# mutable per-solution arrays
# ----------------------------------------------------------------------
class ArrayState:
    """Flat-array mirror of one :class:`SolutionState`'s assignment.

    ``labels[pos]`` is the region id of the area at dense position
    *pos* (:data:`UNASSIGNED` / :data:`EXCLUDED` otherwise).
    ``region_count[rid]`` and ``region_sums[attr][rid]`` mirror each
    region's member count and per-attribute sum; rows are indexed by
    raw region id (capacity grows geometrically — solver region ids
    increase monotonically) and zeroed when a region empties, exactly
    like :class:`AggregateState`'s drift reset.

    The mirror is written from a single hook site —
    ``Region.add_area``/``remove_area`` call :meth:`on_add` /
    :meth:`on_remove` right where the scalar aggregates update — so
    every float accumulation happens in the identical order and the
    vectors stay bit-identical to the object graph under any mutation
    sequence (assign, move, merge, dissolve).
    """

    __slots__ = (
        "arrays",
        "tracked",
        "labels",
        "region_count",
        "region_sums",
        "region_coord_x",
        "region_coord_y",
    )

    def __init__(
        self,
        arrays: CollectionArrays,
        tracked: Iterable[str] = (),
        excluded: Iterable[int] = (),
    ):
        np = arrays.np
        self.arrays = arrays
        self.tracked = tuple(tracked)
        self.labels = np.full(len(arrays), UNASSIGNED, dtype=np.int64)
        for area_id in excluded:
            self.labels[arrays.index[area_id]] = EXCLUDED
        capacity = 16
        self.region_count = np.zeros(capacity, dtype=np.int64)
        self.region_sums = {
            name: np.zeros(capacity, dtype=np.float64)
            for name in self.tracked
        }
        if arrays.coord_x is not None:
            self.region_coord_x = np.zeros(capacity, dtype=np.float64)
            self.region_coord_y = np.zeros(capacity, dtype=np.float64)
        else:
            self.region_coord_x = None
            self.region_coord_y = None

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return len(self.region_count)

    def _ensure_capacity(self, region_id: int) -> None:
        capacity = len(self.region_count)
        if region_id < capacity:
            return
        np = self.arrays.np
        while capacity <= region_id:
            capacity *= 2
        grown = np.zeros(capacity, dtype=np.int64)
        grown[: len(self.region_count)] = self.region_count
        self.region_count = grown
        for name, sums in self.region_sums.items():
            grown = np.zeros(capacity, dtype=np.float64)
            grown[: len(sums)] = sums
            self.region_sums[name] = grown
        if self.region_coord_x is not None:
            for attr in ("region_coord_x", "region_coord_y"):
                sums = getattr(self, attr)
                grown = np.zeros(capacity, dtype=np.float64)
                grown[: len(sums)] = sums
                setattr(self, attr, grown)

    # ------------------------------------------------------------------
    # the Region mutation sink
    # ------------------------------------------------------------------
    def on_add(self, region_id: int, area_id: int) -> None:
        """Mirror one ``Region.add_area`` membership insertion."""
        arrays = self.arrays
        position = arrays.index[area_id]
        self.labels[position] = region_id
        self._ensure_capacity(region_id)
        self.region_count[region_id] += 1
        for name in self.tracked:
            self.region_sums[name][region_id] += arrays.attributes[name][
                position
            ]
        if self.region_coord_x is not None:
            self.region_coord_x[region_id] += arrays.coord_x[position]
            self.region_coord_y[region_id] += arrays.coord_y[position]

    def on_remove(self, region_id: int, area_id: int) -> None:
        """Mirror one ``Region.remove_area`` membership deletion."""
        arrays = self.arrays
        position = arrays.index[area_id]
        self.labels[position] = UNASSIGNED
        self.region_count[region_id] -= 1
        emptied = self.region_count[region_id] == 0
        for name in self.tracked:
            sums = self.region_sums[name]
            if emptied:
                sums[region_id] = 0.0  # cancel drift, like AggregateState
            else:
                sums[region_id] -= arrays.attributes[name][position]
        if self.region_coord_x is not None:
            if emptied:
                self.region_coord_x[region_id] = 0.0
                self.region_coord_y[region_id] = 0.0
            else:
                self.region_coord_x[region_id] -= arrays.coord_x[position]
                self.region_coord_y[region_id] -= arrays.coord_y[position]
