"""Heterogeneity measure ``H(P)`` — Definition III.3.

``H(P) = sum_{R in P} sum_{a_i, a_j in R} |d_i - d_j|`` over unordered
pairs within each region. Lower is better (more homogeneous regions).

Two implementations are provided:

- :func:`pairwise_absolute_deviation` — O(g log g) via the sorted-order
  identity ``sum_{i<j} (d_(j) - d_(i)) = sum_k d_(k) * (2k - g + 1)``;
- :func:`pairwise_absolute_deviation_naive` — the literal O(g²) double
  loop, kept as the oracle for property-based tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .area import AreaCollection

__all__ = [
    "pairwise_absolute_deviation",
    "pairwise_absolute_deviation_naive",
    "region_heterogeneity",
    "total_heterogeneity",
    "improvement_ratio",
]


def pairwise_absolute_deviation(
    values: Iterable[float], assume_sorted: bool = False
) -> float:
    """Sum of ``|x - y|`` over unordered pairs, in O(g log g).

    For sorted values ``d_(0) <= ... <= d_(g-1)`` each ``d_(k)`` appears
    with coefficient ``+k`` (as the larger element of k pairs) and
    ``-(g-1-k)`` (as the smaller element of the rest).

    Callers that already hold the values in non-decreasing order (e.g.
    a :class:`~repro.core.region.Region`'s maintained sorted structure)
    can pass ``assume_sorted=True`` to skip the redundant ``sorted()``
    and evaluate the identity in O(g). The order is trusted, not
    verified — an unsorted input silently yields a wrong (smaller)
    total.
    """
    if assume_sorted:
        ordered = [float(v) for v in values]
    else:
        ordered = sorted(float(v) for v in values)
    g = len(ordered)
    total = sum(value * (2 * k - g + 1) for k, value in enumerate(ordered))
    # The exact quantity is a sum of absolute values, hence >= 0; the
    # coefficient identity can leave a tiny negative rounding residue
    # (e.g. g equal large-magnitude values), so clamp it away.
    return max(0.0, total)


def pairwise_absolute_deviation_naive(values: Sequence[float]) -> float:
    """O(g²) reference implementation of the same quantity."""
    values = [float(v) for v in values]
    total = 0.0
    for i in range(len(values)):
        for j in range(i + 1, len(values)):
            total += abs(values[i] - values[j])
    return total


def region_heterogeneity(
    collection: AreaCollection, area_ids: Iterable[int]
) -> float:
    """Heterogeneity of one region's member set."""
    return pairwise_absolute_deviation(
        collection.dissimilarity(area_id) for area_id in area_ids
    )


def total_heterogeneity(
    collection: AreaCollection, regions: Iterable[Iterable[int]]
) -> float:
    """``H(P)`` over an iterable of region member sets.

    Unassigned areas contribute nothing (they belong to no region).
    """
    return sum(region_heterogeneity(collection, region) for region in regions)


def improvement_ratio(before: float, after: float) -> float:
    """The paper's heterogeneity-improvement measure (Section VII-A):
    ``|before - after| / before``. Returns 0 for a zero baseline."""
    if before == 0:
        return 0.0
    return abs(before - after) / before
