"""Partitions — the EMP output model (Section III).

A :class:`Partition` is the immutable result of a solver run: the set
of regions ``P = {R_1, …, R_p}`` plus the set ``U_0`` of unassigned
areas (EMP, unlike the original max-p-regions problem, permits leaving
areas unassigned). It knows how to validate itself against an
:class:`~repro.core.area.AreaCollection` and a
:class:`~repro.core.constraints.ConstraintSet`, which the test-suite
uses as the single source of truth for solution correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from ..exceptions import InvalidAreaError
from .area import AreaCollection
from .constraints import ConstraintSet
from .heterogeneity import region_heterogeneity, total_heterogeneity
from .region import Region

__all__ = ["Partition"]

UNASSIGNED = -1
"""Region label used for areas in ``U_0``."""


@dataclass(frozen=True)
class Partition:
    """An immutable regionalization result.

    Attributes
    ----------
    regions:
        Tuple of frozensets of area ids; ``regions[k]`` is region ``k``.
    unassigned:
        ``U_0`` — the areas not assigned to any region.
    """

    regions: tuple[frozenset[int], ...]
    unassigned: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        regions = tuple(frozenset(r) for r in self.regions)
        object.__setattr__(self, "regions", regions)
        object.__setattr__(self, "unassigned", frozenset(self.unassigned))
        seen: set[int] = set()
        for index, region in enumerate(regions):
            if not region:
                raise InvalidAreaError(f"region {index} is empty")
            overlap = seen & region
            if overlap:
                raise InvalidAreaError(
                    f"areas {sorted(overlap)} appear in more than one region"
                )
            seen |= region
        overlap = seen & self.unassigned
        if overlap:
            raise InvalidAreaError(
                f"areas {sorted(overlap)} are both assigned and unassigned"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_regions(
        cls,
        regions: Iterable[Region | Iterable[int]],
        unassigned: Iterable[int] = (),
    ) -> "Partition":
        """Build from :class:`Region` objects or plain id iterables."""
        member_sets = []
        for region in regions:
            if isinstance(region, Region):
                member_sets.append(region.area_ids)
            else:
                member_sets.append(frozenset(region))
        return cls(tuple(member_sets), frozenset(unassigned))

    @classmethod
    def from_labels(
        cls, labels: Mapping[int, int], unassigned_label: int = UNASSIGNED
    ) -> "Partition":
        """Build from an ``area_id -> region label`` mapping.

        Labels other than *unassigned_label* are grouped into regions
        (in ascending label order).
        """
        groups: dict[int, set[int]] = {}
        unassigned: set[int] = set()
        for area_id, label in labels.items():
            if label == unassigned_label:
                unassigned.add(area_id)
            else:
                groups.setdefault(label, set()).add(area_id)
        ordered = tuple(
            frozenset(groups[label]) for label in sorted(groups)
        )
        return cls(ordered, frozenset(unassigned))

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        """The number of regions — EMP's primary objective."""
        return len(self.regions)

    @property
    def assigned(self) -> frozenset[int]:
        """All areas that belong to some region."""
        result: set[int] = set()
        for region in self.regions:
            result |= region
        return frozenset(result)

    @property
    def all_areas(self) -> frozenset[int]:
        """Assigned plus unassigned areas."""
        return self.assigned | self.unassigned

    def labels(self) -> dict[int, int]:
        """Mapping ``area_id -> region index`` (``-1`` for ``U_0``)."""
        result = {area_id: UNASSIGNED for area_id in self.unassigned}
        for index, region in enumerate(self.regions):
            for area_id in region:
                result[area_id] = index
        return result

    def region_of(self, area_id: int) -> int:
        """Region index of one area (``-1`` when unassigned)."""
        for index, region in enumerate(self.regions):
            if area_id in region:
                return index
        if area_id in self.unassigned:
            return UNASSIGNED
        raise InvalidAreaError(f"area {area_id} is not in this partition")

    def region_sizes(self) -> list[int]:
        """Sizes of the regions, in region order."""
        return [len(region) for region in self.regions]

    def __iter__(self) -> Iterator[frozenset[int]]:
        return iter(self.regions)

    def __len__(self) -> int:
        return len(self.regions)

    # ------------------------------------------------------------------
    # scoring and validation
    # ------------------------------------------------------------------
    def heterogeneity(self, collection: AreaCollection) -> float:
        """``H(P)`` of this partition over *collection*."""
        return total_heterogeneity(collection, self.regions)

    def region_heterogeneities(self, collection: AreaCollection) -> list[float]:
        """Per-region heterogeneity scores."""
        return [region_heterogeneity(collection, r) for r in self.regions]

    def validate(
        self,
        collection: AreaCollection,
        constraints: ConstraintSet | None = None,
    ) -> list[str]:
        """Return a list of violation descriptions (empty when valid).

        Checks, in order: every area of the collection is covered
        exactly once (regions + ``U_0``), every region is spatially
        contiguous, and — when *constraints* is given — every region
        satisfies every constraint. This is the oracle the tests use.
        """
        problems: list[str] = []
        covered = self.all_areas
        missing = set(collection.ids) - covered
        if missing:
            problems.append(f"areas not covered: {sorted(missing)[:10]}")
        unknown = covered - set(collection.ids)
        if unknown:
            problems.append(f"unknown areas in partition: {sorted(unknown)[:10]}")
            return problems  # later checks assume known areas only
        for index, region in enumerate(self.regions):
            if not collection.is_contiguous(region):
                problems.append(f"region {index} is not contiguous")
        if constraints is not None:
            tracked = constraints.attributes()
            for index, region_members in enumerate(self.regions):
                region = Region(index, collection, tracked, region_members)
                for violated in region.violations(constraints):
                    problems.append(
                        f"region {index} violates {violated} "
                        f"(value={region.constraint_value(violated):g})"
                    )
        return problems

    def is_valid(
        self,
        collection: AreaCollection,
        constraints: ConstraintSet | None = None,
    ) -> bool:
        """True when :meth:`validate` reports no problems."""
        return not self.validate(collection, constraints)

    def summary(self, collection: AreaCollection | None = None) -> dict[str, object]:
        """Solution statistics as reported to users (Section VII-B3)."""
        info: dict[str, object] = {
            "p": self.p,
            "n_assigned": len(self.assigned),
            "n_unassigned": len(self.unassigned),
            "region_sizes_min": min(self.region_sizes(), default=0),
            "region_sizes_max": max(self.region_sizes(), default=0),
        }
        if collection is not None:
            info["heterogeneity"] = self.heterogeneity(collection)
            info["unassigned_fraction"] = len(self.unassigned) / len(collection)
        return info
