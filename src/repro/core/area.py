"""Areas and area collections — the EMP input model (Section III).

An :class:`Area` is the basic spatial unit ``a_i = (i, b_i, S_i, d_i)``:
an identifier, an optional polygon boundary, a set of spatially
extensive attributes and a dissimilarity attribute used by the
heterogeneity objective.

An :class:`AreaCollection` bundles the area set ``A`` with its spatial
contiguity structure (the adjacency produced by rook/queen weights over
the polygons). All solvers operate on an ``AreaCollection``; the raw
polygons are only needed to *build* the adjacency, so collections can
also be constructed directly from an explicit neighbor map (useful for
lattices and for unit tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from ..exceptions import ContiguityError, InvalidAreaError

__all__ = ["Area", "AreaCollection"]


@dataclass(frozen=True)
class Area:
    """One spatial area ``(i, b_i, S_i, d_i)``.

    Parameters
    ----------
    area_id:
        Unique integer identifier ``i``.
    attributes:
        The spatially extensive attributes ``S_i`` (e.g. ``TOTALPOP``).
        Values must be finite numbers.
    dissimilarity:
        The dissimilarity attribute ``d_i``. If ``None``, the owning
        :class:`AreaCollection` resolves it from its configured
        ``dissimilarity_attribute``.
    polygon:
        Optional :class:`repro.geometry.Polygon` boundary ``b_i``. The
        solvers never touch it; it exists for I/O, plotting and
        adjacency construction.
    """

    area_id: int
    attributes: Mapping[str, float]
    dissimilarity: float | None = None
    polygon: object | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.area_id, int):
            raise InvalidAreaError(
                f"area_id must be an int, got {type(self.area_id).__name__}"
            )
        attrs = dict(self.attributes)
        for name, value in attrs.items():
            value = float(value)
            if not math.isfinite(value):
                raise InvalidAreaError(
                    f"area {self.area_id}: attribute {name!r} is not finite"
                )
            attrs[name] = value
        object.__setattr__(self, "attributes", attrs)
        if self.dissimilarity is not None:
            d = float(self.dissimilarity)
            if not math.isfinite(d):
                raise InvalidAreaError(
                    f"area {self.area_id}: dissimilarity is not finite"
                )
            object.__setattr__(self, "dissimilarity", d)

    def attribute(self, name: str) -> float:
        """Return the value of the named spatially extensive attribute."""
        try:
            return self.attributes[name]
        except KeyError:
            raise InvalidAreaError(
                f"area {self.area_id} has no attribute {name!r}"
            ) from None


class AreaCollection:
    """The area set ``A`` plus its contiguity graph.

    Parameters
    ----------
    areas:
        The areas. Identifiers must be unique; every area must expose
        the same attribute names.
    adjacency:
        Mapping ``area_id -> iterable of neighbor area_ids``. Must be
        symmetric and must not contain self-loops. Areas missing from
        the mapping are treated as isolated (they can only ever form
        singleton regions).
    dissimilarity_attribute:
        Attribute name used as ``d_i`` for areas that do not carry an
        explicit ``dissimilarity`` value.
    """

    def __init__(
        self,
        areas: Iterable[Area],
        adjacency: Mapping[int, Iterable[int]],
        dissimilarity_attribute: str | None = None,
    ):
        self._areas: dict[int, Area] = {}
        for area in areas:
            if area.area_id in self._areas:
                raise InvalidAreaError(f"duplicate area id {area.area_id}")
            self._areas[area.area_id] = area
        if not self._areas:
            raise InvalidAreaError("an AreaCollection requires at least one area")

        first = next(iter(self._areas.values()))
        expected_names = frozenset(first.attributes)
        for area in self._areas.values():
            if frozenset(area.attributes) != expected_names:
                raise InvalidAreaError(
                    f"area {area.area_id} attribute names "
                    f"{sorted(area.attributes)} differ from "
                    f"{sorted(expected_names)}"
                )
        self._attribute_names = expected_names

        self._adjacency: dict[int, frozenset[int]] = {
            area_id: frozenset() for area_id in self._areas
        }
        for area_id, neighbors in adjacency.items():
            if area_id not in self._areas:
                raise InvalidAreaError(
                    f"adjacency mentions unknown area id {area_id}"
                )
            neighbor_set = frozenset(int(n) for n in neighbors)
            if area_id in neighbor_set:
                raise InvalidAreaError(f"area {area_id} is adjacent to itself")
            for n in neighbor_set:
                if n not in self._areas:
                    raise InvalidAreaError(
                        f"area {area_id} adjacent to unknown area {n}"
                    )
            self._adjacency[area_id] = neighbor_set
        for area_id, neighbor_set in self._adjacency.items():
            for n in neighbor_set:
                if area_id not in self._adjacency[n]:
                    raise InvalidAreaError(
                        f"asymmetric adjacency: {area_id} -> {n} has no reverse"
                    )

        self._dissimilarity_attribute = dissimilarity_attribute
        if dissimilarity_attribute is not None:
            if dissimilarity_attribute not in expected_names:
                raise InvalidAreaError(
                    f"dissimilarity attribute {dissimilarity_attribute!r} "
                    "is not an area attribute"
                )
        else:
            for area in self._areas.values():
                if area.dissimilarity is None:
                    raise InvalidAreaError(
                        f"area {area.area_id} has no dissimilarity value and "
                        "no dissimilarity_attribute was configured"
                    )
        self._dissimilarity_cache: dict[int, float] = {
            area_id: self._resolve_dissimilarity(area)
            for area_id, area in self._areas.items()
        }

    def _resolve_dissimilarity(self, area: Area) -> float:
        if area.dissimilarity is not None:
            return area.dissimilarity
        return area.attributes[self._dissimilarity_attribute]

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def dissimilarity_attribute(self) -> str | None:
        """Name of the attribute used as ``d_i`` (``None`` when areas
        carry explicit dissimilarity values)."""
        return self._dissimilarity_attribute

    @property
    def attribute_names(self) -> frozenset[str]:
        """Names of the spatially extensive attributes."""
        return self._attribute_names

    @property
    def ids(self) -> tuple[int, ...]:
        """All area identifiers, in insertion order."""
        return tuple(self._areas)

    def __len__(self) -> int:
        return len(self._areas)

    def __iter__(self) -> Iterator[Area]:
        return iter(self._areas.values())

    def __contains__(self, area_id: int) -> bool:
        return area_id in self._areas

    def area(self, area_id: int) -> Area:
        """Return the :class:`Area` with the given identifier."""
        try:
            return self._areas[area_id]
        except KeyError:
            raise InvalidAreaError(f"unknown area id {area_id}") from None

    def neighbors(self, area_id: int) -> frozenset[int]:
        """Spatial neighbors of the given area."""
        try:
            return self._adjacency[area_id]
        except KeyError:
            raise InvalidAreaError(f"unknown area id {area_id}") from None

    def attribute(self, area_id: int, name: str) -> float:
        """Attribute value of one area."""
        return self.area(area_id).attribute(name)

    def dissimilarity(self, area_id: int) -> float:
        """Dissimilarity value ``d_i`` of one area."""
        try:
            return self._dissimilarity_cache[area_id]
        except KeyError:
            raise InvalidAreaError(f"unknown area id {area_id}") from None

    def attribute_values(self, name: str) -> dict[int, float]:
        """Mapping ``area_id -> value`` for one attribute."""
        if name not in self._attribute_names:
            raise InvalidAreaError(f"unknown attribute {name!r}")
        return {area_id: a.attributes[name] for area_id, a in self._areas.items()}

    def degree_histogram(self) -> dict[int, int]:
        """Histogram of adjacency degrees (diagnostics for datasets)."""
        histogram: dict[int, int] = {}
        for neighbor_set in self._adjacency.values():
            degree = len(neighbor_set)
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # graph structure
    # ------------------------------------------------------------------
    def connected_components(
        self, within: Iterable[int] | None = None
    ) -> list[frozenset[int]]:
        """Connected components of the contiguity graph.

        Parameters
        ----------
        within:
            Optional subset of area ids; when given, components of the
            induced subgraph are returned. This is how FaCT supports
            datasets with multiple connected components and datasets
            fragmented by invalid-area filtration.
        """
        universe = set(self._areas if within is None else within)
        for area_id in universe:
            if area_id not in self._areas:
                raise InvalidAreaError(f"unknown area id {area_id}")
        components: list[frozenset[int]] = []
        remaining = set(universe)
        while remaining:
            start = next(iter(remaining))
            component = {start}
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for neighbor in self._adjacency[current]:
                    if neighbor in remaining and neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
            remaining -= component
            components.append(frozenset(component))
        return components

    def is_contiguous(self, area_ids: Iterable[int]) -> bool:
        """True when the induced subgraph over *area_ids* is connected
        and non-empty (Definition III.2)."""
        ids = set(area_ids)
        if not ids:
            return False
        components = self.connected_components(within=ids)
        return len(components) == 1

    def subset(self, area_ids: Iterable[int]) -> "AreaCollection":
        """Return the sub-collection induced by *area_ids*.

        Adjacency is restricted to pairs inside the subset; the result
        may have several connected components.
        """
        ids = set(area_ids)
        if not ids:
            raise ContiguityError("cannot build an empty sub-collection")
        areas = []
        adjacency = {}
        for area_id in ids:
            areas.append(self.area(area_id))
            adjacency[area_id] = self._adjacency[area_id] & ids
        return AreaCollection(
            areas, adjacency, dissimilarity_attribute=self._dissimilarity_attribute
        )

    def region_neighbors(self, area_ids: Iterable[int]) -> frozenset[int]:
        """Area ids adjacent to the given set but not inside it."""
        inside = set(area_ids)
        outside: set[int] = set()
        for area_id in inside:
            outside.update(self._adjacency[area_id] - inside)
        return frozenset(outside)

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """Human-readable dataset summary (size, components, degrees)."""
        components = self.connected_components()
        return {
            "n_areas": len(self),
            "n_components": len(components),
            "largest_component": max(len(c) for c in components),
            "attributes": sorted(self._attribute_names),
            "mean_degree": (
                sum(len(v) for v in self._adjacency.values()) / len(self)
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"AreaCollection(n={len(self)}, "
            f"attributes={sorted(self._attribute_names)})"
        )
