"""User-defined constraints — Definition III.1 of the paper.

A constraint is the 4-tuple ``(f, s, l, u)``: an aggregate function
``f`` ∈ {MIN, MAX, AVG, SUM, COUNT}, a spatially extensive attribute
``s``, a lower bound ``l`` ∈ [−∞, ∞) and an upper bound ``u`` ∈ (−∞, ∞].
A region ``R`` satisfies the constraint when ``l ≤ f(R.s) ≤ u``.

The paper groups the five aggregates into three families, which drive
the structure of the FaCT construction phase (Section V-B):

- **extrema** (MIN, MAX) — filter invalid areas and pick seed areas;
- **centrality** (AVG) — non-monotonic; region growing;
- **counting** (SUM, COUNT) — monotonic; final adjustments.

:class:`ConstraintSet` bundles the constraints of one query and exposes
family-based views plus whole-region validation helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..exceptions import InvalidConstraintError
from .aggregates import Aggregate

__all__ = [
    "Constraint",
    "ConstraintSet",
    "ConstraintFamily",
    "min_constraint",
    "max_constraint",
    "avg_constraint",
    "sum_constraint",
    "count_constraint",
]


class ConstraintFamily:
    """The three constraint families of Section V-B."""

    EXTREMA = "extrema"
    CENTRALITY = "centrality"
    COUNTING = "counting"


_FAMILY_BY_AGGREGATE = {
    Aggregate.MIN: ConstraintFamily.EXTREMA,
    Aggregate.MAX: ConstraintFamily.EXTREMA,
    Aggregate.AVG: ConstraintFamily.CENTRALITY,
    Aggregate.SUM: ConstraintFamily.COUNTING,
    Aggregate.COUNT: ConstraintFamily.COUNTING,
}


@dataclass(frozen=True)
class Constraint:
    """One user-defined constraint ``l ≤ f(s) ≤ u``.

    Parameters
    ----------
    aggregate:
        One of ``"MIN"``, ``"MAX"``, ``"AVG"``, ``"SUM"``, ``"COUNT"``
        (case-insensitive; also accepts :class:`Aggregate` constants).
    attribute:
        Name of the spatially extensive attribute the aggregate is
        computed over. For ``COUNT`` the attribute is conventional only
        (SQL ``COUNT`` counts rows — here, areas) and may be ``""``.
    lower, upper:
        Threshold range. ``-math.inf`` / ``math.inf`` produce the
        open-ended comparisons ``f(s) ≤ u`` / ``f(s) ≥ l``.
    """

    aggregate: str
    attribute: str
    lower: float = -math.inf
    upper: float = math.inf

    def __post_init__(self) -> None:
        object.__setattr__(self, "aggregate", Aggregate.normalize(self.aggregate))
        object.__setattr__(self, "lower", float(self.lower))
        object.__setattr__(self, "upper", float(self.upper))
        if math.isnan(self.lower) or math.isnan(self.upper):
            raise InvalidConstraintError("constraint bounds must not be NaN")
        if self.lower > self.upper:
            raise InvalidConstraintError(
                f"lower bound {self.lower} exceeds upper bound {self.upper}"
            )
        if math.isinf(self.lower) and self.lower > 0:
            raise InvalidConstraintError("lower bound must be in [-inf, inf)")
        if math.isinf(self.upper) and self.upper < 0:
            raise InvalidConstraintError("upper bound must be in (-inf, inf]")
        if self.aggregate != Aggregate.COUNT and not self.attribute:
            raise InvalidConstraintError(
                f"{self.aggregate} constraint requires an attribute name"
            )
        if self.aggregate == Aggregate.COUNT and self.lower < 1 and math.isinf(
            self.upper
        ):
            # COUNT >= 0 over non-empty regions is vacuous; flag likely typos.
            if math.isinf(self.lower):
                raise InvalidConstraintError(
                    "COUNT constraint with infinite range is vacuous"
                )

    # ------------------------------------------------------------------
    @property
    def family(self) -> str:
        """Constraint family: extrema, centrality or counting."""
        return _FAMILY_BY_AGGREGATE[self.aggregate]

    @property
    def is_monotonic(self) -> bool:
        """True for SUM/COUNT — adding areas moves the aggregate one way
        (assuming non-negative attribute values, as the paper does)."""
        return self.family == ConstraintFamily.COUNTING

    @property
    def has_lower(self) -> bool:
        """True when the lower bound is finite."""
        return not math.isinf(self.lower)

    @property
    def has_upper(self) -> bool:
        """True when the upper bound is finite."""
        return not math.isinf(self.upper)

    def contains(self, value: float) -> bool:
        """Return True when *value* lies within ``[lower, upper]``.

        ``nan`` never satisfies a constraint (an empty region's AVG).
        """
        return self.lower <= value <= self.upper

    def below(self, value: float) -> bool:
        """True when *value* lies strictly below the lower bound."""
        return value < self.lower

    def above(self, value: float) -> bool:
        """True when *value* lies strictly above the upper bound."""
        return value > self.upper

    def with_bounds(self, lower: float = None, upper: float = None) -> "Constraint":
        """Return a copy with one or both bounds replaced."""
        return Constraint(
            self.aggregate,
            self.attribute,
            self.lower if lower is None else lower,
            self.upper if upper is None else upper,
        )

    def __str__(self) -> str:
        attr = self.attribute or "*"
        return f"{self.lower:g} <= {self.aggregate}({attr}) <= {self.upper:g}"


# ----------------------------------------------------------------------
# convenience constructors (the public, discoverable API)
# ----------------------------------------------------------------------

def min_constraint(attribute: str, lower: float = -math.inf,
                   upper: float = math.inf) -> Constraint:
    """Build a ``MIN`` (extrema) constraint: ``l ≤ MIN(attribute) ≤ u``."""
    return Constraint(Aggregate.MIN, attribute, lower, upper)


def max_constraint(attribute: str, lower: float = -math.inf,
                   upper: float = math.inf) -> Constraint:
    """Build a ``MAX`` (extrema) constraint: ``l ≤ MAX(attribute) ≤ u``."""
    return Constraint(Aggregate.MAX, attribute, lower, upper)


def avg_constraint(attribute: str, lower: float = -math.inf,
                   upper: float = math.inf) -> Constraint:
    """Build an ``AVG`` (centrality) constraint: ``l ≤ AVG(attribute) ≤ u``."""
    return Constraint(Aggregate.AVG, attribute, lower, upper)


def sum_constraint(attribute: str, lower: float = -math.inf,
                   upper: float = math.inf) -> Constraint:
    """Build a ``SUM`` (counting) constraint: ``l ≤ SUM(attribute) ≤ u``.

    With ``upper=inf`` this is exactly the classic max-p-regions
    threshold constraint of Duque et al. (2012).
    """
    return Constraint(Aggregate.SUM, attribute, lower, upper)


def count_constraint(lower: float = 1, upper: float = math.inf) -> Constraint:
    """Build a ``COUNT`` (counting) constraint on the number of areas."""
    return Constraint(Aggregate.COUNT, "", lower, upper)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConstraintSet:
    """An immutable bundle of the constraints of one EMP query.

    Provides family views used by the three FaCT construction steps and
    set-level validation. The set may be empty (then every non-empty
    contiguous region is feasible and EMP degenerates to "one region per
    area").
    """

    constraints: tuple[Constraint, ...] = field(default_factory=tuple)

    def __init__(self, constraints: Iterable[Constraint] = ()):
        items = tuple(constraints)
        for item in items:
            if not isinstance(item, Constraint):
                raise InvalidConstraintError(
                    f"expected Constraint, got {type(item).__name__}"
                )
        object.__setattr__(self, "constraints", items)

    # -- collection protocol ------------------------------------------
    def __iter__(self) -> Iterator[Constraint]:
        return iter(self.constraints)

    def __len__(self) -> int:
        return len(self.constraints)

    def __bool__(self) -> bool:
        return bool(self.constraints)

    def __getitem__(self, index: int) -> Constraint:
        return self.constraints[index]

    # -- family views --------------------------------------------------
    def by_aggregate(self, aggregate: str) -> tuple[Constraint, ...]:
        """All constraints using the given aggregate function."""
        name = Aggregate.normalize(aggregate)
        return tuple(c for c in self.constraints if c.aggregate == name)

    @property
    def extrema(self) -> tuple[Constraint, ...]:
        """MIN and MAX constraints (Step 1: filtering and seeding)."""
        return tuple(
            c for c in self.constraints if c.family == ConstraintFamily.EXTREMA
        )

    @property
    def centrality(self) -> tuple[Constraint, ...]:
        """AVG constraints (Step 2: region growing)."""
        return tuple(
            c for c in self.constraints if c.family == ConstraintFamily.CENTRALITY
        )

    @property
    def counting(self) -> tuple[Constraint, ...]:
        """SUM and COUNT constraints (Step 3: monotonic adjustments)."""
        return tuple(
            c for c in self.constraints if c.family == ConstraintFamily.COUNTING
        )

    @property
    def mins(self) -> tuple[Constraint, ...]:
        """Only the MIN constraints."""
        return self.by_aggregate(Aggregate.MIN)

    @property
    def maxes(self) -> tuple[Constraint, ...]:
        """Only the MAX constraints."""
        return self.by_aggregate(Aggregate.MAX)

    @property
    def avgs(self) -> tuple[Constraint, ...]:
        """Only the AVG constraints."""
        return self.by_aggregate(Aggregate.AVG)

    @property
    def sums(self) -> tuple[Constraint, ...]:
        """Only the SUM constraints."""
        return self.by_aggregate(Aggregate.SUM)

    @property
    def counts(self) -> tuple[Constraint, ...]:
        """Only the COUNT constraints."""
        return self.by_aggregate(Aggregate.COUNT)

    def attributes(self) -> frozenset[str]:
        """All attribute names referenced by any constraint."""
        return frozenset(c.attribute for c in self.constraints if c.attribute)

    def on_attribute(self, attribute: str) -> tuple[Constraint, ...]:
        """All constraints imposed on the given attribute."""
        return tuple(c for c in self.constraints if c.attribute == attribute)

    # -- area-level helpers used by filtering/seeding -------------------
    def area_is_invalid(self, attributes) -> bool:
        """True if an area with these attribute values can never be part
        of a valid region (feasibility-phase filtration, Section V-A).

        An area is invalid when ``s_min < l_min`` for a MIN constraint,
        ``s_max > u_max`` for a MAX constraint, or ``s_sum > u_sum`` for
        a SUM constraint.
        """
        for c in self.mins:
            if attributes[c.attribute] < c.lower:
                return True
        for c in self.maxes:
            if attributes[c.attribute] > c.upper:
                return True
        for c in self.sums:
            if attributes[c.attribute] > c.upper:
                return True
        return False

    def area_is_seed(self, attributes) -> bool:
        """True if an area qualifies as a seed area (Step 1).

        A seed satisfies both bounds of at least one MIN or MAX
        constraint. When there are no extrema constraints every area is
        a seed (Section V-D).
        """
        extrema = self.extrema
        if not extrema:
            return True
        for c in extrema:
            if c.contains(attributes[c.attribute]):
                return True
        return False

    def seed_satisfied(self, constraint: Constraint, attributes) -> bool:
        """True if the area's value lies inside *constraint*'s range —
        i.e. the area can serve as this extrema constraint's seed."""
        return constraint.contains(attributes[constraint.attribute])
