"""Hot-path instrumentation: performance counters and the cache gate.

The FaCT phases spend almost all their wall-clock answering two kinds
of queries — "may this area leave its region?" (contiguity) and "what
borders this region?" (frontier/adjacency). Both are served by
incremental caches (:meth:`repro.core.region.Region.removable_areas`,
the indexes inside :class:`repro.fact.state.SolutionState`). This
module provides:

- :class:`PerfCounters` — a lightweight mutable struct counting cache
  hits, rebuilds, full graph traversals and candidate evaluations,
  plus named wall-clock timings. One instance is owned by each
  ``SolutionState`` and surfaces on :class:`repro.fact.solver.
  EMPSolution` and in the microbenchmark harness.
- the **hot-path cache gate** — a process-wide switch that forces
  every cached query back onto its recompute-everything reference
  path. Both paths return *identical* results (the benchmark harness
  and CI assert this bit-for-bit); the gate exists so the reference
  path stays executable, comparable and honest forever.

Set ``REPRO_DISABLE_HOTPATH_CACHES=1`` (or call
:func:`set_hotpath_caches`) to run uncached.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from time import perf_counter

from ..obs.metrics import MetricsRegistry

__all__ = [
    "PerfCounters",
    "hotpath_caches_enabled",
    "set_hotpath_caches",
]

_CACHES_ENV = "REPRO_DISABLE_HOTPATH_CACHES"
_FALSEY = ("", "0", "false", "no", "off")

# None = defer to the environment variable; True/False = explicit
# process-wide override installed by set_hotpath_caches().
_override: bool | None = None

# The environment default is read once at import: the gate sits on
# paths hot enough (every region mutation and cached query) that the
# repeated os.environ lookup was measurable. In-process flips go
# through set_hotpath_caches(), which still takes effect immediately;
# the env var is process-launch configuration (workers inherit it and
# re-read it at their own import).
_env_enabled = os.environ.get(_CACHES_ENV, "").strip().lower() in _FALSEY


def hotpath_caches_enabled() -> bool:
    """True when the incremental oracle and state indexes are active.

    Defaults to True; disabled by ``REPRO_DISABLE_HOTPATH_CACHES`` (any
    value other than 0/false/no/off, sampled at process start) or a
    :func:`set_hotpath_caches` override. Structures consult this at
    *query* time, so results stay correct even when the gate is
    flipped mid-run — a disabled query simply recomputes from scratch,
    and a re-enabled one rebuilds its (invalidated-on-write) cache.
    """
    if _override is not None:
        return _override
    return _env_enabled


def set_hotpath_caches(enabled: bool | None) -> bool | None:
    """Install a process-wide cache override; returns the previous one.

    Pass ``None`` to fall back to the environment variable. Intended
    for the benchmark harness and tests::

        previous = set_hotpath_caches(False)
        try:
            ...  # reference (uncached) run
        finally:
            set_hotpath_caches(previous)
    """
    global _override
    previous = _override
    _override = enabled
    return previous


class PerfCounters:
    """Mutable hot-path counters shared by a solver run.

    Attributes
    ----------
    contiguity_checks:
        Calls to ``Region.remains_contiguous_without`` (every Step-3
        swap/trim candidate and every Tabu donor re-validation).
    oracle_hits:
        Contiguity answers served from a region's cached
        articulation/removable set — O(1) each.
    oracle_rebuilds:
        Lazy rebuilds of that cache that ran a **full** Tarjan/component
        pass over the region — the first query of a fresh region, plus
        every fallback (amortized over every query between two
        mutations of the same region).
    oracle_incremental:
        Oracle rebuilds answered by replaying the region's pending
        membership mutations into its maintained block-cut structure
        (:class:`repro.contiguity.graph.BlockCutIndex`) instead of a
        full DFS — additions are pure block-cut-tree surgery, removals
        re-split only the affected biconnected block.
    oracle_fallbacks:
        Oracle rebuilds where a block-cut structure existed but could
        not absorb the pending mutations (articulation-point removal,
        disconnection, overlong mutation log) and a full DFS ran
        instead. Always ≤ ``oracle_rebuilds``.
    graph_traversals:
        Full passes over a region's induced subgraph (BFS connectivity
        checks, component scans, articulation passes) — the quantity
        the oracle exists to minimize.
    full_bfs_checks:
        Contiguity checks that were answered by running a full BFS
        over the region (as opposed to an O(1) oracle lookup). On the
        uncached reference path every check is one; with the oracle
        only a check that itself triggers the lazy rebuild counts.
    candidate_evaluations:
        Candidate moves examined by Step-3 adjustment and the Tabu
        move-pool derivation.
    frontier_queries / adjacency_queries:
        Region-frontier and region-adjacency lookups served by the
        ``SolutionState`` indexes (or their scan fallbacks).
    index_updates:
        Incremental index maintenance operations (one per area
        assignment change; O(degree) each).
    delta_fastpath:
        Heterogeneity/objective delta queries answered off a region's
        *maintained* sorted-values + prefix-sums structure — an
        O(log g) bisection, no re-sort of the region's dissimilarity
        vector.
    delta_recompute:
        Delta queries that had to (re)build the sorted structure from
        scratch — the first query of a fresh region, or every query on
        the uncached reference path.
    objective_struct_updates:
        Incremental maintenance operations on the objective structures
        (one sorted-list insertion/deletion or coordinate-sum update
        per region mutation).
    vector_derives:
        Tabu move-pool derivations answered by the numpy backend's
        batch scorer (:mod:`repro.core.arrays`) instead of the scalar
        per-candidate loop. Zero under the python backend.
    donor_cache_hits:
        Vector derives whose donor-side payload (candidate order, CSR
        gather geometry, donor feasibility, removal deltas) was reused
        from the membership-version-keyed cache — the donor was
        re-derived because a *neighboring* region changed, not its own
        membership. Zero under the python backend.
    pool_task_failures:
        Worker-pool tasks that raised, returned an unpicklable result,
        or died with their worker (each failure is retried or degraded
        — see :func:`repro.fact.pool.collect_resilient`).
    pool_task_retries:
        Failed tasks resubmitted to the (possibly restarted) pool.
    pool_tasks_degraded:
        Tasks that exhausted their retries (or tripped the per-task
        deadline) and were re-run in-process instead.
    pool_broken_restarts:
        Times a dead executor (``BrokenProcessPool``) was torn down and
        rebuilt mid-solve.
    pool_task_timeouts:
        Tasks abandoned because they exceeded
        ``FaCTConfig.worker_task_deadline_seconds``.
    checkpoint_writes:
        Atomic solve-checkpoint snapshots written
        (``FaCTConfig.checkpoint_path``).
    checkpoint_replays:
        Construction passes / portfolio members replayed from a resume
        checkpoint instead of being recomputed.
    certifications:
        Independent certification passes run over a partition
        (``FaCTConfig.certify``).
    timings:
        Named wall-clock sections recorded via :meth:`time_section`
        or :meth:`record_seconds` (per-phase timings come from the
        solver facade).

        .. deprecated:: PR 5
            ``timings`` is now a read-only *view* over the
            ``phase_seconds`` counters of this struct's backing
            :class:`repro.obs.metrics.MetricsRegistry`
            (:attr:`timing_metrics`) — the registry is the source of
            truth and what the telemetry layer exports. The dict shape
            (``{name: seconds}``) is preserved for every existing
            consumer; mutate through :meth:`record_seconds` /
            :meth:`time_section`, not by assigning to the view.
    """

    __slots__ = (
        "contiguity_checks",
        "oracle_hits",
        "oracle_rebuilds",
        "oracle_incremental",
        "oracle_fallbacks",
        "graph_traversals",
        "full_bfs_checks",
        "candidate_evaluations",
        "frontier_queries",
        "adjacency_queries",
        "index_updates",
        "delta_fastpath",
        "delta_recompute",
        "objective_struct_updates",
        "vector_derives",
        "donor_cache_hits",
        "pool_task_failures",
        "pool_task_retries",
        "pool_tasks_degraded",
        "pool_broken_restarts",
        "pool_task_timeouts",
        "checkpoint_writes",
        "checkpoint_replays",
        "certifications",
        "_timing_metrics",
    )

    _COUNTER_FIELDS = (
        "contiguity_checks",
        "oracle_hits",
        "oracle_rebuilds",
        "oracle_incremental",
        "oracle_fallbacks",
        "graph_traversals",
        "full_bfs_checks",
        "candidate_evaluations",
        "frontier_queries",
        "adjacency_queries",
        "index_updates",
        "delta_fastpath",
        "delta_recompute",
        "objective_struct_updates",
        "vector_derives",
        "donor_cache_hits",
        "pool_task_failures",
        "pool_task_retries",
        "pool_tasks_degraded",
        "pool_broken_restarts",
        "pool_task_timeouts",
        "checkpoint_writes",
        "checkpoint_replays",
        "certifications",
    )

    def __init__(self) -> None:
        for name in self._COUNTER_FIELDS:
            setattr(self, name, 0)
        self._timing_metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    @property
    def timings(self) -> dict[str, float]:
        """Named wall-clock sections as ``{name: seconds}`` — a
        compatibility view over :attr:`timing_metrics` (see the class
        docstring's deprecation note)."""
        return self._timing_metrics.label_values("phase_seconds", "phase")

    @property
    def timing_metrics(self) -> MetricsRegistry:
        """The :class:`repro.obs.metrics.MetricsRegistry` backing the
        named timings (``phase_seconds{phase=...}`` counters)."""
        return self._timing_metrics

    @property
    def oracle_hit_rate(self) -> float:
        """Fraction of oracle lookups served without a rebuild."""
        total = self.oracle_hits + self.oracle_rebuilds
        if total == 0:
            return 0.0
        return self.oracle_hits / total

    @property
    def oracle_incremental_rate(self) -> float:
        """Fraction of oracle rebuilds served by block-cut replay
        instead of a full Hopcroft–Tarjan pass."""
        total = self.oracle_incremental + self.oracle_rebuilds
        if total == 0:
            return 0.0
        return self.oracle_incremental / total

    @property
    def delta_fastpath_rate(self) -> float:
        """Fraction of objective-delta queries answered off the
        maintained structure (no from-scratch re-sort)."""
        total = self.delta_fastpath + self.delta_recompute
        if total == 0:
            return 0.0
        return self.delta_fastpath / total

    def record_seconds(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock time under *name*."""
        self._timing_metrics.counter("phase_seconds", phase=name).inc(seconds)

    @contextmanager
    def time_section(self, name: str):
        """Context manager accumulating the body's wall-clock under
        *name*."""
        started = perf_counter()
        try:
            yield self
        finally:
            self.record_seconds(name, perf_counter() - started)

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Fold *other*'s counters and timings into this one."""
        for name in self._COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for name, seconds in other.timings.items():
            self.record_seconds(name, seconds)
        return self

    def reset(self) -> None:
        """Zero every counter and drop all timings."""
        for name in self._COUNTER_FIELDS:
            setattr(self, name, 0)
        self._timing_metrics = MetricsRegistry()

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (JSON-serializable) for reports and bench
        output."""
        payload: dict[str, object] = {
            name: getattr(self, name) for name in self._COUNTER_FIELDS
        }
        payload["oracle_hit_rate"] = round(self.oracle_hit_rate, 4)
        payload["oracle_incremental_rate"] = round(
            self.oracle_incremental_rate, 4
        )
        payload["delta_fastpath_rate"] = round(self.delta_fastpath_rate, 4)
        payload["timings"] = {
            name: round(seconds, 6) for name, seconds in sorted(self.timings.items())
        }
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        inner = ", ".join(
            f"{name}={getattr(self, name)}" for name in self._COUNTER_FIELDS
        )
        return f"PerfCounters({inner})"
