"""Core EMP data model: areas, constraints, regions, partitions.

This subpackage implements Section III of the paper — the problem
definition — plus the incremental bookkeeping (aggregates,
heterogeneity) that the FaCT solver builds on.
"""

from .aggregates import Aggregate, AggregateState
from .area import Area, AreaCollection
from .constraints import (
    Constraint,
    ConstraintFamily,
    ConstraintSet,
    avg_constraint,
    count_constraint,
    max_constraint,
    min_constraint,
    sum_constraint,
)
from .heterogeneity import (
    improvement_ratio,
    pairwise_absolute_deviation,
    region_heterogeneity,
    total_heterogeneity,
)
from .partition import UNASSIGNED, Partition
from .perf import PerfCounters, hotpath_caches_enabled, set_hotpath_caches
from .region import Region

__all__ = [
    "Aggregate",
    "AggregateState",
    "Area",
    "AreaCollection",
    "Constraint",
    "ConstraintFamily",
    "ConstraintSet",
    "Partition",
    "PerfCounters",
    "Region",
    "UNASSIGNED",
    "avg_constraint",
    "count_constraint",
    "hotpath_caches_enabled",
    "improvement_ratio",
    "max_constraint",
    "min_constraint",
    "pairwise_absolute_deviation",
    "region_heterogeneity",
    "set_hotpath_caches",
    "sum_constraint",
    "total_heterogeneity",
]
