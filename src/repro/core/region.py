"""Mutable regions with incrementally maintained aggregates.

A :class:`Region` (Definition III.2) is a non-empty, spatially
contiguous set of areas. The FaCT construction and Tabu phases mutate
regions constantly — adding, removing, swapping and merging areas — so
a region maintains, incrementally:

- one :class:`~repro.core.aggregates.AggregateState` per *tracked*
  attribute (the attributes mentioned by the query's constraints), and
- its internal heterogeneity contribution
  ``sum_{a_i, a_j in R} |d_i - d_j|`` over unordered pairs.

Contiguity is **not** enforced by ``add_area``/``remove_area`` — the
solver performs moves it has already validated — but the class provides
the validation predicates (:meth:`is_contiguous`,
:meth:`remains_contiguous_without`) used before every move.

Those predicates are served by an **incremental contiguity oracle**:
the region lazily computes, in one Tarjan/component pass, the set of
members whose removal keeps it contiguous (:meth:`removable_areas`),
caches it, and invalidates the cache on every membership mutation.
Between mutations, ``remains_contiguous_without`` is an O(1) set
lookup instead of a BFS over the region — the difference between
O(candidates × (|R|+E)) and O(|R|+E) per solver iteration. Setting
``REPRO_DISABLE_HOTPATH_CACHES`` (see :mod:`repro.core.perf`) bypasses
the cache and recomputes every verdict from scratch; both paths return
identical answers.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator

from ..contiguity.graph import removable_set
from ..exceptions import ContiguityError, InvalidAreaError
from .aggregates import Aggregate, AggregateState
from .area import AreaCollection
from .constraints import Constraint, ConstraintSet
from .perf import PerfCounters, hotpath_caches_enabled

__all__ = ["Region"]


class Region:
    """A mutable region over an :class:`AreaCollection`.

    Parameters
    ----------
    region_id:
        Integer label. FaCT uses ``-1`` for temporary regions that are
        not yet committed to the region list (Algorithm 1 in the paper).
    collection:
        The area collection the region draws areas from.
    tracked_attributes:
        Attribute names whose aggregates must be maintained. Pass the
        result of ``ConstraintSet.attributes()``; the dissimilarity
        values are always tracked separately.
    areas:
        Optional initial members.
    """

    __slots__ = (
        "region_id",
        "_collection",
        "_areas",
        "_aggregates",
        "_dissimilarities",
        "_heterogeneity",
        "_sorted_d",
        "_prefix_d",
        "_contig_cache",
        "perf",
    )

    def __init__(
        self,
        region_id: int,
        collection: AreaCollection,
        tracked_attributes: Iterable[str] = (),
        areas: Iterable[int] = (),
        perf: PerfCounters | None = None,
    ):
        self.region_id = region_id
        self._collection = collection
        self._areas: set[int] = set()
        self._aggregates: dict[str, AggregateState] = {
            name: AggregateState() for name in tracked_attributes
        }
        self._dissimilarities: dict[int, float] = {}
        self._heterogeneity = 0.0
        # Sorted dissimilarity values + prefix sums, rebuilt lazily:
        # they turn heterogeneity-delta queries (the Tabu phase's inner
        # loop) into O(log g) bisections instead of O(g) scans.
        self._sorted_d: list[float] | None = None
        self._prefix_d: list[float] | None = None
        # Contiguity oracle: (is_contiguous, removable member set),
        # rebuilt lazily and invalidated on every membership mutation.
        self._contig_cache: tuple[bool, frozenset[int]] | None = None
        self.perf = perf
        for area_id in areas:
            self.add_area(area_id)

    # ------------------------------------------------------------------
    # collection protocol
    # ------------------------------------------------------------------
    @property
    def collection(self) -> AreaCollection:
        """The underlying area collection."""
        return self._collection

    @property
    def area_ids(self) -> frozenset[int]:
        """The member area identifiers (frozen snapshot)."""
        return frozenset(self._areas)

    @property
    def size(self) -> int:
        """Number of member areas ``g``."""
        return len(self._areas)

    def __len__(self) -> int:
        return len(self._areas)

    def __iter__(self) -> Iterator[int]:
        return iter(self._areas)

    def __contains__(self, area_id: int) -> bool:
        return area_id in self._areas

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_area(self, area_id: int) -> None:
        """Add one area, updating aggregates and heterogeneity in
        O(g + #tracked attributes)."""
        if area_id in self._areas:
            raise InvalidAreaError(
                f"area {area_id} is already in region {self.region_id}"
            )
        area = self._collection.area(area_id)
        for name, state in self._aggregates.items():
            state.add(area.attributes[name])
        d = self._collection.dissimilarity(area_id)
        self._heterogeneity += self._abs_deviation_sum(d)
        self._dissimilarities[area_id] = d
        self._areas.add(area_id)
        self._sorted_d = None  # invalidate the delta-query cache
        self._contig_cache = None  # invalidate the contiguity oracle

    def remove_area(self, area_id: int) -> None:
        """Remove one area, updating aggregates and heterogeneity."""
        if area_id not in self._areas:
            raise InvalidAreaError(
                f"area {area_id} is not in region {self.region_id}"
            )
        area = self._collection.area(area_id)
        for name, state in self._aggregates.items():
            state.remove(area.attributes[name])
        d = self._dissimilarities.pop(area_id)
        self._heterogeneity -= self._abs_deviation_sum(d)
        self._areas.remove(area_id)
        self._sorted_d = None  # invalidate the delta-query cache
        self._contig_cache = None  # invalidate the contiguity oracle
        if not self._areas:
            self._heterogeneity = 0.0  # cancel any float drift

    def merge(self, other: "Region") -> None:
        """Absorb all areas of *other* into this region.

        The donor region is emptied. Raises if the two regions overlap.
        """
        if self._areas & other._areas:
            raise InvalidAreaError("cannot merge overlapping regions")
        for area_id in list(other._areas):
            other.remove_area(area_id)
            self.add_area(area_id)

    def copy(self, region_id: int | None = None) -> "Region":
        """Return an independent copy (used by construction restarts)."""
        clone = Region(
            self.region_id if region_id is None else region_id,
            self._collection,
            self._aggregates.keys(),
            perf=self.perf,
        )
        for area_id in self._areas:
            clone.add_area(area_id)
        return clone

    # ------------------------------------------------------------------
    # aggregates and constraints
    # ------------------------------------------------------------------
    def aggregate(self, aggregate: str, attribute: str = "") -> float:
        """Value of ``aggregate(attribute)`` over the member areas.

        ``COUNT`` ignores the attribute and returns the region size.
        """
        name = Aggregate.normalize(aggregate)
        if name == Aggregate.COUNT:
            return float(len(self._areas))
        return self._state(attribute).value(name)

    def _state(self, attribute: str) -> AggregateState:
        try:
            return self._aggregates[attribute]
        except KeyError:
            raise InvalidAreaError(
                f"attribute {attribute!r} is not tracked by region "
                f"{self.region_id}; tracked: {sorted(self._aggregates)}"
            ) from None

    def constraint_value(self, constraint: Constraint) -> float:
        """The aggregate value this constraint compares against."""
        return self.aggregate(constraint.aggregate, constraint.attribute)

    def satisfies(self, constraint: Constraint) -> bool:
        """True when this region satisfies one constraint."""
        return constraint.contains(self.constraint_value(constraint))

    def satisfies_all(self, constraints: ConstraintSet | Iterable[Constraint]) -> bool:
        """True when this region satisfies every constraint."""
        return all(self.satisfies(c) for c in constraints)

    def violations(
        self, constraints: ConstraintSet | Iterable[Constraint]
    ) -> list[Constraint]:
        """The subset of *constraints* this region violates."""
        return [c for c in constraints if not self.satisfies(c)]

    def value_after_add(self, constraint: Constraint, area_id: int) -> float:
        """Constraint aggregate value if *area_id* were added."""
        if constraint.aggregate == Aggregate.COUNT:
            return float(len(self._areas) + 1)
        added = self._collection.attribute(area_id, constraint.attribute)
        return self._state(constraint.attribute).value_after_add(
            constraint.aggregate, added
        )

    def value_after_remove(self, constraint: Constraint, area_id: int) -> float:
        """Constraint aggregate value if *area_id* were removed."""
        if constraint.aggregate == Aggregate.COUNT:
            return float(len(self._areas) - 1)
        removed = self._collection.attribute(area_id, constraint.attribute)
        return self._state(constraint.attribute).value_after_remove(
            constraint.aggregate, removed
        )

    def satisfies_after_add(
        self, constraints: ConstraintSet | Iterable[Constraint], area_id: int
    ) -> bool:
        """True when adding *area_id* keeps every constraint satisfied."""
        return all(
            c.contains(self.value_after_add(c, area_id)) for c in constraints
        )

    def satisfies_after_remove(
        self, constraints: ConstraintSet | Iterable[Constraint], area_id: int
    ) -> bool:
        """True when removing *area_id* keeps every constraint satisfied
        (the region must stay non-empty)."""
        if len(self._areas) <= 1:
            return False
        return all(
            c.contains(self.value_after_remove(c, area_id)) for c in constraints
        )

    # ------------------------------------------------------------------
    # contiguity
    # ------------------------------------------------------------------
    def _oracle(self) -> tuple[bool, frozenset[int]]:
        """``(is_contiguous, removable members)``, cached.

        One Hopcroft–Tarjan pass per rebuild (components and
        articulation points fall out of the same DFS); every query
        between two membership mutations is then an O(1) lookup.
        """
        perf = self.perf
        if self._contig_cache is None:
            self._contig_cache = removable_set(
                self._areas, self._collection.neighbors
            )
            if perf is not None:
                perf.oracle_rebuilds += 1
                perf.graph_traversals += 1
        elif perf is not None:
            perf.oracle_hits += 1
        return self._contig_cache

    def is_contiguous(self) -> bool:
        """True when the member areas form one connected component."""
        if not self._areas:
            return False
        if not hotpath_caches_enabled():
            if self.perf is not None:
                self.perf.graph_traversals += 1
            return self._collection.is_contiguous(self._areas)
        return self._oracle()[0]

    def removable_areas(self) -> frozenset[int]:
        """Members whose removal keeps the region contiguous and
        non-empty — the non-articulation members of a connected region.

        This is the oracle's batch view: the Tabu move-pool derivation
        consumes it directly instead of running its own articulation
        pass, and :meth:`remains_contiguous_without` is a membership
        test against it. With the hot-path cache gate off
        (:func:`repro.core.perf.hotpath_caches_enabled`), recomputes
        from scratch on every call and stores nothing.
        """
        if not hotpath_caches_enabled():
            if self.perf is not None:
                self.perf.graph_traversals += 1
            return removable_set(self._areas, self._collection.neighbors)[1]
        return self._oracle()[1]

    def remains_contiguous_without(self, area_id: int) -> bool:
        """True when removing *area_id* leaves a connected, non-empty
        region — i.e. the area is not an articulation point of the
        region's induced subgraph (the donor-side check of Step 3 and
        the Tabu phase). O(1) between membership mutations; with the
        cache gate off, one fresh BFS over the remaining members per
        call (the pre-oracle reference behaviour)."""
        if area_id not in self._areas:
            raise InvalidAreaError(
                f"area {area_id} is not in region {self.region_id}"
            )
        perf = self.perf
        if perf is not None:
            perf.contiguity_checks += 1
        if not hotpath_caches_enabled():
            remaining = self._areas - {area_id}
            if not remaining:
                return False
            if perf is not None:
                perf.graph_traversals += 1
                perf.full_bfs_checks += 1
            return self._collection.is_contiguous(remaining)
        if perf is not None and self._contig_cache is None:
            # This check has to pay for the rebuild itself — the only
            # case where a check still costs a full graph pass.
            perf.full_bfs_checks += 1
        return area_id in self._oracle()[1]

    def neighboring_areas(self) -> frozenset[int]:
        """Area ids adjacent to the region but not inside it (its
        spatial frontier, including areas assigned to other regions)."""
        return self._collection.region_neighbors(self._areas)

    def touches(self, area_id: int) -> bool:
        """True when *area_id* is spatially adjacent to the region."""
        return bool(self._collection.neighbors(area_id) & self._areas)

    def touches_region(self, other: "Region") -> bool:
        """True when the two regions share at least one boundary pair."""
        if len(self._areas) > len(other._areas):
            return other.touches_region(self)
        for area_id in self._areas:
            if self._collection.neighbors(area_id) & other._areas:
                return True
        return False

    # ------------------------------------------------------------------
    # heterogeneity
    # ------------------------------------------------------------------
    @property
    def heterogeneity(self) -> float:
        """``sum_{a_i, a_j in R} |d_i - d_j|`` over unordered pairs,
        maintained incrementally."""
        return self._heterogeneity

    def _ensure_sorted(self) -> None:
        """(Re)build the sorted-dissimilarity prefix-sum cache."""
        if self._sorted_d is None:
            self._sorted_d = sorted(self._dissimilarities.values())
            prefix = [0.0]
            for value in self._sorted_d:
                prefix.append(prefix[-1] + value)
            self._prefix_d = prefix

    def _abs_deviation_sum(self, d: float) -> float:
        """``sum_j |d - d_j|`` over the member dissimilarities in
        O(log g) (after an amortized O(g log g) cache rebuild).

        A member whose own value equals *d* contributes 0, so the same
        query serves both "add an area with value d" and "remove the
        member with value d"."""
        self._ensure_sorted()
        values = self._sorted_d
        if not values:
            return 0.0
        k = bisect_left(values, d)
        below_sum = self._prefix_d[k]
        above_sum = self._prefix_d[-1] - below_sum
        return (d * k - below_sum) + (above_sum - d * (len(values) - k))

    def heterogeneity_delta_add(self, area_id: int) -> float:
        """Change in this region's heterogeneity if *area_id* joined."""
        d = self._collection.dissimilarity(area_id)
        return self._abs_deviation_sum(d)

    def heterogeneity_delta_remove(self, area_id: int) -> float:
        """Change (≤ 0) in heterogeneity if *area_id* left."""
        if area_id not in self._areas:
            raise InvalidAreaError(
                f"area {area_id} is not in region {self.region_id}"
            )
        # The member's own 0-distance term cancels, so the full-multiset
        # query equals the sum over the *other* members.
        return -self._abs_deviation_sum(self._dissimilarities[area_id])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Region(id={self.region_id}, size={len(self._areas)})"
