"""Mutable regions with incrementally maintained aggregates.

A :class:`Region` (Definition III.2) is a non-empty, spatially
contiguous set of areas. The FaCT construction and Tabu phases mutate
regions constantly — adding, removing, swapping and merging areas — so
a region maintains, incrementally:

- one :class:`~repro.core.aggregates.AggregateState` per *tracked*
  attribute (the attributes mentioned by the query's constraints), and
- its internal heterogeneity contribution
  ``sum_{a_i, a_j in R} |d_i - d_j|`` over unordered pairs.

Contiguity is **not** enforced by ``add_area``/``remove_area`` — the
solver performs moves it has already validated — but the class provides
the validation predicates (:meth:`is_contiguous`,
:meth:`remains_contiguous_without`) used before every move.

Those predicates are served by an **incremental contiguity oracle**:
the region lazily computes, in one Tarjan/component pass, the set of
members whose removal keeps it contiguous (:meth:`removable_areas`),
caches it, and invalidates the cache on every membership mutation.
Between mutations, ``remains_contiguous_without`` is an O(1) set
lookup instead of a BFS over the region — the difference between
O(candidates × (|R|+E)) and O(|R|+E) per solver iteration.

Heterogeneity-delta queries (the Tabu phase's innermost loop) are
served by a **maintained objective structure**: the member
dissimilarities in sorted order plus their prefix sums. One membership
mutation updates the sorted list in place (one ``insort``/deletion —
``objective_struct_updates`` in :class:`~repro.core.perf.
PerfCounters`) and merely marks the prefix sums dirty; a delta query
is then a single bisection, ``rank * d - prefix[rank]`` plus the
symmetric upper term — O(log g) instead of the O(g log g) re-sort of
the pre-structure implementation (``delta_fastpath`` vs
``delta_recompute``).

Setting ``REPRO_DISABLE_HOTPATH_CACHES`` (see :mod:`repro.core.perf`)
bypasses both caches and recomputes every verdict from scratch; both
paths return bit-identical answers (the sorted multiset, the prefix
accumulation order and the closed-form evaluation are the same in
either mode).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from itertools import accumulate
from typing import Iterable, Iterator

from ..contiguity.graph import BlockCutIndex, block_cut_state, removable_set
from ..exceptions import ContiguityError, InvalidAreaError
from .aggregates import Aggregate, AggregateState
from .area import AreaCollection
from .constraints import Constraint, ConstraintSet
from .perf import PerfCounters, hotpath_caches_enabled

__all__ = ["Region"]

# Pending block-cut mutations beyond this many trigger a full oracle
# rebuild instead of a replay: a long log usually means a bulk merge,
# where one DFS beats dozens of tree-surgery steps.
_BC_LOG_CAP = 128


class Region:
    """A mutable region over an :class:`AreaCollection`.

    Parameters
    ----------
    region_id:
        Integer label. FaCT uses ``-1`` for temporary regions that are
        not yet committed to the region list (Algorithm 1 in the paper).
    collection:
        The area collection the region draws areas from.
    tracked_attributes:
        Attribute names whose aggregates must be maintained. Pass the
        result of ``ConstraintSet.attributes()``; the dissimilarity
        values are always tracked separately.
    areas:
        Optional initial members.
    """

    __slots__ = (
        "region_id",
        "_collection",
        "_areas",
        "_aggregates",
        "_dissimilarities",
        "_heterogeneity",
        "_sorted_d",
        "_prefix_d",
        "_struct_np",
        "_induced_adj",
        "_contig_cache",
        "_bc_index",
        "_bc_log",
        "_version",
        "_array_state",
        "perf",
    )

    def __init__(
        self,
        region_id: int,
        collection: AreaCollection,
        tracked_attributes: Iterable[str] = (),
        areas: Iterable[int] = (),
        perf: PerfCounters | None = None,
        array_state=None,
    ):
        self.region_id = region_id
        self._collection = collection
        self._areas: set[int] = set()
        self._aggregates: dict[str, AggregateState] = {
            name: AggregateState() for name in tracked_attributes
        }
        self._dissimilarities: dict[int, float] = {}
        self._heterogeneity = 0.0
        # Maintained sorted dissimilarity values + lazily refreshed
        # prefix sums: heterogeneity-delta queries (the Tabu phase's
        # inner loop) are O(log g) bisections, and one membership
        # mutation costs a single in-place insort/deletion instead of
        # invalidating the whole structure.
        self._sorted_d: list[float] | None = None
        self._prefix_d: list[float] | None = None
        # ndarray copies of the structure above, cached for the
        # vectorized Tabu scorer and invalidated on every mutation.
        self._struct_np: tuple | None = None
        # Induced adjacency of the member set (member → in-region
        # neighbor list), maintained in O(degree) per mutation so each
        # oracle rebuild is a bare DFS over precomputed rows instead of
        # refiltering every member's full neighbor set.
        self._induced_adj: dict[int, list[int]] = {}
        # Contiguity oracle: (is_contiguous, removable member set),
        # rebuilt lazily and invalidated on every membership mutation.
        self._contig_cache: tuple[bool, frozenset[int]] | None = None
        # Incremental block-cut structure + pending mutation log. Each
        # log entry carries the mutation's own in-region neighbor
        # snapshot (the induced adjacency reflects *final* state, not
        # state at mutation time), so a lazy replay at the next oracle
        # query sees exactly what each mutation saw.
        self._bc_index: BlockCutIndex | None = None
        self._bc_log: list[tuple[bool, int, tuple[int, ...]]] = []
        # Monotonic membership version: bumped by every add/remove, so
        # derived caches keyed by (region id, version) — the Tabu
        # donor-side derive cache — survive neighbor-only dirtiness.
        self._version = 0
        # Optional ArrayState sink (numpy backend): mirrored from the
        # same call sites that update the scalar aggregates, so the
        # flat label/aggregate vectors accumulate in identical order.
        self._array_state = array_state
        self.perf = perf
        for area_id in areas:
            self.add_area(area_id)

    # ------------------------------------------------------------------
    # collection protocol
    # ------------------------------------------------------------------
    @property
    def collection(self) -> AreaCollection:
        """The underlying area collection."""
        return self._collection

    @property
    def area_ids(self) -> frozenset[int]:
        """The member area identifiers (frozen snapshot)."""
        return frozenset(self._areas)

    @property
    def size(self) -> int:
        """Number of member areas ``g``."""
        return len(self._areas)

    def __len__(self) -> int:
        return len(self._areas)

    def __iter__(self) -> Iterator[int]:
        return iter(self._areas)

    def __contains__(self, area_id: int) -> bool:
        return area_id in self._areas

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_area(self, area_id: int) -> None:
        """Add one area, updating aggregates, heterogeneity and the
        sorted objective structure in O(g + #tracked attributes)."""
        if area_id in self._areas:
            raise InvalidAreaError(
                f"area {area_id} is already in region {self.region_id}"
            )
        area = self._collection.area(area_id)
        for name, state in self._aggregates.items():
            state.add(area.attributes[name])
        d = self._collection.dissimilarity(area_id)
        # Delta over the *current* members, then insert — so the cached
        # structure and the uncached reference both price the same
        # multiset and the maintained total stays bit-identical.
        self._heterogeneity += self._abs_deviation_sum(d)
        self._dissimilarities[area_id] = d
        self._areas.add(area_id)
        self._struct_insert(d)
        adj = self._induced_adj
        mine: list[int] = []
        for neighbor in self._collection.neighbors(area_id):
            row = adj.get(neighbor)
            if row is not None:
                row.append(area_id)
                mine.append(neighbor)
        adj[area_id] = mine
        self._contig_cache = None  # invalidate the contiguity oracle
        self._version += 1
        if self._bc_index is not None:
            log = self._bc_log
            if len(log) >= _BC_LOG_CAP:
                self._bc_index = None
                log.clear()
            else:
                log.append((True, area_id, tuple(mine)))
        if self._array_state is not None:
            self._array_state.on_add(self.region_id, area_id)

    def remove_area(self, area_id: int) -> None:
        """Remove one area, updating aggregates, heterogeneity and the
        sorted objective structure."""
        if area_id not in self._areas:
            raise InvalidAreaError(
                f"area {area_id} is not in region {self.region_id}"
            )
        area = self._collection.area(area_id)
        for name, state in self._aggregates.items():
            state.remove(area.attributes[name])
        d = self._dissimilarities.pop(area_id)
        # Delete first, then price the departure against the remaining
        # members (the member's own |d - d| = 0 term never mattered).
        self._struct_remove(d)
        self._heterogeneity -= self._abs_deviation_sum(d)
        self._areas.remove(area_id)
        adj = self._induced_adj
        row = adj.pop(area_id)
        for neighbor in row:
            adj[neighbor].remove(area_id)
        self._contig_cache = None  # invalidate the contiguity oracle
        self._version += 1
        if self._bc_index is not None:
            log = self._bc_log
            if len(log) >= _BC_LOG_CAP:
                self._bc_index = None
                log.clear()
            else:
                log.append((False, area_id, ()))
        if self._array_state is not None:
            self._array_state.on_remove(self.region_id, area_id)
        if not self._areas:
            self._heterogeneity = 0.0  # cancel any float drift

    def merge(self, other: "Region") -> None:
        """Absorb all areas of *other* into this region.

        The donor region is emptied. Raises if the two regions overlap.
        """
        if self._areas & other._areas:
            raise InvalidAreaError("cannot merge overlapping regions")
        for area_id in list(other._areas):
            other.remove_area(area_id)
            self.add_area(area_id)

    def copy(self, region_id: int | None = None) -> "Region":
        """Return an independent copy (used by construction restarts)."""
        clone = Region(
            self.region_id if region_id is None else region_id,
            self._collection,
            self._aggregates.keys(),
            perf=self.perf,
        )
        for area_id in self._areas:
            clone.add_area(area_id)
        return clone

    # ------------------------------------------------------------------
    # aggregates and constraints
    # ------------------------------------------------------------------
    def aggregate(self, aggregate: str, attribute: str = "") -> float:
        """Value of ``aggregate(attribute)`` over the member areas.

        ``COUNT`` ignores the attribute and returns the region size.
        """
        name = Aggregate.normalize(aggregate)
        if name == Aggregate.COUNT:
            return float(len(self._areas))
        return self._state(attribute).value(name)

    def _state(self, attribute: str) -> AggregateState:
        try:
            return self._aggregates[attribute]
        except KeyError:
            raise InvalidAreaError(
                f"attribute {attribute!r} is not tracked by region "
                f"{self.region_id}; tracked: {sorted(self._aggregates)}"
            ) from None

    def constraint_value(self, constraint: Constraint) -> float:
        """The aggregate value this constraint compares against."""
        return self.aggregate(constraint.aggregate, constraint.attribute)

    def satisfies(self, constraint: Constraint) -> bool:
        """True when this region satisfies one constraint."""
        return constraint.contains(self.constraint_value(constraint))

    def satisfies_all(self, constraints: ConstraintSet | Iterable[Constraint]) -> bool:
        """True when this region satisfies every constraint."""
        return all(self.satisfies(c) for c in constraints)

    def violations(
        self, constraints: ConstraintSet | Iterable[Constraint]
    ) -> list[Constraint]:
        """The subset of *constraints* this region violates."""
        return [c for c in constraints if not self.satisfies(c)]

    def value_after_add(self, constraint: Constraint, area_id: int) -> float:
        """Constraint aggregate value if *area_id* were added."""
        if constraint.aggregate == Aggregate.COUNT:
            return float(len(self._areas) + 1)
        added = self._collection.attribute(area_id, constraint.attribute)
        return self._state(constraint.attribute).value_after_add(
            constraint.aggregate, added
        )

    def value_after_remove(self, constraint: Constraint, area_id: int) -> float:
        """Constraint aggregate value if *area_id* were removed."""
        if constraint.aggregate == Aggregate.COUNT:
            return float(len(self._areas) - 1)
        removed = self._collection.attribute(area_id, constraint.attribute)
        return self._state(constraint.attribute).value_after_remove(
            constraint.aggregate, removed
        )

    def satisfies_after_add(
        self, constraints: ConstraintSet | Iterable[Constraint], area_id: int
    ) -> bool:
        """True when adding *area_id* keeps every constraint satisfied."""
        # Explicit loop: this runs once per Tabu candidate evaluation,
        # where the all(<genexpr>) frame overhead is measurable.
        for c in constraints:
            if not c.contains(self.value_after_add(c, area_id)):
                return False
        return True

    def satisfies_after_remove(
        self, constraints: ConstraintSet | Iterable[Constraint], area_id: int
    ) -> bool:
        """True when removing *area_id* keeps every constraint satisfied
        (the region must stay non-empty)."""
        if len(self._areas) <= 1:
            return False
        for c in constraints:
            if not c.contains(self.value_after_remove(c, area_id)):
                return False
        return True

    # ------------------------------------------------------------------
    # contiguity
    # ------------------------------------------------------------------
    def _oracle(self) -> tuple[bool, frozenset[int]]:
        """``(is_contiguous, removable members)``, cached.

        A stale cache is refreshed **incrementally** whenever the
        region carries a live block-cut structure: the pending
        mutation log replays into it (tree surgery for additions, a
        single-block re-split for removals — see
        :class:`repro.contiguity.graph.BlockCutIndex`), and the answer
        falls out of the maintained articulation set. Only when no
        structure exists, or the replay hits a case it cannot absorb
        (articulation removal, disconnection, overlong log), does a
        full Hopcroft–Tarjan pass run — and that pass re-seeds the
        structure for subsequent queries. Every query between two
        membership mutations is an O(1) lookup either way.
        """
        perf = self.perf
        cache = self._contig_cache
        if cache is not None:
            if perf is not None:
                perf.oracle_hits += 1
            return cache
        index = self._bc_index
        fellback = False
        if index is not None:
            log = self._bc_log
            applied = True
            neighbors = self._collection.neighbors
            for is_add, area_id, snapshot in log:
                if is_add:
                    applied = index.add_vertex(area_id, snapshot)
                else:
                    applied = index.remove_vertex(area_id, neighbors)
                if not applied:
                    break
            log.clear()
            if applied and len(index) == len(self._areas):
                areas = self._areas
                if len(areas) <= 1:
                    answer = (bool(areas), frozenset())
                else:
                    answer = (True, frozenset(areas) - index.articulation)
                if perf is not None:
                    perf.oracle_incremental += 1
                self._contig_cache = answer
                return answer
            self._bc_index = None
            fellback = True
        answer = self._rebuild_block_structure()
        if perf is not None:
            perf.oracle_rebuilds += 1
            perf.graph_traversals += 1
            if fellback:
                perf.oracle_fallbacks += 1
        self._contig_cache = answer
        return answer

    def _rebuild_block_structure(self) -> tuple[bool, frozenset[int]]:
        """Full-DFS oracle rebuild that re-seeds the incremental
        block-cut structure (connected regions only — a fragmented
        region keeps none and every query re-scans until it heals).
        Mirrors :func:`repro.contiguity.graph.removable_set` verdict
        semantics exactly."""
        areas = self._areas
        self._bc_log.clear()
        if not areas:
            self._bc_index = None
            return (False, frozenset())
        components, articulation, blocks = block_cut_state(
            areas, self._collection.neighbors, adjacency=self._induced_adj
        )
        if len(components) == 1:
            index = BlockCutIndex()
            index.load(blocks, articulation)
            self._bc_index = index
            if len(areas) == 1:
                return (True, frozenset())
            return (True, frozenset(areas) - articulation)
        self._bc_index = None
        if len(components) == 2:
            return (False, frozenset(
                node
                for component in components
                if len(component) == 1
                for node in component
            ))
        return (False, frozenset())

    def is_contiguous(self) -> bool:
        """True when the member areas form one connected component."""
        if not self._areas:
            return False
        if not hotpath_caches_enabled():
            if self.perf is not None:
                self.perf.graph_traversals += 1
            return self._collection.is_contiguous(self._areas)
        return self._oracle()[0]

    def removable_areas(self) -> frozenset[int]:
        """Members whose removal keeps the region contiguous and
        non-empty — the non-articulation members of a connected region.

        This is the oracle's batch view: the Tabu move-pool derivation
        consumes it directly instead of running its own articulation
        pass, and :meth:`remains_contiguous_without` is a membership
        test against it. With the hot-path cache gate off
        (:func:`repro.core.perf.hotpath_caches_enabled`), recomputes
        from scratch on every call and stores nothing.
        """
        if not hotpath_caches_enabled():
            if self.perf is not None:
                self.perf.graph_traversals += 1
            return removable_set(self._areas, self._collection.neighbors)[1]
        return self._oracle()[1]

    def remains_contiguous_without(self, area_id: int) -> bool:
        """True when removing *area_id* leaves a connected, non-empty
        region — i.e. the area is not an articulation point of the
        region's induced subgraph (the donor-side check of Step 3 and
        the Tabu phase). O(1) between membership mutations; with the
        cache gate off, one fresh BFS over the remaining members per
        call (the pre-oracle reference behaviour)."""
        if area_id not in self._areas:
            raise InvalidAreaError(
                f"area {area_id} is not in region {self.region_id}"
            )
        perf = self.perf
        if perf is not None:
            perf.contiguity_checks += 1
        if not hotpath_caches_enabled():
            remaining = self._areas - {area_id}
            if not remaining:
                return False
            if perf is not None:
                perf.graph_traversals += 1
                perf.full_bfs_checks += 1
            return self._collection.is_contiguous(remaining)
        if perf is not None and self._contig_cache is None:
            # This check has to pay for the rebuild itself — the only
            # case where a check still costs a full graph pass.
            perf.full_bfs_checks += 1
        return area_id in self._oracle()[1]

    def neighboring_areas(self) -> frozenset[int]:
        """Area ids adjacent to the region but not inside it (its
        spatial frontier, including areas assigned to other regions)."""
        return self._collection.region_neighbors(self._areas)

    def touches(self, area_id: int) -> bool:
        """True when *area_id* is spatially adjacent to the region."""
        return bool(self._collection.neighbors(area_id) & self._areas)

    def touches_region(self, other: "Region") -> bool:
        """True when the two regions share at least one boundary pair."""
        if len(self._areas) > len(other._areas):
            return other.touches_region(self)
        for area_id in self._areas:
            if self._collection.neighbors(area_id) & other._areas:
                return True
        return False

    # ------------------------------------------------------------------
    # heterogeneity
    # ------------------------------------------------------------------
    @property
    def heterogeneity(self) -> float:
        """``sum_{a_i, a_j in R} |d_i - d_j|`` over unordered pairs,
        maintained incrementally."""
        return self._heterogeneity

    # -- maintained sorted-values + prefix-sums structure ---------------
    def _struct_insert(self, d: float) -> None:
        """Insert one dissimilarity value into the sorted structure.

        One O(g) ``insort`` (a C-level memmove); the prefix sums are
        only marked dirty and rebuilt lazily in one ``accumulate`` pass
        at the next query, so a burst of mutations pays for a single
        rebuild. With the cache gate off the structure is dropped and
        every query recomputes from scratch.
        """
        self._struct_np = None
        if not hotpath_caches_enabled():
            self._sorted_d = None
            self._prefix_d = None
            return
        if self._sorted_d is not None:
            insort(self._sorted_d, d)
            self._prefix_d = None
            if self.perf is not None:
                self.perf.objective_struct_updates += 1

    def _struct_remove(self, d: float) -> None:
        """Remove one occurrence of *d* from the sorted structure."""
        self._struct_np = None
        if not hotpath_caches_enabled():
            self._sorted_d = None
            self._prefix_d = None
            return
        values = self._sorted_d
        if values is not None:
            index = bisect_left(values, d)
            if index >= len(values) or values[index] != d:
                raise InvalidAreaError(
                    f"objective structure of region {self.region_id} "
                    f"diverged: value {d!r} not found"
                )
            del values[index]
            self._prefix_d = None
            if self.perf is not None:
                self.perf.objective_struct_updates += 1

    def _abs_deviation_sum(self, d: float) -> float:
        """``sum_j |d - d_j|`` over the member dissimilarities.

        O(log g) off the maintained structure (one bisection, then
        ``rank * d - prefix[rank]`` plus the symmetric upper term);
        O(g log g) from scratch on the first query of a fresh region or
        whenever the hot-path cache gate is off. Both paths sort the
        same multiset and accumulate the prefix sums in the same order,
        so they return bit-identical values.

        A member whose own value equals *d* contributes 0, so the same
        query serves both "add an area with value d" and "remove the
        member with value d"."""
        perf = self.perf
        if not hotpath_caches_enabled():
            # Reference path: no stored structure, full recompute.
            if perf is not None:
                perf.delta_recompute += 1
            values = sorted(self._dissimilarities.values())
            prefix = list(accumulate(values, initial=0.0))
        else:
            values = self._sorted_d
            if values is None:
                values = self._sorted_d = sorted(
                    self._dissimilarities.values()
                )
                self._prefix_d = None
                if perf is not None:
                    perf.delta_recompute += 1
            elif perf is not None:
                perf.delta_fastpath += 1
            prefix = self._prefix_d
            if prefix is None:
                prefix = self._prefix_d = list(
                    accumulate(values, initial=0.0)
                )
        if not values:
            return 0.0
        k = bisect_left(values, d)
        below_sum = prefix[k]
        above_sum = prefix[-1] - below_sum
        return (d * k - below_sum) + (above_sum - d * (len(values) - k))

    def _struct_views(self) -> tuple[list[float], list[float]]:
        """The maintained ``(sorted values, prefix sums)`` lists,
        building them lazily — the batch counterpart of the cached
        branch of :meth:`_abs_deviation_sum`, used by the vectorized
        Tabu scorer to price many deltas against one region at once.
        Only meaningful with the hot-path cache gate on (the vector
        path checks the gate before calling)."""
        perf = self.perf
        values = self._sorted_d
        if values is None:
            values = self._sorted_d = sorted(self._dissimilarities.values())
            self._prefix_d = None
            if perf is not None:
                perf.delta_recompute += 1
        prefix = self._prefix_d
        if prefix is None:
            prefix = self._prefix_d = list(accumulate(values, initial=0.0))
        return values, prefix

    def _struct_arrays(self, np):
        """:meth:`_struct_views` as cached float64 ndarrays.

        The conversion is the expensive part of pricing a batch against
        this region, so the arrays persist until the next membership
        mutation (any :meth:`_struct_insert`/:meth:`_struct_remove`
        drops them). *np* is passed in so this module keeps zero numpy
        imports — only the vectorized Tabu scorer calls this.
        """
        cached = self._struct_np
        if cached is None:
            values, prefix = self._struct_views()
            cached = self._struct_np = (
                np.asarray(values, dtype=np.float64),
                np.asarray(prefix, dtype=np.float64),
            )
        return cached

    def sorted_dissimilarities(self) -> list[float]:
        """The member dissimilarities in non-decreasing order (a copy).

        Served off the maintained structure when the cache gate is on;
        suitable for ``pairwise_absolute_deviation(...,
        assume_sorted=True)``."""
        if hotpath_caches_enabled() and self._sorted_d is not None:
            return list(self._sorted_d)
        return sorted(self._dissimilarities.values())

    def check_objective_structure(self) -> None:
        """Assert the maintained structure matches a rederivation.

        O(g log g) — a test/debug aid, never called on hot paths.
        Raises ``AssertionError`` on any divergence.
        """
        if self._sorted_d is None:
            return
        expected = sorted(self._dissimilarities.values())
        assert self._sorted_d == expected, (
            f"sorted structure diverged for region {self.region_id}: "
            f"{self._sorted_d} != {expected}"
        )
        if self._prefix_d is not None:
            rebuilt = list(accumulate(expected, initial=0.0))
            assert self._prefix_d == rebuilt, (
                f"prefix sums diverged for region {self.region_id}: "
                f"{self._prefix_d} != {rebuilt}"
            )

    def heterogeneity_delta_add(self, area_id: int) -> float:
        """Change in this region's heterogeneity if *area_id* joined."""
        d = self._collection.dissimilarity(area_id)
        return self._abs_deviation_sum(d)

    def heterogeneity_delta_remove(self, area_id: int) -> float:
        """Change (≤ 0) in heterogeneity if *area_id* left."""
        if area_id not in self._areas:
            raise InvalidAreaError(
                f"area {area_id} is not in region {self.region_id}"
            )
        # The member's own 0-distance term cancels, so the full-multiset
        # query equals the sum over the *other* members.
        return -self._abs_deviation_sum(self._dissimilarities[area_id])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Region(id={self.region_id}, size={len(self._areas)})"
