"""Streaming SQL-style aggregates over a multiset of values.

The EMP problem (Section III of the paper) evaluates five aggregate
functions over the spatially extensive attribute values of the areas in
a region: ``MIN``, ``MAX``, ``AVG``, ``SUM`` and ``COUNT``. Regions are
mutated heavily by the FaCT construction and Tabu phases (areas are
added, removed and swapped), so aggregates must support efficient
incremental updates in both directions.

:class:`AggregateState` maintains one attribute's multiset of values:

- ``SUM``/``COUNT``/``AVG`` are O(1) per update.
- ``MIN``/``MAX`` are O(1) on insert and amortized cheap on remove: the
  cached extremum is only recomputed when the removed value *was* the
  cached extremum and no copy of it remains (regions are small in
  practice — a handful to a few dozen areas — so the recompute scans a
  short multiset).

Values are stored in a :class:`collections.Counter` keyed by the exact
float, which is safe because values are never arithmetically derived:
the same area always contributes the identical float object value.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Iterator

__all__ = ["AggregateState", "Aggregate", "AGGREGATE_NAMES"]


# The canonical aggregate identifiers, mirroring the SQL keywords used
# throughout the paper. They live here (not in constraints.py) so low
# level code can depend on them without importing the constraint model.
class Aggregate:
    """Enumeration of the five EMP aggregate functions.

    Implemented as plain string constants rather than :class:`enum.Enum`
    so that user-facing APIs accept both ``Aggregate.MIN`` and the
    literal string ``"MIN"`` interchangeably.
    """

    MIN = "MIN"
    MAX = "MAX"
    AVG = "AVG"
    SUM = "SUM"
    COUNT = "COUNT"

    @classmethod
    def all(cls) -> tuple[str, ...]:
        """Return the five aggregate names in the paper's order."""
        return (cls.MIN, cls.MAX, cls.AVG, cls.SUM, cls.COUNT)

    @classmethod
    def normalize(cls, value: str) -> str:
        """Return the canonical (upper-case) name for *value*.

        Raises :class:`ValueError` for unknown aggregate names.
        """
        name = str(value).upper()
        if name not in cls.all():
            raise ValueError(
                f"unknown aggregate {value!r}; expected one of {cls.all()}"
            )
        return name


AGGREGATE_NAMES = Aggregate.all()

# Set view of the canonical names: the constraint-validation hot path
# (millions of hypothetical-update calls per solve) skips the
# str.upper() round trip for names that are already canonical — which
# they always are when they come off a Constraint.
_CANONICAL = frozenset(AGGREGATE_NAMES)


class AggregateState:
    """Incrementally maintained aggregates of one value multiset.

    >>> state = AggregateState([4.0, 2.0])
    >>> state.add(6.0)
    >>> state.sum, state.count, state.avg
    (12.0, 3, 4.0)
    >>> state.remove(2.0)
    >>> state.min, state.max
    (4.0, 6.0)
    """

    __slots__ = ("_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, values: Iterable[float] = ()):
        self._counts: Counter[float] = Counter()
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        for value in values:
            self.add(value)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Insert one occurrence of *value* into the multiset."""
        value = float(value)
        self._counts[value] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def remove(self, value: float) -> None:
        """Remove one occurrence of *value*.

        Raises :class:`KeyError` if *value* is not present, which guards
        against region bookkeeping bugs in the solver.
        """
        value = float(value)
        present = self._counts.get(value, 0)
        if present <= 0:
            raise KeyError(f"value {value!r} not present in aggregate state")
        if present == 1:
            del self._counts[value]
        else:
            self._counts[value] = present - 1
        self._count -= 1
        self._sum -= value
        if self._count == 0:
            self._min = math.inf
            self._max = -math.inf
            self._sum = 0.0  # cancel float drift on emptied state
            return
        if value <= self._min and value not in self._counts:
            self._min = min(self._counts)
        if value >= self._max and value not in self._counts:
            self._max = max(self._counts)

    def merge(self, other: "AggregateState") -> None:
        """Fold all values of *other* into this state (region merge)."""
        for value, multiplicity in other._counts.items():
            for _ in range(multiplicity):
                self.add(value)

    def copy(self) -> "AggregateState":
        """Return an independent deep copy of this state."""
        clone = AggregateState()
        clone._counts = Counter(self._counts)
        clone._count = self._count
        clone._sum = self._sum
        clone._min = self._min
        clone._max = self._max
        return clone

    # ------------------------------------------------------------------
    # aggregate values
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """``COUNT`` — the number of values in the multiset."""
        return self._count

    @property
    def sum(self) -> float:
        """``SUM`` of the multiset; ``0.0`` when empty (SQL returns NULL,
        but 0 is the convenient identity for the solver's arithmetic)."""
        return self._sum

    @property
    def min(self) -> float:
        """``MIN`` of the multiset; ``+inf`` when empty."""
        return self._min

    @property
    def max(self) -> float:
        """``MAX`` of the multiset; ``-inf`` when empty."""
        return self._max

    @property
    def avg(self) -> float:
        """``AVG`` of the multiset; ``nan`` when empty."""
        if self._count == 0:
            return math.nan
        return self._sum / self._count

    def value(self, aggregate: str) -> float:
        """Return the value of the named aggregate function."""
        name = (
            aggregate
            if aggregate in _CANONICAL
            else Aggregate.normalize(aggregate)
        )
        if name == Aggregate.MIN:
            return self.min
        if name == Aggregate.MAX:
            return self.max
        if name == Aggregate.AVG:
            return self.avg
        if name == Aggregate.SUM:
            return self.sum
        return float(self.count)

    # ------------------------------------------------------------------
    # hypothetical updates (used by constraint validation before moves)
    # ------------------------------------------------------------------
    def value_after_add(self, aggregate: str, added: float) -> float:
        """Aggregate value if *added* were inserted, without mutating."""
        name = (
            aggregate
            if aggregate in _CANONICAL
            else Aggregate.normalize(aggregate)
        )
        added = float(added)
        if name == Aggregate.MIN:
            return min(self._min, added)
        if name == Aggregate.MAX:
            return max(self._max, added)
        if name == Aggregate.SUM:
            return self._sum + added
        if name == Aggregate.COUNT:
            return float(self._count + 1)
        return (self._sum + added) / (self._count + 1)

    def value_after_remove(self, aggregate: str, removed: float) -> float:
        """Aggregate value if *removed* were deleted, without mutating.

        MIN/MAX may require a scan when *removed* is the unique extremum.
        """
        name = (
            aggregate
            if aggregate in _CANONICAL
            else Aggregate.normalize(aggregate)
        )
        removed = float(removed)
        if self._counts.get(removed, 0) <= 0:
            raise KeyError(f"value {removed!r} not present in aggregate state")
        remaining = self._count - 1
        if name == Aggregate.COUNT:
            return float(remaining)
        if name == Aggregate.SUM:
            return self._sum - removed
        if name == Aggregate.AVG:
            if remaining == 0:
                return math.nan
            return (self._sum - removed) / remaining
        if remaining == 0:
            return math.inf if name == Aggregate.MIN else -math.inf
        if name == Aggregate.MIN:
            if removed > self._min or self._counts[removed] > 1:
                return self._min
            return min(v for v in self._counts if v != removed)
        if removed < self._max or self._counts[removed] > 1:
            return self._max
        return max(v for v in self._counts if v != removed)

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[float]:
        return iter(self._counts.elements())

    def __contains__(self, value: float) -> bool:
        return self._counts.get(float(value), 0) > 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"AggregateState(count={self._count}, sum={self._sum:g}, "
            f"min={self._min:g}, max={self._max:g})"
        )
