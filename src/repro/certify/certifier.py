"""Cache-free, first-principles certification of EMP answers.

The solver's hot phases lean on incremental machinery — the contiguity
oracle, streaming :class:`~repro.core.aggregates.AggregateState`
updates, maintained sorted-objective structures. A bug in any of them
could return a partition that *looks* feasible to the code that built
it. This module is the independent auditor: it accepts a finished
partition and re-derives every claim from the raw inputs only:

- **coverage** — every area of the collection appears in exactly one
  region or in ``U_0`` (exclusivity itself is enforced structurally by
  :class:`~repro.core.partition.Partition`);
- **contiguity** — a fresh breadth-first search per region over the raw
  adjacency (never the :class:`~repro.core.region.Region` oracle);
- **constraints** — every ``(f, s, l, u)`` enriched constraint
  re-evaluated per region from freshly streamed attribute values
  (never a cached :class:`~repro.core.aggregates.AggregateState`);
- **objective** — heterogeneity recomputed from scratch (the
  ``REPRO_DISABLE_HOTPATH_CACHES`` reference semantics: no maintained
  sorted structure, no incremental deltas) and compared against the
  solver's claimed value within a small float tolerance — incremental
  ``h += delta`` accumulation legitimately drifts by rounding, which
  is not a defect; a *structural* mismatch is.

Constraint and contiguity checks are exact — the certifier *is* the
ground truth for feasibility. Only the objective claim uses a
tolerance, and only because two mathematically identical summation
orders differ in floating point.

Wired into the solver via ``FaCTConfig.certify``:

- ``"off"`` — never certify (default);
- ``"final"`` — certify the final partition of every solve;
- ``"paranoid"`` — additionally certify each phase boundary
  (post-construction) and every degraded or interrupted return.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.aggregates import Aggregate
from ..core.area import AreaCollection
from ..core.constraints import Constraint, ConstraintSet
from ..core.heterogeneity import pairwise_absolute_deviation
from ..core.partition import Partition
from ..exceptions import CertificationError

__all__ = [
    "Certificate",
    "Violation",
    "certify_partition",
    "certify_solution",
]

# Relative/absolute tolerance for the *objective claim* comparison only
# (see module docstring); feasibility checks never use a tolerance.
_OBJECTIVE_REL_TOL = 1e-6
_OBJECTIVE_ABS_TOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One defect found by the certifier.

    Attributes
    ----------
    kind:
        ``"coverage"``, ``"contiguity"``, ``"constraint"`` or
        ``"objective"``.
    region:
        Region index the defect is localized to, or ``None`` for
        partition-level defects (coverage holes, objective mismatch).
    constraint:
        ``str(constraint)`` for constraint violations, else ``None``.
    detail:
        Human-readable description.
    value:
        The freshly computed value that breached (aggregate value,
        recomputed heterogeneity), when meaningful.
    """

    kind: str
    detail: str
    region: int | None = None
    constraint: str | None = None
    value: float | None = None

    def as_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "region": self.region,
            "constraint": self.constraint,
            "value": self.value,
        }


@dataclass(frozen=True)
class Certificate:
    """The structured outcome of one certification pass.

    ``valid`` is True iff no violation was found. The certificate also
    restates what was checked (regions, constraints) and the freshly
    recomputed objective, so it can be persisted as evidence alongside
    the answer it vouches for. For decomposed (per-connected-component)
    solves, ``provenance`` records which component produced which
    regions — plain dicts shaped like
    :meth:`repro.fact.solver.ComponentProvenance.as_dict`; empty for
    ordinary solves.
    """

    valid: bool
    p: int
    n_unassigned: int
    heterogeneity: float
    claimed_heterogeneity: float | None
    checked_regions: int
    checked_constraints: int
    violations: tuple[Violation, ...] = ()
    label: str = "final"
    provenance: tuple[dict, ...] = ()

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable view (the CI chaos job archives these)."""
        payload = {
            "format": "repro-certificate/1",
            "label": self.label,
            "valid": self.valid,
            "p": self.p,
            "n_unassigned": self.n_unassigned,
            "heterogeneity": self.heterogeneity,
            "claimed_heterogeneity": self.claimed_heterogeneity,
            "checked_regions": self.checked_regions,
            "checked_constraints": self.checked_constraints,
            "violations": [v.as_dict() for v in self.violations],
        }
        if self.provenance:
            payload["provenance"] = [dict(p) for p in self.provenance]
        return payload

    def raise_if_invalid(self) -> "Certificate":
        """Raise :class:`~repro.exceptions.CertificationError` unless
        valid; returns self so calls chain."""
        if not self.valid:
            preview = "; ".join(v.detail for v in self.violations[:3])
            raise CertificationError(
                f"certification {self.label!r} failed with "
                f"{len(self.violations)} violation(s): {preview}",
                certificate=self,
            )
        return self


# ----------------------------------------------------------------------
# first-principles primitives (deliberately reimplemented: the whole
# point is sharing nothing with the incremental hot path)
# ----------------------------------------------------------------------

def _bfs_connected(collection: AreaCollection, members: frozenset[int]) -> bool:
    """Fresh BFS over the raw adjacency restricted to *members*."""
    start = next(iter(members))
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for neighbor in collection.neighbors(current):
            if neighbor in members and neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == len(members)


def _fresh_aggregate(
    collection: AreaCollection, members: frozenset[int], constraint: Constraint
) -> float:
    """Stream the constraint's aggregate over *members* from raw
    attribute values."""
    if constraint.aggregate == Aggregate.COUNT:
        return float(len(members))
    values = [
        collection.attribute(area_id, constraint.attribute)
        for area_id in members
    ]
    if constraint.aggregate == Aggregate.MIN:
        return min(values)
    if constraint.aggregate == Aggregate.MAX:
        return max(values)
    total = math.fsum(values)
    if constraint.aggregate == Aggregate.SUM:
        return total
    return total / len(values)  # AVG; members is never empty


def _fresh_heterogeneity(
    collection: AreaCollection, regions: tuple[frozenset[int], ...]
) -> float:
    """``H(P)`` recomputed from scratch, region by region."""
    return math.fsum(
        pairwise_absolute_deviation(
            collection.dissimilarity(area_id) for area_id in region
        )
        for region in regions
    )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------

def certify_partition(
    partition: Partition,
    collection: AreaCollection,
    constraints: ConstraintSet | None = None,
    claimed_heterogeneity: float | None = None,
    label: str = "final",
    allow_uncovered: frozenset[int] | None = None,
    provenance: tuple = (),
) -> Certificate:
    """Certify *partition* against *collection* from first principles.

    Parameters
    ----------
    claimed_heterogeneity:
        The solver's reported objective. Checked (within a small float
        tolerance) against the fresh recomputation when given.
    label:
        Free-form tag naming the certified boundary (``"final"``,
        ``"construction"``, ``"interrupted"`` …), recorded on the
        certificate.
    allow_uncovered:
        Area ids that may legitimately be absent from the partition —
        the feasibility phase's filtered invalid areas live in ``U_0``,
        but a *partial* best-so-far snapshot (interrupted run) may not
        have reached every area yet.
    provenance:
        Per-component provenance dicts of a decomposed solve, recorded
        verbatim on the certificate (the certifier itself re-validates
        every region the same way regardless of origin).

    Returns a :class:`Certificate`; never raises for an invalid
    partition (call :meth:`Certificate.raise_if_invalid` to escalate).
    """
    violations: list[Violation] = []

    # -- coverage ------------------------------------------------------
    covered = partition.all_areas
    missing = set(collection.ids) - covered - set(allow_uncovered or ())
    if missing:
        violations.append(
            Violation(
                kind="coverage",
                detail=(
                    f"{len(missing)} area(s) neither assigned nor in U_0 "
                    f"(e.g. {sorted(missing)[:5]})"
                ),
            )
        )
    unknown = covered - set(collection.ids)
    if unknown:
        violations.append(
            Violation(
                kind="coverage",
                detail=(
                    f"{len(unknown)} partition area(s) unknown to the "
                    f"collection (e.g. {sorted(unknown)[:5]})"
                ),
            )
        )

    # -- contiguity (fresh BFS per region) -----------------------------
    checkable = [
        (index, region)
        for index, region in enumerate(partition.regions)
        if not (region - set(collection.ids))
    ]
    for index, region in checkable:
        if not _bfs_connected(collection, region):
            violations.append(
                Violation(
                    kind="contiguity",
                    region=index,
                    detail=f"region {index} is not connected (BFS)",
                )
            )

    # -- enriched constraints (fresh streaming aggregates) -------------
    checked_constraints = 0
    if constraints is not None:
        for index, region in checkable:
            for constraint in constraints:
                checked_constraints += 1
                value = _fresh_aggregate(collection, region, constraint)
                if not constraint.contains(value):
                    violations.append(
                        Violation(
                            kind="constraint",
                            region=index,
                            constraint=str(constraint),
                            value=value,
                            detail=(
                                f"region {index} violates {constraint} "
                                f"(fresh value {value:g})"
                            ),
                        )
                    )

    # -- objective (fresh recomputation, tolerance for the claim) ------
    # Only checkable regions contribute: a region with unknown areas
    # has no dissimilarity values to sum (it is already a coverage
    # violation), and a partial recomputation cannot be compared
    # against the claim, so the claim check is skipped in that case.
    heterogeneity = _fresh_heterogeneity(
        collection, tuple(region for _, region in checkable)
    )
    if len(checkable) < len(partition.regions):
        claimed_heterogeneity = None
    if claimed_heterogeneity is not None and not math.isclose(
        heterogeneity,
        claimed_heterogeneity,
        rel_tol=_OBJECTIVE_REL_TOL,
        abs_tol=_OBJECTIVE_ABS_TOL,
    ):
        violations.append(
            Violation(
                kind="objective",
                value=heterogeneity,
                detail=(
                    f"claimed heterogeneity {claimed_heterogeneity!r} != "
                    f"fresh recomputation {heterogeneity!r}"
                ),
            )
        )

    return Certificate(
        valid=not violations,
        p=partition.p,
        n_unassigned=len(partition.unassigned),
        heterogeneity=heterogeneity,
        claimed_heterogeneity=claimed_heterogeneity,
        checked_regions=len(partition.regions),
        checked_constraints=checked_constraints,
        violations=tuple(violations),
        label=label,
        provenance=tuple(provenance),
    )


def certify_solution(
    solution,
    collection: AreaCollection,
    constraints: ConstraintSet | None = None,
    label: str = "final",
    check_objective: bool = True,
) -> Certificate:
    """Certify an :class:`~repro.fact.solver.EMPSolution`.

    Extracts the final partition and — when *check_objective* and the
    solution was scored by the default heterogeneity objective — the
    claimed objective value. Pass ``check_objective=False`` for runs
    under a custom :mod:`repro.fact.objectives` objective, whose score
    is not ``H(P)``.
    """
    claimed = solution.heterogeneity if check_objective else None
    return certify_partition(
        solution.partition,
        collection,
        constraints=constraints,
        claimed_heterogeneity=claimed,
        label=label,
    )
