"""Independent solution certification (see :mod:`repro.certify.certifier`).

The certifier is the trust boundary of the solver: it re-validates any
partition from first principles — its own BFS, its own fresh aggregates,
a fresh heterogeneity recomputation — sharing **no** code path with the
incremental caches the hot solver phases rely on. A
:class:`Certificate` therefore vouches for an answer even if every
cache in :mod:`repro.core` were silently corrupt.
"""

from .certifier import (
    Certificate,
    Violation,
    certify_partition,
    certify_solution,
)

__all__ = [
    "Certificate",
    "Violation",
    "certify_partition",
    "certify_solution",
]
