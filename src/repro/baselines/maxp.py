"""Classic max-p-regions baseline (Duque, Anselin & Rey 2012; efficient
variant of Wei, Rey & Knaap 2020).

The paper compares FaCT against "existing state-of-the-art solutions
for the max-p regions (MP-regions) problem" on SUM-only queries with
an open upper bound (Table IV and Figures 12–13, rows labelled *MP*).
This module implements that baseline from scratch:

1. **Growth phase** — repeatedly pick a random unassigned area as a
   seed and grow a region by absorbing adjacent unassigned areas until
   the region's attribute sum reaches the threshold; regions that run
   out of neighbors before reaching it are reverted to *enclaves*.
2. **Enclave assignment** — every enclave area joins an adjacent
   region (random, or best by heterogeneity).
3. The growth is restarted ``iterations`` times; the attempt with the
   most regions wins.
4. **Local search** — the same Tabu optimizer FaCT uses, constrained
   by the single SUM threshold.

Unlike EMP, classic max-p requires *every* area to be assigned; the
returned partition therefore has an empty ``U_0`` whenever the input
is a single connected component with total sum above the threshold.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..core.area import AreaCollection
from ..core.constraints import ConstraintSet, sum_constraint
from ..core.partition import Partition
from ..exceptions import InfeasibleProblemError
from ..fact.config import FaCTConfig, PickupCriterion
from ..fact.state import SolutionState
from ..fact.tabu import TabuResult, tabu_improve

__all__ = ["MaxPResult", "MaxPConfig", "solve_maxp"]


@dataclass
class MaxPConfig:
    """Configuration for the max-p baseline.

    ``iterations`` is the number of randomized growth restarts (the
    literature's ``maxitr``); Tabu knobs mirror
    :class:`repro.fact.config.FaCTConfig`.
    """

    rng_seed: int = 0
    iterations: int = 3
    pickup: str = PickupCriterion.RANDOM
    enable_tabu: bool = True
    tabu_tenure: int = 10
    tabu_max_no_improve: int | None = None
    tabu_max_iterations: int | None = None

    def to_fact_config(self) -> FaCTConfig:
        """The equivalent FaCT config (drives the shared Tabu phase)."""
        return FaCTConfig(
            rng_seed=self.rng_seed,
            construction_iterations=self.iterations,
            pickup=self.pickup,
            enable_tabu=self.enable_tabu,
            tabu_tenure=self.tabu_tenure,
            tabu_max_no_improve=self.tabu_max_no_improve,
            tabu_max_iterations=self.tabu_max_iterations,
        )


@dataclass(frozen=True)
class MaxPResult:
    """Outcome of one max-p run (mirrors
    :class:`repro.fact.solver.EMPSolution`'s reporting surface)."""

    partition: Partition
    construction_seconds: float
    tabu: TabuResult | None = None

    @property
    def p(self) -> int:
        """Number of regions found."""
        return self.partition.p

    @property
    def n_unassigned(self) -> int:
        """Unassigned areas (only non-empty on disconnected or
        infeasible-component inputs)."""
        return len(self.partition.unassigned)

    @property
    def tabu_seconds(self) -> float:
        """Local-search wall-clock time."""
        return self.tabu.elapsed_seconds if self.tabu else 0.0

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time."""
        return self.construction_seconds + self.tabu_seconds

    @property
    def heterogeneity(self) -> float:
        """Final ``H(P)``."""
        if self.tabu:
            return self.tabu.heterogeneity_after
        return self._construction_heterogeneity

    @property
    def improvement(self) -> float:
        """Relative heterogeneity improvement from local search."""
        return self.tabu.improvement if self.tabu else 0.0

    # internal: set via object.__setattr__ in solve_maxp
    _construction_heterogeneity: float = 0.0


def solve_maxp(
    collection: AreaCollection,
    attribute: str,
    threshold: float,
    config: MaxPConfig | None = None,
) -> MaxPResult:
    """Solve the classic max-p-regions problem.

    Parameters
    ----------
    collection:
        The areas and their contiguity.
    attribute:
        The spatially extensive attribute of the threshold constraint.
    threshold:
        Lower bound: every region must have ``SUM(attribute) >=
        threshold``.
    """
    config = config or MaxPConfig()
    constraints = ConstraintSet([sum_constraint(attribute, lower=threshold)])
    started = time.perf_counter()
    rng = random.Random(config.rng_seed)

    best_state: SolutionState | None = None
    best_key: tuple | None = None
    for _ in range(max(1, config.iterations)):
        state = SolutionState(collection, constraints)
        _grow(state, attribute, threshold, config, rng)
        _assign_enclaves(state, config, rng)
        key = (-state.p, state.n_unassigned, state.total_heterogeneity())
        if best_key is None or key < best_key:
            best_key = key
            best_state = state
    assert best_state is not None
    if best_state.p == 0:
        raise InfeasibleProblemError(
            f"no region can reach SUM({attribute}) >= {threshold:g}; "
            "the threshold exceeds every connected component's total"
        )
    construction_seconds = time.perf_counter() - started
    construction_h = best_state.total_heterogeneity()

    tabu: TabuResult | None = None
    partition = best_state.to_partition()
    if config.enable_tabu:
        tabu = tabu_improve(best_state, config.to_fact_config())
        partition = tabu.partition

    result = MaxPResult(
        partition=partition,
        construction_seconds=construction_seconds,
        tabu=tabu,
    )
    object.__setattr__(result, "_construction_heterogeneity", construction_h)
    return result


def _grow(
    state: SolutionState,
    attribute: str,
    threshold: float,
    config: MaxPConfig,
    rng: random.Random,
) -> None:
    """Growth phase: seed regions from random unassigned areas and
    absorb unassigned neighbors until each reaches the threshold."""
    order = list(state.unassigned)
    rng.shuffle(order)
    for seed_id in order:
        if not state.is_unassigned(seed_id):
            continue
        region = state.new_region([seed_id])
        while region.aggregate("SUM", attribute) < threshold:
            candidates = state.unassigned_neighbors(region)
            if not candidates:
                break
            if config.pickup == PickupCriterion.RANDOM:
                choice = rng.choice(candidates)
            else:
                choice = min(candidates, key=region.heterogeneity_delta_add)
            state.assign(choice, region)
        if region.aggregate("SUM", attribute) < threshold:
            state.dissolve_region(region)  # revert to enclaves


def _assign_enclaves(
    state: SolutionState, config: MaxPConfig, rng: random.Random
) -> None:
    """Enclave assignment: sweep unassigned areas into adjacent
    regions until a fixpoint (areas in components with no region stay
    unassigned — the multi-component case classic max-p cannot
    handle)."""
    changed = True
    while changed:
        changed = False
        pending = list(state.unassigned)
        rng.shuffle(pending)
        for area_id in pending:
            neighbor_regions = state.neighbor_regions(area_id)
            if not neighbor_regions:
                continue
            if config.pickup == PickupCriterion.RANDOM:
                target = rng.choice(neighbor_regions)
            else:
                target = min(
                    neighbor_regions,
                    key=lambda r: r.heterogeneity_delta_add(area_id),
                )
            state.assign(area_id, target)
            changed = True
