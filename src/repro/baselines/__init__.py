"""Baselines: the classic max-p-regions heuristic (the paper's *MP*
competitor) and an exhaustive exact solver for tiny instances (the
role Gurobi plays in the paper)."""

from .branch_and_bound import solve_exact_bb
from .exact import ExactSolution, solve_exact
from .maxp import MaxPConfig, MaxPResult, solve_maxp

__all__ = [
    "ExactSolution",
    "MaxPConfig",
    "MaxPResult",
    "solve_exact",
    "solve_exact_bb",
    "solve_maxp",
]
