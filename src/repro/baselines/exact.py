"""Exhaustive exact EMP solver for tiny instances.

The paper formulates EMP as a mixed-integer program and reports that
Gurobi needs 33.86 s for 9 areas, 10 hours for 16 and never finishes
25 (Section I). We reproduce the *role* of that component — an optimal
reference for toy inputs — with a pure-Python exhaustive search over
canonical labelings:

- every area receives a label in ``{-1 (unassigned), 0, 1, …}``;
- symmetry is broken by requiring label ``k+1`` to appear only after
  label ``k`` (restricted-growth strings, i.e. set partitions);
- a candidate is **feasible** when every label class is spatially
  contiguous and satisfies every constraint;
- the optimum maximizes ``p`` and, among maximum-``p`` partitions,
  minimizes heterogeneity ``H(P)`` (the EMP objective order).

Complexity is Bell-number-ish; instances up to ~10 areas solve in
seconds, which is all the test-suite needs to validate FaCT against
optimal answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.area import AreaCollection
from ..core.constraints import ConstraintSet
from ..core.partition import Partition
from ..core.region import Region
from ..exceptions import DatasetError

__all__ = ["ExactSolution", "solve_exact"]

_MAX_EXACT_AREAS = 12
"""Safety limit — beyond this the search space explodes (the same wall
the paper hit with Gurobi)."""


@dataclass(frozen=True)
class ExactSolution:
    """Optimal EMP answer for a tiny instance."""

    partition: Partition
    heterogeneity: float
    n_evaluated: int

    @property
    def p(self) -> int:
        """The optimal number of regions."""
        return self.partition.p


def solve_exact(
    collection: AreaCollection,
    constraints: ConstraintSet,
    allow_unassigned: bool = True,
) -> ExactSolution:
    """Exhaustively solve one EMP instance.

    Parameters
    ----------
    collection:
        At most ``12`` areas (raises :class:`DatasetError` beyond).
    constraints:
        The EMP query.
    allow_unassigned:
        EMP semantics (default). With ``False`` the search only
        considers full partitions — the classic max-p semantics, handy
        for validating the baseline.

    Returns the partition maximizing ``p`` and minimizing ``H(P)``
    among the maximizers. When *no* feasible partition exists the
    result is the empty partition with every area unassigned (p = 0) —
    which is itself a valid EMP answer when unassigned areas are
    allowed; with ``allow_unassigned=False`` a :class:`DatasetError`
    is raised instead.
    """
    ids = list(collection.ids)
    n = len(ids)
    if n > _MAX_EXACT_AREAS:
        raise DatasetError(
            f"exact solver supports at most {_MAX_EXACT_AREAS} areas, got {n}"
        )
    tracked = tuple(constraints.attributes())

    best: tuple[int, float] | None = None  # (p, H)
    best_labels: list[int] | None = None
    evaluated = 0

    labels = [0] * n

    def region_sets(assignment: list[int]) -> dict[int, set[int]]:
        groups: dict[int, set[int]] = {}
        for position, label in enumerate(assignment):
            if label >= 0:
                groups.setdefault(label, set()).add(ids[position])
        return groups

    def feasible(assignment: list[int]) -> tuple[bool, int, float]:
        nonlocal evaluated
        evaluated += 1
        groups = region_sets(assignment)
        total_h = 0.0
        for members in groups.values():
            if not collection.is_contiguous(members):
                return (False, 0, 0.0)
            region = Region(-1, collection, tracked, members)
            if not region.satisfies_all(constraints):
                return (False, 0, 0.0)
            total_h += region.heterogeneity
        return (True, len(groups), total_h)

    def recurse(position: int, max_label: int) -> None:
        nonlocal best, best_labels
        if position == n:
            ok, p, h = feasible(labels)
            if not ok:
                return
            key = (-p, h)
            if best is None or key < (-best[0], best[1]):
                best = (p, h)
                best_labels = labels.copy()
            return
        # Prune: even labeling every remaining area with a fresh label
        # cannot beat the incumbent p.
        if best is not None:
            remaining = n - position
            if max_label + 1 + remaining < best[0]:
                return
        choices = list(range(max_label + 2))  # existing labels + one new
        if allow_unassigned:
            choices.append(-1)
        for label in choices:
            labels[position] = label
            recurse(
                position + 1,
                max(max_label, label) if label >= 0 else max_label,
            )
        labels[position] = 0

    recurse(0, -1)

    if best_labels is None:
        if not allow_unassigned:
            raise DatasetError(
                "no feasible full partition exists for this instance"
            )
        return ExactSolution(
            partition=Partition((), frozenset(ids)),
            heterogeneity=0.0,
            n_evaluated=evaluated,
        )
    assignment = {ids[i]: best_labels[i] for i in range(n)}
    partition = Partition.from_labels(assignment)
    return ExactSolution(
        partition=partition,
        heterogeneity=best[1],
        n_evaluated=evaluated,
    )
