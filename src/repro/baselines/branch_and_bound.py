"""Branch-and-bound exact EMP solver.

The paper formulates EMP as a mixed-integer program and reports
Gurobi's wall: 33.86 s for 9 areas, 10 hours for 16, nothing at 25
(Section I). :mod:`repro.baselines.exact` reproduces the *role* of an
optimal reference by exhaustive enumeration, which is practical to ~9
areas. This module pushes the exact frontier further with a
combinatorial branch-and-bound over restricted-growth labelings:

**Branching.** Areas are processed in BFS order (so regions close
early); each area goes to an existing region, a fresh region, or —
under EMP semantics — the unassigned pool.

**Pruning** (all exactness-preserving):

- *bound pruning*: branches whose ``p`` upper bound cannot beat the
  incumbent ``(p, H)`` die;
- *monotone pruning*: a region whose SUM/COUNT already exceeds a
  finite upper bound can only get worse (attribute values are
  validated non-negative for this prune);
- *closure pruning*: once no unprocessed area can still touch a
  region, its member set is final — connectivity and the full
  constraint set are checked right then instead of at the leaf;
- *heterogeneity pruning*: within-region pairwise heterogeneity only
  grows as members join, so a partial ``H`` at the incumbent's ``p``
  ceiling that already matches the incumbent is dead.

plus a **FaCT warm start** seeding the incumbent and a **material
bound** (every valid region needs ≥ l units of each lower-bounded
counting attribute, so future regions are limited by the material left
in deficient regions + unprocessed areas).

Typical reach: ~10 areas in under a second, ~12 in about a minute —
where the paper reports Gurobi needing 33.86 s for 9 areas and 10
hours for 16. The same exponential wall, hit a little later; it is
what makes the heuristic-vs-exact comparisons in the test-suite
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.area import AreaCollection
from ..core.constraints import Constraint, ConstraintSet
from ..core.partition import Partition
from ..core.region import Region
from ..exceptions import DatasetError
from .exact import ExactSolution

__all__ = ["solve_exact_bb"]

_MAX_BB_AREAS = 18
"""Hard limit; beyond this even the pruned tree explodes (the same
combinatorial wall the paper hit with Gurobi)."""


def solve_exact_bb(
    collection: AreaCollection,
    constraints: ConstraintSet,
    allow_unassigned: bool = True,
    node_limit: int | None = None,
    warm_start: bool = True,
) -> ExactSolution:
    """Exactly solve one EMP instance by branch and bound.

    Same contract as :func:`repro.baselines.exact.solve_exact` —
    maximize ``p``, then minimize ``H(P)``. ``node_limit`` optionally
    caps the search (raising :class:`DatasetError` when exceeded),
    guarding interactive use. With ``warm_start`` (default) a quick
    FaCT run seeds the incumbent — the classic primal-heuristic trick:
    since FaCT usually finds the optimal ``p`` already, the bound
    pruning then cuts every subtree that cannot strictly improve,
    which is what makes ~12-area instances close in seconds.
    """
    ids = list(collection.ids)
    n = len(ids)
    if n > _MAX_BB_AREAS:
        raise DatasetError(
            f"branch-and-bound solver supports at most {_MAX_BB_AREAS} "
            f"areas, got {n}"
        )
    monotone_uppers = [
        c
        for c in constraints.counting
        if c.has_upper
    ]
    if monotone_uppers:
        for c in monotone_uppers:
            if c.attribute:
                if any(
                    area.attributes[c.attribute] < 0 for area in collection
                ):
                    # negative weights break the monotone prune; fall
                    # back to not using it for this constraint
                    monotone_uppers = [
                        m for m in monotone_uppers if m is not c
                    ]

    order = _bfs_order(collection, ids)
    tracked = tuple(constraints.attributes())

    search = _Search(
        collection=collection,
        constraints=constraints,
        monotone_uppers=tuple(monotone_uppers),
        order=order,
        tracked=tracked,
        allow_unassigned=allow_unassigned,
        node_limit=node_limit,
    )
    if warm_start:
        _apply_warm_start(search, collection, constraints, order,
                          allow_unassigned)
    search.run()

    if search.best_labels is None:
        if not allow_unassigned:
            raise DatasetError(
                "no feasible full partition exists for this instance"
            )
        return ExactSolution(
            partition=Partition((), frozenset(ids)),
            heterogeneity=0.0,
            n_evaluated=search.nodes,
        )
    assignment = {
        order[i]: search.best_labels[i] for i in range(len(order))
    }
    return ExactSolution(
        partition=Partition.from_labels(assignment),
        heterogeneity=search.best_h,
        n_evaluated=search.nodes,
    )


def _apply_warm_start(
    search: "_Search",
    collection: AreaCollection,
    constraints: ConstraintSet,
    order: list[int],
    allow_unassigned: bool,
) -> None:
    """Seed the incumbent from a quick FaCT run (primal heuristic)."""
    from ..exceptions import InfeasibleProblemError
    from ..fact.config import FaCTConfig
    from ..fact.solver import FaCT

    config = FaCTConfig(
        rng_seed=0,
        construction_iterations=4,
        enable_tabu=True,
        tabu_max_no_improve=4 * len(order),
    )
    try:
        heuristic = FaCT(config).solve(collection, constraints)
    except InfeasibleProblemError:
        return
    partition = heuristic.partition
    if partition.p == 0:
        return
    if not allow_unassigned and partition.unassigned:
        return
    labels = partition.labels()
    search.best_p = partition.p
    search.best_h = partition.heterogeneity(collection)
    search.best_labels = [labels[area_id] for area_id in order]


def _bfs_order(collection: AreaCollection, ids: list[int]) -> list[int]:
    """BFS visit order over all components (regions close early)."""
    order: list[int] = []
    seen: set[int] = set()
    for start in ids:
        if start in seen:
            continue
        queue = [start]
        seen.add(start)
        while queue:
            current = queue.pop(0)
            order.append(current)
            for neighbor in sorted(collection.neighbors(current)):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
    return order


@dataclass
class _Search:
    """Mutable search state for one branch-and-bound run."""

    collection: AreaCollection
    constraints: ConstraintSet
    monotone_uppers: tuple[Constraint, ...]
    order: list[int]
    tracked: tuple[str, ...]
    allow_unassigned: bool
    node_limit: int | None

    def __post_init__(self) -> None:
        self.n = len(self.order)
        self.labels: list[int] = [0] * self.n
        self.regions: list[Region] = []
        self.best_labels: list[int] | None = None
        self.best_p = -1
        self.best_h = float("inf")
        self.nodes = 0
        # unprocessed[i] -> set of ids still unprocessed at depth i
        self.position_of = {
            area_id: index for index, area_id in enumerate(self.order)
        }
        self.min_region_size = self._minimum_region_size()
        # Material bounds: for every counting constraint with a finite
        # lower bound l, each not-yet-valid region needs >= l units of
        # "material" (attribute sum, or areas for COUNT) drawn from the
        # deficient regions' current holdings plus the unprocessed
        # areas. suffix_sums[c][d] = material remaining at depth d.
        self.bound_constraints: list[tuple[Constraint, list[float]]] = []
        for c in self.constraints.counting:
            if not c.has_lower or c.lower <= 0:
                continue
            values = [
                1.0
                if c.aggregate == "COUNT"
                else self.collection.attribute(area_id, c.attribute)
                for area_id in self.order
            ]
            suffix = [0.0] * (self.n + 1)
            for index in range(self.n - 1, -1, -1):
                suffix[index] = suffix[index + 1] + values[index]
            self.bound_constraints.append((c, suffix))

    def _p_upper(self, depth: int) -> int:
        """A valid upper bound on the final p from this node."""
        remaining = self._remaining_after(depth)
        best = len(self.regions) + remaining // self.min_region_size
        for c, suffix in self.bound_constraints:
            satisfied = 0
            deficient_material = 0.0
            for region in self.regions:
                value = region.constraint_value(c)
                if value >= c.lower:
                    satisfied += 1
                else:
                    deficient_material += value
            material_bound = satisfied + int(
                (deficient_material + suffix[depth]) / c.lower
            )
            if material_bound < best:
                best = material_bound
        return best

    def _minimum_region_size(self) -> int:
        """Fewest areas any valid region can contain, implied by the
        counting lower bounds — this turns the naive ``p <= k +
        remaining`` bound into ``p <= k + remaining // size``, which is
        what makes unassigned-heavy subtrees die early."""
        import math

        size = 1
        for c in self.constraints.counting:
            if not c.has_lower or c.lower <= 0:
                continue
            if c.aggregate == "COUNT":
                size = max(size, math.ceil(c.lower))
            else:
                largest = max(
                    area.attributes[c.attribute] for area in self.collection
                )
                if largest > 0:
                    size = max(size, math.ceil(c.lower / largest))
        return size

    # ------------------------------------------------------------------
    def run(self) -> None:
        self._recurse(0, 0.0)

    def _remaining_after(self, depth: int) -> int:
        return self.n - depth

    def _region_closed(self, region: Region, depth: int) -> bool:
        """True when no unprocessed area can still join/bridge the
        region (every neighbor of every member is already processed)."""
        for member in region.area_ids:
            for neighbor in self.collection.neighbors(member):
                if self.position_of.get(neighbor, -1) >= depth:
                    return False
        return True

    def _closed_region_ok(self, region: Region) -> bool:
        return region.is_contiguous() and region.satisfies_all(
            self.constraints
        )

    def _recurse(self, depth: int, partial_h: float) -> None:
        self.nodes += 1
        if self.node_limit is not None and self.nodes > self.node_limit:
            raise DatasetError(
                f"branch-and-bound node limit {self.node_limit} exceeded"
            )

        # --- bound pruning --------------------------------------------
        p_upper = self._p_upper(depth)
        if p_upper < self.best_p:
            return
        if p_upper == self.best_p and partial_h >= self.best_h:
            return

        if depth == self.n:
            self._evaluate_leaf(partial_h)
            return

        area_id = self.order[depth]
        area = self.collection.area(area_id)

        # Can a non-adjacent assignment still become connected? Only
        # through a future bridge: the area needs at least one
        # unprocessed neighbor. (Necessary condition — sufficiency is
        # settled by the closure/leaf connectivity checks.)
        has_future_bridge = any(
            self.position_of[neighbor] > depth
            for neighbor in self.collection.neighbors(area_id)
        )

        # existing regions
        for region in self.regions:
            if not region.touches(area_id) and not has_future_bridge:
                continue
            if self._violates_monotone(region, area_id):
                continue
            delta = region.heterogeneity_delta_add(area_id)
            region.add_area(area_id)
            self.labels[depth] = region.region_id
            ok = True
            # closure pruning: if the region just closed, check it now
            if self._region_closed(region, depth + 1):
                ok = self._closed_region_ok(region)
            if ok:
                self._recurse(depth + 1, partial_h + delta)
            region.remove_area(area_id)

        # a fresh region
        region = Region(len(self.regions), self.collection, self.tracked)
        region.add_area(area_id)
        self.regions.append(region)
        self.labels[depth] = region.region_id
        ok = True
        if self._region_closed(region, depth + 1):
            ok = self._closed_region_ok(region)
        if ok:
            self._recurse(depth + 1, partial_h)
        self.regions.pop()

        # unassigned
        if self.allow_unassigned:
            self._recurse_unassigned(depth, partial_h)

    def _recurse_unassigned(self, depth: int, partial_h: float) -> None:
        self.labels[depth] = -1
        self._recurse(depth + 1, partial_h)

    def _violates_monotone(self, region: Region, area_id: int) -> bool:
        for c in self.monotone_uppers:
            if region.value_after_add(c, area_id) > c.upper:
                return True
        return False

    def _evaluate_leaf(self, partial_h: float) -> None:
        p = len(self.regions)
        if p < self.best_p or (p == self.best_p and partial_h >= self.best_h):
            return
        for region in self.regions:
            if not region.is_contiguous():
                return
            if not region.satisfies_all(self.constraints):
                return
        self.best_p = p
        self.best_h = partial_h
        self.best_labels = self.labels.copy()
