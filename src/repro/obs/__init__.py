"""``repro.obs`` — unified solve telemetry (zero-dependency).

Four pieces, designed to cost nothing when off:

- **structured spans** (:mod:`~repro.obs.spans`): nested, timed,
  attributed units of work — ``solve → construction → attempt →
  pass → grow/enclave/extrema/adjust``, ``tabu → member → search``,
  ``certify``, ``checkpoint.write`` — stitched across worker
  processes via serializable span contexts;
- **metrics registry** (:mod:`~repro.obs.metrics`):
  counters/gauges/histograms with labels, per-phase snapshots and
  deltas; absorbs (and backs) the legacy ``PerfCounters`` signals;
- **run event log** (:mod:`~repro.obs.events`): an append-only JSONL
  record of spans, metric snapshots, budget/cancellation,
  fault-injection, pool retry/degradation and certification events,
  written atomically;
- **exporters + profiling** (:mod:`~repro.obs.exporters`,
  :mod:`~repro.obs.profiling`): timeline report, Chrome
  ``trace_event`` JSON, Prometheus text exposition, and per-span
  ``cProfile``/``tracemalloc`` hooks gated by ``REPRO_PROFILE``.

Entry point: build a :class:`SolveTelemetry` (or set
``FaCTConfig.trace_path`` / ``--trace-output``) and pass it to
:meth:`repro.fact.solver.FaCT.solve`. The default is
:data:`DISABLED` — no-op singletons all the way down.
"""

from .events import SCHEMA_VERSION, EventLog
from .exporters import (
    chrome_trace,
    final_metrics_snapshot,
    prometheus_text,
    read_events,
    render_report,
    span_records,
    validate_events,
)
from .metrics import NULL_METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .spans import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer, worker_tracer
from .telemetry import DISABLED, SolveTelemetry, resolve_telemetry

__all__ = [
    "Counter",
    "DISABLED",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "SCHEMA_VERSION",
    "SolveTelemetry",
    "Span",
    "Tracer",
    "chrome_trace",
    "final_metrics_snapshot",
    "prometheus_text",
    "read_events",
    "render_report",
    "resolve_telemetry",
    "span_records",
    "validate_events",
    "worker_tracer",
]
