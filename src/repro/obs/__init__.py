"""``repro.obs`` — unified solve telemetry (zero-dependency).

Four pieces, designed to cost nothing when off:

- **structured spans** (:mod:`~repro.obs.spans`): nested, timed,
  attributed units of work — ``solve → construction → attempt →
  pass → grow/enclave/extrema/adjust``, ``tabu → member → search``,
  ``certify``, ``checkpoint.write`` — stitched across worker
  processes via serializable span contexts;
- **metrics registry** (:mod:`~repro.obs.metrics`):
  counters/gauges/histograms with labels, per-phase snapshots and
  deltas; absorbs (and backs) the legacy ``PerfCounters`` signals;
- **run event log** (:mod:`~repro.obs.events`): an append-only JSONL
  record of spans, metric snapshots, budget/cancellation,
  fault-injection, pool retry/degradation and certification events,
  written atomically;
- **exporters + profiling** (:mod:`~repro.obs.exporters`,
  :mod:`~repro.obs.profiling`): timeline report, Chrome
  ``trace_event`` JSON, Prometheus text exposition, and per-span
  ``cProfile``/``tracemalloc`` hooks gated by ``REPRO_PROFILE``.

On top of that substrate sits the derived-signal layer:

- **progress/ETA** (:mod:`~repro.obs.progress`): a deterministic
  :class:`ProgressModel` folding ``progress`` events into a
  phase-weighted completion fraction + ETA, weights calibrated from
  BENCH_scaling.json;
- **health** (:mod:`~repro.obs.health`): :class:`StallDetector`
  classifying running jobs HEALTHY / SLOW / STALLED from heartbeats
  and event recency;
- **console** (:mod:`~repro.obs.console`): ``python -m repro obs top``
  / ``obs tail`` — a live fleet table and per-job event follower over
  the service's offset-poll HTTP API.

Entry point: build a :class:`SolveTelemetry` (or set
``FaCTConfig.trace_path`` / ``--trace-output``) and pass it to
:meth:`repro.fact.solver.FaCT.solve`. The default is
:data:`DISABLED` — no-op singletons all the way down.
"""

from .events import SCHEMA_VERSION, EventLog
from .exporters import (
    chrome_trace,
    final_metrics_snapshot,
    prometheus_text,
    read_events,
    render_report,
    span_records,
    validate_events,
)
from .health import HealthState, StallDetector
from .metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
)
from .progress import (
    DEFAULT_WEIGHTS,
    ProgressModel,
    calibrate_weights,
    eta_error,
    weights_for_spec,
)
from .spans import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer, worker_tracer
from .telemetry import DISABLED, SolveTelemetry, resolve_telemetry

__all__ = [
    "Counter",
    "DEFAULT_WEIGHTS",
    "DISABLED",
    "EventLog",
    "Gauge",
    "HealthState",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "ProgressModel",
    "SCHEMA_VERSION",
    "SolveTelemetry",
    "Span",
    "StallDetector",
    "Tracer",
    "calibrate_weights",
    "chrome_trace",
    "escape_label_value",
    "eta_error",
    "final_metrics_snapshot",
    "prometheus_text",
    "read_events",
    "render_report",
    "resolve_telemetry",
    "span_records",
    "validate_events",
    "weights_for_spec",
    "worker_tracer",
]
