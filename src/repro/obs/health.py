"""Stall watchdog: classify running jobs HEALTHY / SLOW / STALLED.

:class:`StallDetector` consumes the two liveness signals a leased job
produces — journal heartbeats (folded into the job's ``updated_at``)
and the event stream its solve writes — and distinguishes the three
ways a long solve goes quiet:

- **dead worker** — heartbeats stopped: the process is gone or wedged
  hard enough that the lease keeper thread no longer renews;
- **lease-expiry-pending** — the lease deadline has passed but the
  reaper has not yet requeued the job;
- **no-progress** — heartbeats still flow but the event stream is
  silent: the classic tabu plateau / livelock shape, a worker that is
  alive but no longer moving.

The detector is a pure function of ``(job dict, events, now)`` so the
service watchdog thread, tests and offline analysis all share one
classification. Thresholds are wall-clock seconds; the SLOW band sits
between ``slow_after_seconds`` and ``stall_after_seconds``.
"""

from __future__ import annotations

import time

__all__ = ["HealthState", "StallDetector"]


class HealthState:
    """The three classifications, as journal/metric-safe strings."""

    HEALTHY = "healthy"
    SLOW = "slow"
    STALLED = "stalled"

    ALL = (HEALTHY, SLOW, STALLED)


# Job states the detector classifies; everything else is healthy by
# definition (queued jobs are waiting, terminal jobs are done).
_ACTIVE = ("leased", "running")


class StallDetector:
    """Classify one job's liveness from heartbeats + events.

    Parameters
    ----------
    stall_after_seconds:
        Silence longer than this is STALLED.
    slow_after_seconds:
        Silence longer than this (but shorter than the stall window)
        is SLOW; defaults to half the stall window.
    clock:
        Wall-clock source (injectable for tests).
    """

    def __init__(
        self,
        stall_after_seconds: float = 10.0,
        slow_after_seconds: float | None = None,
        clock=time.time,
    ):
        self.stall_after_seconds = float(stall_after_seconds)
        self.slow_after_seconds = (
            float(slow_after_seconds)
            if slow_after_seconds is not None
            else self.stall_after_seconds / 2.0
        )
        self.clock = clock

    def classify(
        self,
        job: dict,
        events: list[dict],
        now: float | None = None,
    ) -> tuple[str, str]:
        """``(state, reason)`` for one job dict + its event list."""
        if job.get("state") not in _ACTIVE:
            return HealthState.HEALTHY, "not running"
        if now is None:
            now = self.clock()
        lease_expires_at = job.get("lease_expires_at")
        if lease_expires_at is not None and now > float(lease_expires_at):
            return (
                HealthState.STALLED,
                "lease-expiry-pending: lease expired "
                f"{now - float(lease_expires_at):.1f}s ago, not yet reaped",
            )
        heartbeat_age = now - float(job.get("updated_at") or 0.0)
        last_event_ts = None
        for event in reversed(events):
            ts = event.get("ts")
            if isinstance(ts, (int, float)):
                last_event_ts = float(ts)
                break
        event_age = (
            now - last_event_ts if last_event_ts is not None else heartbeat_age
        )
        if heartbeat_age > self.stall_after_seconds:
            return (
                HealthState.STALLED,
                f"dead-worker: no heartbeat for {heartbeat_age:.1f}s",
            )
        quiet = min(event_age, heartbeat_age)
        if event_age > self.stall_after_seconds:
            return (
                HealthState.STALLED,
                "no-progress: heartbeats flowing but no events for "
                f"{event_age:.1f}s (tabu plateau or wedged solve)",
            )
        if quiet > self.slow_after_seconds:
            return (
                HealthState.SLOW,
                f"quiet for {quiet:.1f}s",
            )
        return HealthState.HEALTHY, f"last signal {quiet:.1f}s ago"
