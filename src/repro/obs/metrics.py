"""Metrics registry: counters, gauges and histograms with labels.

One :class:`MetricsRegistry` serves one solve (bundled in
:class:`repro.obs.SolveTelemetry`) — and one backs every
:class:`repro.core.perf.PerfCounters` instance, which is how the
legacy named wall-clock timings migrated onto this layer without
changing their public shape.

Instruments are identified by ``(name, sorted labels)``; requesting
the same identity twice returns the same instrument::

    registry.counter("pool_task_failures").inc()
    registry.counter("phase_seconds", phase="tabu").set_to(1.25)
    registry.histogram("pass_seconds").observe(0.8)

:meth:`MetricsRegistry.snapshot` produces a JSON-ready view and
:meth:`MetricsRegistry.delta` the numeric difference against an
earlier snapshot — the per-phase snapshot/delta records in the run
event log. Everything is plain picklable Python (registries ride
inside ``PerfCounters`` across the worker-pool boundary).

The null objects (:data:`NULL_METRICS`) make the disabled path free:
every instrument method is a no-op on a shared singleton.
"""

from __future__ import annotations

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "escape_label_value",
]


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def set_to(self, value: float) -> None:
        """Set the absolute cumulative value (used when absorbing an
        externally accumulated total, e.g. a ``PerfCounters`` field);
        never moves backwards."""
        value = float(value)
        if value > self.value:
            self.value = value

    def current(self):
        return self.value


class Gauge:
    """Point-in-time value that may move both ways."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def current(self):
        return self.value


class Histogram:
    """Streaming summary (count / sum / min / max) of observations.

    Deliberately bucket-free: the consumers here want totals and
    extremes, and a fixed bucket layout would be wrong for every
    dataset scale at once.
    """

    __slots__ = ("count", "total", "min", "max")
    kind = "histogram"

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def current(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def escape_label_value(value) -> str:
    """Escape a label value per the Prometheus text-format 0.0.4 spec:
    backslash, double-quote and newline become ``\\\\``, ``\\"`` and
    ``\\n``. Applied when rendering keys, so arbitrary strings (worker
    ids, dataset names, error details) are always safe to exposit."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _render_key(name: str, label_key: tuple) -> str:
    if not label_key:
        return name
    inner = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in label_key)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create instrument store keyed by name + labels."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, tuple], object] = {}

    def _get(self, factory, name: str, labels: dict):
        key = (str(name), _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        elif not isinstance(instrument, factory):
            raise TypeError(
                f"metric {_render_key(*key)!r} already registered as "
                f"{instrument.kind}, not {factory.kind}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._instruments)

    # -- views ---------------------------------------------------------
    def label_values(self, name: str, label: str) -> dict[str, float]:
        """``{label value: instrument value}`` over every instrument
        named *name* carrying *label* (the ``PerfCounters.timings``
        compatibility view)."""
        out: dict[str, float] = {}
        for (metric_name, label_key), instrument in self._instruments.items():
            if metric_name != name:
                continue
            labels = dict(label_key)
            if label in labels:
                out[labels[label]] = instrument.current()
        return out

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready view: ``{kind: {rendered key: value}}``, keys
        sorted for stable serialization."""
        view: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, label_key), instrument in sorted(self._instruments.items()):
            rendered = _render_key(name, label_key)
            view[instrument.kind + "s"][rendered] = instrument.current()
        return view

    def delta(self, previous: dict | None) -> dict[str, dict]:
        """Numeric difference of the current snapshot against an
        earlier :meth:`snapshot` (``None`` diffs against zero). Gauges
        report their current value, not a difference."""
        current = self.snapshot()
        previous = previous or {}
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        prev_counters = previous.get("counters", {})
        for key, value in current["counters"].items():
            out["counters"][key] = value - prev_counters.get(key, 0.0)
        out["gauges"] = dict(current["gauges"])
        prev_hist = previous.get("histograms", {})
        for key, value in current["histograms"].items():
            before = prev_hist.get(key, {})
            out["histograms"][key] = {
                "count": value["count"] - before.get("count", 0),
                "sum": value["sum"] - before.get("sum", 0.0),
            }
        return out

    # -- PerfCounters absorption --------------------------------------
    def absorb_perf(self, perf) -> None:
        """Fold a :class:`repro.core.perf.PerfCounters` into this
        registry: each counter field becomes ``perf_<field>`` and each
        named timing a ``phase_seconds{phase=...}`` counter.

        Uses set-to (absolute) semantics so repeated absorption of the
        same cumulative struct at successive phase boundaries yields
        monotonic counters, not double counting.
        """
        for field in perf._COUNTER_FIELDS:
            self.counter(f"perf_{field}").set_to(getattr(perf, field))
        for name, seconds in perf.timings.items():
            self.counter("phase_seconds", phase=name).set_to(seconds)
        self.gauge("perf_oracle_hit_rate").set(perf.oracle_hit_rate)
        self.gauge("perf_delta_fastpath_rate").set(perf.delta_fastpath_rate)


class _NullInstrument:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set_to(self, value: float) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """No-op registry for the disabled-telemetry path."""

    enabled = False

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def label_values(self, name: str, label: str) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {}

    def delta(self, previous) -> dict:
        return {}

    def absorb_perf(self, perf) -> None:
        pass


NULL_METRICS = NullMetrics()
