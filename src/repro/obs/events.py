"""The run event log: an append-only JSONL record of one solve.

Every record is one JSON object per line carrying at minimum::

    {"schema": 1, "kind": "...", "ts": <wall clock>, "mono": <monotonic>}

``ts`` (``time.time()``) places events on the cross-process timeline
the spans use; ``mono`` (``time.monotonic()``) gives a clock that
cannot step backwards for intra-process ordering. ``schema`` versions
the record layout so future readers can accept old logs.

Kinds emitted by :class:`repro.obs.SolveTelemetry`:

- ``run.start`` / ``run.end`` — trace identity, final status, open
  (leaked) spans, total span count;
- ``span.start`` / ``span`` — a span opening and its finished form;
- ``metrics.snapshot`` — per-phase registry snapshot plus the delta
  against the previous snapshot;
- ``fault.injected`` — a chaos fault applied at a checkpoint;
- ``checkpoint.replay`` / ``checkpoint.write`` — ledger activity;
- ``pool.task_failed`` / ``pool.task_retry`` / ``pool.task_degraded``
  / ``pool.restarted`` / ``pool.task_timeout`` — worker-pool fault
  handling;
- ``run.interrupted`` — budget expiry or cancellation;
- ``certify.start`` / ``certify.done`` — certification passes.

Durability follows the repo's checkpoint discipline: the sink buffers
records and periodically rewrites the whole file through
:func:`repro.runtime.atomic.atomic_write_text` (sibling temp file +
``os.replace``), so a reader — including a crash-time reader — always
sees complete lines, never a torn tail. One solve's log is small
(hundreds of records), so whole-file rewrites stay cheap.
"""

from __future__ import annotations

import json
import time

from ..runtime.atomic import atomic_write_text

__all__ = ["EventLog", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1

# Buffered records between automatic flushes of a file-backed log.
_FLUSH_EVERY = 32


class EventLog:
    """Ordered event sink, optionally persisted as JSONL.

    Parameters
    ----------
    path:
        Target JSONL file; ``None`` keeps the log in memory only
        (used by the bench harness for telemetry summaries).
    """

    def __init__(self, path: str | None = None):
        self.path = str(path) if path is not None else None
        self.records: list[dict] = []
        self._pending = 0
        self._closed = False

    def emit(self, kind: str, **payload) -> dict:
        """Append one record; flushes to disk periodically."""
        record = {
            "schema": SCHEMA_VERSION,
            "kind": str(kind),
            "ts": time.time(),
            "mono": time.monotonic(),
        }
        record.update(payload)
        self.records.append(record)
        self._pending += 1
        if self.path is not None and self._pending >= _FLUSH_EVERY:
            self.flush()
        return record

    def __len__(self) -> int:
        return len(self.records)

    def flush(self) -> None:
        """Atomically rewrite the backing file with every record so
        far (no-op for in-memory logs)."""
        if self.path is None or not self._pending:
            return
        lines = [
            json.dumps(record, sort_keys=True, default=str)
            for record in self.records
        ]
        atomic_write_text(self.path, "\n".join(lines) + "\n")
        self._pending = 0

    def close(self) -> None:
        """Final flush; further emits are still accepted (idempotent
        close keeps shutdown paths simple) but need another flush."""
        self.flush()
        self._closed = True
