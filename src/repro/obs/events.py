"""The run event log: an append-only JSONL record of one solve.

Every record is one JSON object per line carrying at minimum::

    {"schema": 1, "kind": "...", "ts": <wall clock>, "mono": <monotonic>}

``ts`` (``time.time()``) places events on the cross-process timeline
the spans use; ``mono`` (``time.monotonic()``) gives a clock that
cannot step backwards for intra-process ordering. ``schema`` versions
the record layout so future readers can accept old logs.

Kinds emitted by :class:`repro.obs.SolveTelemetry`:

- ``run.start`` / ``run.end`` — trace identity, final status, open
  (leaked) spans, total span count;
- ``span.start`` / ``span`` — a span opening and its finished form;
- ``metrics.snapshot`` — per-phase registry snapshot plus the delta
  against the previous snapshot;
- ``fault.injected`` — a chaos fault applied at a checkpoint;
- ``checkpoint.replay`` / ``checkpoint.write`` — ledger activity;
- ``pool.task_failed`` / ``pool.task_retry`` / ``pool.task_degraded``
  / ``pool.restarted`` / ``pool.task_timeout`` — worker-pool fault
  handling;
- ``run.interrupted`` — budget expiry or cancellation;
- ``certify.start`` / ``certify.done`` — certification passes;
- ``progress`` — compact phase/done/total samples folded by
  :class:`repro.obs.progress.ProgressModel` into percent + ETA;
- ``health`` — a watchdog classification (see
  :class:`repro.obs.health.StallDetector`).

Durability follows the repo's checkpoint discipline: the sink buffers
records and periodically rewrites the whole file through
:func:`repro.runtime.atomic.atomic_write_text` (sibling temp file +
``os.replace``), so a reader — including a crash-time reader — always
sees complete lines, never a torn tail. One solve's log is small
(hundreds of records), so whole-file rewrites stay cheap.

Three situations force an immediate flush rather than waiting for the
periodic window (whose worst case used to drop the tail of the log on
a SIGTERM drain, which the health layer would misread as a stall):

- terminal kinds (``run.end``, ``run.interrupted``, ``health``) — the
  records an operator most needs to see on disk;
- any emit after :meth:`EventLog.close` — late events on shutdown
  paths must not require a second explicit flush;
- a wall-clock deadline (:data:`_FLUSH_SECONDS`) — live readers
  polling the file (``obs tail``, the progress endpoints) see events
  within about a second even when the solve emits slowly.
"""

from __future__ import annotations

import json
import time

from ..runtime.atomic import atomic_write_text

__all__ = ["EventLog", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1

# Buffered records between automatic flushes of a file-backed log.
_FLUSH_EVERY = 32

# Maximum seconds a buffered record may wait before a flush.
_FLUSH_SECONDS = 1.0

# Kinds that flush immediately: losing these to a buffered window on
# process exit turns an orderly interrupt into an apparent stall.
_CRITICAL_KINDS = frozenset({"run.end", "run.interrupted", "health"})


class EventLog:
    """Ordered event sink, optionally persisted as JSONL.

    Parameters
    ----------
    path:
        Target JSONL file; ``None`` keeps the log in memory only
        (used by the bench harness for telemetry summaries).
    """

    def __init__(self, path: str | None = None):
        self.path = str(path) if path is not None else None
        self.records: list[dict] = []
        self._pending = 0
        self._closed = False
        self._last_flush_mono = time.monotonic()

    def emit(self, kind: str, **payload) -> dict:
        """Append one record; flushes to disk periodically, and
        immediately for terminal kinds, post-close emits, or when the
        oldest buffered record is older than :data:`_FLUSH_SECONDS`."""
        record = {
            "schema": SCHEMA_VERSION,
            "kind": str(kind),
            "ts": time.time(),
            "mono": time.monotonic(),
        }
        record.update(payload)
        self.records.append(record)
        self._pending += 1
        if self.path is not None and (
            record["kind"] in _CRITICAL_KINDS
            or self._closed
            or self._pending >= _FLUSH_EVERY
            or record["mono"] - self._last_flush_mono >= _FLUSH_SECONDS
        ):
            self.flush()
        return record

    def __len__(self) -> int:
        return len(self.records)

    def flush(self) -> None:
        """Atomically rewrite the backing file with every record so
        far (no-op for in-memory logs)."""
        self._last_flush_mono = time.monotonic()
        if self.path is None or not self._pending:
            return
        lines = [
            json.dumps(record, sort_keys=True, default=str)
            for record in self.records
        ]
        atomic_write_text(self.path, "\n".join(lines) + "\n")
        self._pending = 0

    def close(self) -> None:
        """Final flush; further emits are still accepted (idempotent
        close keeps shutdown paths simple) and flush immediately."""
        self.flush()
        self._closed = True
