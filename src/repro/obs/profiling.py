"""Opt-in per-span profiling hooks, gated by ``REPRO_PROFILE``.

Disabled (the default, whenever the variable is unset or empty) this
module costs one cached dict lookup per span. Enable with::

    REPRO_PROFILE=cprofile            # deterministic profiler
    REPRO_PROFILE=tracemalloc         # allocation tracking
    REPRO_PROFILE=cprofile:solve,tracemalloc:tabu

The value is a comma-separated list of modes, each optionally
restricted to span names with ``mode:name1+name2``. An unrestricted
mode applies to every span — note that :mod:`cProfile` cannot nest, so
with unrestricted ``cprofile`` only the outermost span of each process
actually profiles (inner requests are skipped, not queued).

Results land as span attributes:

- ``cprofile_top`` — the top functions by cumulative time, as
  ``"cumtime function"`` strings;
- ``tracemalloc_kb`` / ``tracemalloc_peak_kb`` — net allocated and
  peak traced memory over the span, in KiB.

The hook is wired inside :meth:`repro.obs.spans.Span.__enter__` /
``__exit__``, so it follows spans across worker processes too (the
environment variable is inherited by pool workers).
"""

from __future__ import annotations

import os

__all__ = ["begin", "finish"]

_ENV = "REPRO_PROFILE"

# Parsed spec cache, keyed by the raw environment value so tests can
# flip the variable mid-process.
_spec_cache: tuple[str, list] | None = None

# cProfile is process-global and cannot nest; only the outermost
# profiled span per process runs it.
_cprofile_active = False


def _spec() -> list[tuple[str, frozenset | None]]:
    """Parsed ``REPRO_PROFILE``: ``[(mode, span-name filter or None)]``."""
    global _spec_cache
    raw = os.environ.get(_ENV, "")
    if _spec_cache is not None and _spec_cache[0] == raw:
        return _spec_cache[1]
    parsed: list[tuple[str, frozenset | None]] = []
    for entry in raw.split(","):
        entry = entry.strip()
        if not entry:
            continue
        mode, _, names = entry.partition(":")
        mode = mode.strip().lower()
        if mode not in ("cprofile", "tracemalloc"):
            continue  # unknown modes are ignored, not fatal
        span_filter = (
            frozenset(n.strip() for n in names.split("+") if n.strip())
            if names
            else None
        )
        parsed.append((mode, span_filter))
    _spec_cache = (raw, parsed)
    return parsed


def begin(span_name: str):
    """Start profiling for a span; returns an opaque handle (or
    ``None`` when nothing applies — the overwhelmingly common case)."""
    spec = _spec()
    if not spec:
        return None
    handle = []
    for mode, span_filter in spec:
        if span_filter is not None and span_name not in span_filter:
            continue
        if mode == "cprofile":
            global _cprofile_active
            if _cprofile_active:
                continue
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            _cprofile_active = True
            handle.append(("cprofile", profiler))
        elif mode == "tracemalloc":
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
            current, _peak = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            handle.append(("tracemalloc", current))
    return handle or None


def finish(handle) -> dict:
    """Stop profiling started by :func:`begin`; returns span attrs."""
    attrs: dict[str, object] = {}
    for mode, payload in handle:
        if mode == "cprofile":
            global _cprofile_active
            payload.disable()
            _cprofile_active = False
            attrs["cprofile_top"] = _top_functions(payload)
        elif mode == "tracemalloc":
            import tracemalloc

            current, peak = tracemalloc.get_traced_memory()
            attrs["tracemalloc_kb"] = round((current - payload) / 1024, 1)
            attrs["tracemalloc_peak_kb"] = round(peak / 1024, 1)
    return attrs


def _top_functions(profiler, limit: int = 5) -> list[str]:
    import pstats

    stats = pstats.Stats(profiler)
    entries = []
    for func, (_cc, _nc, _tt, cumtime, _callers) in stats.stats.items():
        filename, lineno, name = func
        entries.append((cumtime, f"{cumtime:.4f}s {name} ({filename}:{lineno})"))
    entries.sort(key=lambda item: -item[0])
    return [text for _cum, text in entries[:limit]]
