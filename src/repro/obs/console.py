"""Operations console: ``obs top`` and ``obs tail`` over the HTTP API.

Both commands are thin stdlib-urllib clients of the solve service and
deliberately read nothing beyond what any HTTP client can reach: the
job listing plus the offset-poll events API (``GET /jobs`` and
``GET /jobs/<id>/events?offset=N``). Progress, ETA and health are
derived client-side with :class:`repro.obs.progress.ProgressModel` —
the console needs no privileged view of the store.

``obs top`` renders a refreshing fleet table (job, state, phase,
percent, ETA, health, worker); ``obs tail --job <id>`` follows one
job's span/progress stream as it lands in the journal.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request

from .progress import ProgressModel, weights_for_spec

__all__ = ["FleetClient", "FleetTop", "render_top", "run_tail", "run_top"]


class FleetClient:
    """Minimal JSON client for the service API (stdlib urllib only)."""

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _get(self, path: str) -> dict:
        with urllib.request.urlopen(
            self.base_url + path, timeout=self.timeout
        ) as response:
            return json.loads(response.read().decode("utf-8"))

    def jobs(self) -> list[dict]:
        return self._get("/jobs").get("jobs", [])

    def events(self, job_id: str, offset: int = 0) -> dict:
        return self._get(f"/jobs/{job_id}/events?offset={int(offset)}")


class _JobFollow:
    """Accumulated event stream + progress model for one job."""

    __slots__ = ("events", "offset", "model")

    def __init__(self, spec: dict | None):
        self.events: list[dict] = []
        self.offset = 0
        self.model = ProgressModel(weights_for_spec(spec))


class FleetTop:
    """Stateful fleet poller: incremental event offsets per job."""

    def __init__(self, client: FleetClient):
        self.client = client
        self._follows: dict[str, _JobFollow] = {}

    def rows(self, now: float | None = None) -> list[dict]:
        """One table row per job, newest first by creation order."""
        if now is None:
            now = time.time()
        rows: list[dict] = []
        for job in self.client.jobs():
            job_id = job.get("job_id", "?")
            follow = self._follows.get(job_id)
            if follow is None:
                follow = self._follows[job_id] = _JobFollow(job.get("spec"))
            try:
                page = self.client.events(job_id, offset=follow.offset)
            except (urllib.error.URLError, OSError, ValueError):
                page = {}
            fresh = page.get("events") or []
            follow.events.extend(fresh)
            follow.offset = page.get("next_offset", follow.offset)
            active = job.get("state") in ("leased", "running")
            snap = follow.model.snapshot(
                follow.events, now=now if active else None
            )
            rows.append(
                {
                    "job_id": job_id,
                    "state": job.get("state", "?"),
                    "phase": snap["phase"] or "-",
                    "fraction": snap["fraction"],
                    "eta_seconds": snap["eta_seconds"] if active else None,
                    "health": job.get("health") or "-",
                    "worker": job.get("worker_id") or "-",
                    "attempts": job.get("attempts", 0),
                }
            )
        return rows


def _fmt_eta(seconds) -> str:
    if seconds is None:
        return "-"
    seconds = max(float(seconds), 0.0)
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


_COLUMNS = (
    ("JOB", "job_id", 16),
    ("STATE", "state", 9),
    ("PHASE", "phase", 12),
    ("%", None, 6),
    ("ETA", None, 7),
    ("HEALTH", "health", 8),
    ("ATT", "attempts", 3),
    ("WORKER", "worker", 14),
)


def render_top(rows: list[dict]) -> str:
    """The fleet table as text (one header + one line per job)."""
    lines = [
        "  ".join(title.ljust(width) for title, _, width in _COLUMNS)
    ]
    for row in rows:
        cells = []
        for title, key, width in _COLUMNS:
            if title == "%":
                value = f"{row['fraction'] * 100:5.1f}%"
            elif title == "ETA":
                value = _fmt_eta(row["eta_seconds"])
            else:
                value = str(row.get(key, "-"))
            cells.append(value[:width].ljust(width))
        lines.append("  ".join(cells))
    if not rows:
        lines.append("(no jobs)")
    return "\n".join(lines) + "\n"


def run_top(
    url: str,
    once: bool = False,
    interval: float = 2.0,
    iterations: int | None = None,
    stream=None,
) -> int:
    """The ``obs top`` loop; ``once`` prints a single snapshot."""
    stream = stream or sys.stdout
    top = FleetTop(FleetClient(url))
    count = 0
    while True:
        try:
            table = render_top(top.rows())
        except (urllib.error.URLError, OSError) as error:
            print(f"cannot reach {url}: {error}", file=stream)
            return 1
        if not once:
            stream.write("\x1b[2J\x1b[H")  # clear + home
        stream.write(f"fleet @ {url}\n{table}")
        stream.flush()
        count += 1
        if once or (iterations is not None and count >= iterations):
            return 0
        time.sleep(interval)


def format_event(event: dict, base_ts: float | None) -> str:
    """One compact line for ``obs tail``."""
    ts = event.get("ts")
    offset = (
        f"+{float(ts) - base_ts:8.2f}s"
        if isinstance(ts, (int, float)) and base_ts is not None
        else " " * 10
    )
    kind = event.get("kind", "?")
    if kind == "progress":
        detail = (
            f"{event.get('phase')} {event.get('done')}/{event.get('total')}"
        )
    elif kind in ("span", "span.start"):
        detail = str(event.get("name", ""))
        if kind == "span" and event.get("end") and event.get("start"):
            detail += f" ({event['end'] - event['start']:.2f}s)"
    elif kind == "metrics.snapshot":
        detail = str(event.get("phase", ""))
    elif kind == "health":
        detail = f"{event.get('health')} ({event.get('detail', '')})"
    else:
        detail = str(event.get("status", "") or "")
    return f"{offset}  {kind:<18} {detail}".rstrip()


def run_tail(
    url: str,
    job_id: str,
    follow: bool = True,
    interval: float = 0.5,
    max_polls: int | None = None,
    stream=None,
) -> int:
    """The ``obs tail --job <id>`` loop: offset-poll one job's events,
    print each as a line; stops when the job reaches a terminal state
    (or after one poll with ``follow=False``)."""
    stream = stream or sys.stdout
    client = FleetClient(url)
    offset = 0
    base_ts: float | None = None
    polls = 0
    while True:
        try:
            page = client.events(job_id, offset=offset)
        except urllib.error.HTTPError as error:
            print(f"job {job_id}: HTTP {error.code}", file=stream)
            return 1
        except (urllib.error.URLError, OSError) as error:
            print(f"cannot reach {url}: {error}", file=stream)
            return 1
        for event in page.get("events") or []:
            ts = event.get("ts")
            if base_ts is None and isinstance(ts, (int, float)):
                base_ts = float(ts)
            stream.write(format_event(event, base_ts) + "\n")
        stream.flush()
        offset = page.get("next_offset", offset)
        state = page.get("state")
        polls += 1
        if not follow or state in (
            "completed", "failed", "cancelled", "dead"
        ):
            stream.write(f"job {job_id}: {state}\n")
            return 0
        if max_polls is not None and polls >= max_polls:
            return 0
        time.sleep(interval)
