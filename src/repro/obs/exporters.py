"""Exporters over the run event log (``trace.jsonl``).

Everything here consumes the list-of-dicts form produced by
:func:`read_events` (one JSON object per line, see
:mod:`repro.obs.events`) and is surfaced on the CLI as
``python -m repro obs <report|chrome|prom|validate> trace.jsonl``:

- :func:`render_report` — human-readable timeline: the span tree with
  durations and attributes, event counts, per-phase wall-clock;
- :func:`chrome_trace` — Chrome ``trace_event`` JSON (complete ``"X"``
  events, microsecond timestamps) for chrome://tracing / Perfetto;
- :func:`prometheus_text` — Prometheus text exposition of a metrics
  snapshot (the log's final one, or a ``--metrics-output`` JSON file);
- :func:`validate_events` — structural lint: valid JSONL, schema
  fields present, every span closed, every parent resolvable, exactly
  one root — the CI gate for trace artifacts.
"""

from __future__ import annotations

import json
import re

__all__ = [
    "chrome_trace",
    "final_metrics_snapshot",
    "prometheus_text",
    "read_events",
    "render_report",
    "validate_events",
]


def read_events(path: str) -> list[dict]:
    """Load a JSONL event log; raises ``ValueError`` naming the first
    malformed line (a trace file must be valid JSONL end to end)."""
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{number}: not valid JSON ({error.msg})"
                ) from error
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{number}: expected a JSON object, got "
                    f"{type(record).__name__}"
                )
            records.append(record)
    return records


def span_records(events: list[dict]) -> list[dict]:
    """The finished-span records of an event log, in emission order."""
    return [event for event in events if event.get("kind") == "span"]


def final_metrics_snapshot(events: list[dict]) -> dict | None:
    """The last ``metrics.snapshot`` record's snapshot, if any."""
    for event in reversed(events):
        if event.get("kind") == "metrics.snapshot":
            return event.get("snapshot")
    return None


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------

_REQUIRED_FIELDS = ("schema", "kind", "ts", "mono")


def validate_events(events: list[dict]) -> list[str]:
    """Structural problems of an event log (empty list = valid)."""
    problems: list[str] = []
    if not events:
        return ["event log is empty"]
    for position, event in enumerate(events):
        missing = [f for f in _REQUIRED_FIELDS if f not in event]
        if missing:
            problems.append(
                f"record {position} ({event.get('kind', '?')!r}) is missing "
                f"required fields {missing}"
            )
    started: dict[str, dict] = {}
    ended: dict[str, dict] = {}
    for event in events:
        kind = event.get("kind")
        if kind == "span.start" and event.get("span_id"):
            started[event["span_id"]] = event
        elif kind == "span" and event.get("span_id"):
            ended[event["span_id"]] = event
    for span_id, event in started.items():
        if span_id not in ended:
            problems.append(
                f"span {event.get('name')!r} ({span_id}) started but never "
                "finished"
            )
    for span_id, event in ended.items():
        if span_id not in started:
            problems.append(
                f"span {event.get('name')!r} ({span_id}) finished without a "
                "span.start record"
            )
        if event.get("end") is None:
            problems.append(
                f"span {event.get('name')!r} ({span_id}) has no end timestamp"
            )
    roots = [e for e in ended.values() if e.get("parent_id") is None]
    if len(roots) != 1 and ended:
        problems.append(
            f"expected exactly one root span, found {len(roots)} "
            f"({sorted(e.get('name', '?') for e in roots)})"
        )
    for span_id, event in ended.items():
        parent = event.get("parent_id")
        if parent is not None and parent not in ended:
            problems.append(
                f"span {event.get('name')!r} ({span_id}) is orphaned: parent "
                f"{parent} is not in the trace"
            )
    for event in events:
        if event.get("kind") == "run.end" and event.get("open_spans"):
            problems.append(
                f"run.end reports open spans: {event['open_spans']}"
            )
    for position, event in enumerate(events):
        if event.get("kind") == "progress":
            done, total = event.get("done"), event.get("total")
            if not isinstance(done, (int, float)) or not isinstance(
                total, (int, float)
            ):
                problems.append(
                    f"record {position}: progress event lacks numeric "
                    "done/total"
                )
            elif not 0 <= done <= max(total, 0):
                problems.append(
                    f"record {position}: progress done={done} outside "
                    f"[0, total={total}]"
                )
        elif event.get("kind") == "health":
            if event.get("health") not in (
                "healthy", "slow", "stalled"
            ):
                problems.append(
                    f"record {position}: health event carries unknown "
                    f"state {event.get('health')!r}"
                )
    return problems


# ----------------------------------------------------------------------
# timeline report
# ----------------------------------------------------------------------

# Span attributes worth showing inline in the report tree.
_REPORT_ATTRS = (
    "index",
    "seed",
    "p",
    "n_unassigned",
    "heterogeneity",
    "iterations",
    "status",
)


def render_report(events: list[dict]) -> str:
    """Human-readable timeline: span tree, event summary, phase totals."""
    spans = span_records(events)
    lines: list[str] = []
    run_start = next(
        (e for e in events if e.get("kind") == "run.start"), None
    )
    if run_start is not None:
        lines.append(f"trace {run_start.get('trace_id', '?')}")

    children: dict[str | None, list[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.get("start") or 0.0, s.get("span_id")))

    base = min((s.get("start") or 0.0 for s in spans), default=0.0)

    def _walk(parent_id: str | None, depth: int) -> None:
        for span in children.get(parent_id, []):
            start = (span.get("start") or 0.0) - base
            duration = ((span.get("end") or span.get("start") or 0.0)
                        - (span.get("start") or 0.0))
            attrs = span.get("attrs") or {}
            shown = ", ".join(
                f"{key}={attrs[key]}" for key in _REPORT_ATTRS if key in attrs
            )
            flag = "" if span.get("status") == "ok" else f" [{span.get('status')}]"
            lines.append(
                f"{'  ' * depth}{span.get('name')}{flag}  "
                f"+{start * 1000:.1f}ms  {duration * 1000:.1f}ms"
                + (f"  ({shown})" if shown else "")
            )
            _walk(span.get("span_id"), depth + 1)

    _walk(None, 0)

    counts: dict[str, int] = {}
    for event in events:
        kind = event.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
    lines.append("")
    lines.append("events: " + ", ".join(
        f"{kind}×{count}" for kind, count in sorted(counts.items())
    ))

    snapshot = final_metrics_snapshot(events)
    if snapshot:
        phase_seconds = {
            key: value
            for key, value in snapshot.get("counters", {}).items()
            if key.startswith("phase_seconds{")
        }
        if phase_seconds:
            lines.append("phase seconds:")
            for key, value in sorted(phase_seconds.items()):
                label = key[len("phase_seconds{"):-1]
                lines.append(f"  {label:<30} {value:.4f}s")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------

def chrome_trace(events: list[dict]) -> dict:
    """Chrome ``trace_event`` JSON: load the returned object (saved as
    a file) in chrome://tracing or https://ui.perfetto.dev."""
    spans = span_records(events)
    base = min((s.get("start") or 0.0 for s in spans), default=0.0)
    trace_events = []
    for span in spans:
        start = span.get("start") or 0.0
        end = span.get("end") or start
        args = dict(span.get("attrs") or {})
        args["span_id"] = span.get("span_id")
        if span.get("status") != "ok":
            args["status"] = span.get("status")
        trace_events.append(
            {
                "name": span.get("name"),
                "cat": "solve",
                "ph": "X",
                "ts": round((start - base) * 1e6, 1),
                "dur": round((end - start) * 1e6, 1),
                "pid": span.get("pid", 0),
                "tid": span.get("pid", 0),
                "args": args,
            }
        )
    for pid in sorted({e["pid"] for e in trace_events}):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": f"solver pid {pid}"},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str) -> str:
    return prefix + _SANITIZE_RE.sub("_", name)


def _split_key(key: str) -> tuple[str, str]:
    """A snapshot key like ``phase_seconds{phase="tabu"}`` into
    (name, label part incl. braces or '')."""
    match = _KEY_RE.match(key)
    if match is None:  # pragma: no cover - snapshot keys are regular
        return key, ""
    labels = match.group("labels")
    return match.group("name"), f"{{{labels}}}" if labels else ""


def _escape_help(text: str) -> str:
    """HELP-line escaping per text-format 0.0.4: backslash and
    newline only (double quotes are legal in HELP text)."""
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


def prometheus_text(
    snapshot: dict,
    prefix: str = "repro_",
    help_text: dict[str, str] | None = None,
) -> str:
    """Prometheus text exposition of a metrics snapshot
    (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`).

    *help_text* maps snapshot metric names (pre-prefix, e.g.
    ``service_jobs``) to ``# HELP`` strings, emitted escaped before
    the matching ``# TYPE`` line.
    """
    lines: list[str] = []
    typed: set[str] = set()
    help_text = help_text or {}

    def _emit(key: str, value, kind: str, suffix: str = "") -> None:
        name, labels = _split_key(key)
        prom = _prom_name(name, prefix) + suffix
        if prom not in typed:
            typed.add(prom)
            if not suffix and name in help_text:
                lines.append(
                    f"# HELP {prom} {_escape_help(help_text[name])}"
                )
            lines.append(f"# TYPE {prom} {kind}")
        rendered = "0" if value is None else repr(float(value))
        lines.append(f"{prom}{labels} {rendered}")

    for key, value in (snapshot.get("counters") or {}).items():
        _emit(key, value, "counter")
    for key, value in (snapshot.get("gauges") or {}).items():
        _emit(key, value, "gauge")
    for key, value in (snapshot.get("histograms") or {}).items():
        _emit(key, value.get("count", 0), "counter", suffix="_count")
        _emit(key, value.get("sum", 0.0), "counter", suffix="_sum")
        _emit(key, value.get("min"), "gauge", suffix="_min")
        _emit(key, value.get("max"), "gauge", suffix="_max")
    return "\n".join(lines) + "\n"
