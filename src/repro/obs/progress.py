"""Progress/ETA engine: fold a run event log into percent + ETA.

The solver emits compact ``progress`` records (phase, done, total) at
phase boundaries and at a bounded cadence inside the long phases (see
:meth:`repro.obs.SolveTelemetry.progress`). :class:`ProgressModel`
folds that stream — together with the phase markers the solver already
emits (``metrics.snapshot``, ``run.end``) — into one phase-weighted
completion fraction in ``[0, 1]`` plus a naive proportional ETA.

The fold is deterministic: the same event list always produces the
same snapshot, so the service endpoints, the console and the bench
harness all agree on what "63% done" means.

Phase weights come from BENCH_scaling.json when it is present: for a
solve of *n* areas we pick the benchmarked dataset nearest in size and
split its measured wall clock into feasibility / construction / tabu
shares (tabu dominates at scale — ~90% of a 10k-area numpy solve).
Without the bench file a conservative default applies.
"""

from __future__ import annotations

import json
import os

__all__ = [
    "DEFAULT_WEIGHTS",
    "ProgressModel",
    "calibrate_weights",
    "eta_error",
    "weights_for_spec",
]

# Phase keys of the fold, in solve order. ``progress`` events whose
# phase carries a suffix ("tabu.search") roll up to the first segment.
PHASES = ("feasibility", "construction", "tabu")

# Fallback shares when no bench profile is available; mirrors the
# shape of every BENCH_scaling.json row (tabu dominates).
DEFAULT_WEIGHTS = {
    "feasibility": 0.03,
    "construction": 0.17,
    "tabu": 0.80,
}

# construction_seconds in the bench rows includes the feasibility
# check; carve a small fixed share back out for the feasibility phase.
_FEASIBILITY_SHARE_OF_CONSTRUCTION = 0.15


def _bench_path() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.normpath(
        os.path.join(here, "..", "..", "..", "BENCH_scaling.json")
    )


def _load_bench(bench_path: str | None) -> dict | None:
    path = bench_path or _bench_path()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def bench_profile(
    n_areas: int | None,
    backend: str = "numpy",
    bench_path: str | None = None,
) -> dict | None:
    """The BENCH_scaling.json backend row nearest *n_areas*
    (``{construction_seconds, tabu_seconds, wall_seconds, ...}``), or
    ``None`` when the bench file or a usable row is missing."""
    bench = _load_bench(bench_path)
    if not bench or n_areas is None:
        return None
    best: dict | None = None
    best_gap = None
    for entry in (bench.get("datasets") or {}).values():
        size = entry.get("n_areas")
        backends = entry.get("backends") or {}
        row = backends.get(backend) or next(iter(backends.values()), None)
        if size is None or row is None:
            continue
        gap = abs(int(size) - int(n_areas))
        if best_gap is None or gap < best_gap:
            best_gap, best = gap, row
    return best


def _normalize(weights: dict) -> dict:
    total = sum(max(float(v), 0.0) for v in weights.values())
    if total <= 0.0:
        return dict(DEFAULT_WEIGHTS)
    return {k: max(float(v), 0.0) / total for k, v in weights.items()}


def calibrate_weights(
    n_areas: int | None,
    backend: str = "numpy",
    bench_path: str | None = None,
) -> dict:
    """Phase weights ``{phase: share of wall}`` for a solve of
    *n_areas* areas, calibrated from BENCH_scaling.json when present
    (nearest dataset size, per backend), else :data:`DEFAULT_WEIGHTS`."""
    row = bench_profile(n_areas, backend=backend, bench_path=bench_path)
    if row is None:
        return dict(DEFAULT_WEIGHTS)
    construction = float(row.get("construction_seconds") or 0.0)
    tabu = float(row.get("tabu_seconds") or 0.0)
    if construction <= 0.0 and tabu <= 0.0:
        return dict(DEFAULT_WEIGHTS)
    feasibility = construction * _FEASIBILITY_SHARE_OF_CONSTRUCTION
    return _normalize(
        {
            "feasibility": feasibility,
            "construction": construction - feasibility,
            "tabu": tabu,
        }
    )


def weights_for_spec(spec: dict | None) -> dict:
    """Calibrated weights for a service job spec (dataset name + scale
    resolve to an area count via the dataset registry; the configured
    backend picks the bench column)."""
    spec = spec or {}
    n_areas = None
    try:
        from ..data.datasets import DATASETS

        entry = DATASETS[spec.get("dataset")]
        n_areas = max(1, int(entry.n_areas * float(spec.get("scale") or 1.0)))
    except Exception:
        n_areas = None
    backend = (spec.get("config") or {}).get("backend") or "numpy"
    return calibrate_weights(n_areas, backend=str(backend))


def _base_phase(phase: str) -> str:
    return str(phase).split(".", 1)[0]


class ProgressModel:
    """Deterministic fold of an event list into a progress snapshot.

    Parameters
    ----------
    weights:
        ``{phase: share}`` over :data:`PHASES`; normalized on entry.
        ``None`` uses :data:`DEFAULT_WEIGHTS`.
    """

    def __init__(self, weights: dict | None = None):
        merged = dict(DEFAULT_WEIGHTS)
        merged.update(weights or {})
        self.weights = _normalize(
            {phase: merged.get(phase, 0.0) for phase in PHASES}
        )

    def snapshot(self, events: list[dict], now: float | None = None) -> dict:
        """Fold *events* into::

            {fraction, phase, eta_seconds, elapsed_seconds,
             status, progress_events, phases: {phase: fraction}}

        ``fraction`` is monotone over a well-formed log: per-phase
        fractions only ratchet forward, and a completed phase pins at
        1.0. ``now`` (wall clock) extends ``elapsed_seconds`` past the
        last event for live views; ``None`` measures to the last event.
        """
        fractions = {phase: 0.0 for phase in PHASES}
        started_ts: float | None = None
        last_ts: float | None = None
        status: str | None = None
        current_phase: str | None = None
        progress_events = 0
        for event in events:
            kind = event.get("kind")
            ts = event.get("ts")
            if isinstance(ts, (int, float)):
                if started_ts is None:
                    started_ts = float(ts)
                last_ts = float(ts)
            if kind == "progress":
                progress_events += 1
                phase = _base_phase(event.get("phase", ""))
                if phase in fractions:
                    done = float(event.get("done") or 0.0)
                    total = float(event.get("total") or 0.0)
                    if total > 0.0:
                        sample = min(max(done / total, 0.0), 1.0)
                        if sample > fractions[phase]:
                            fractions[phase] = sample
                    current_phase = phase
            elif kind == "metrics.snapshot":
                phase = event.get("phase")
                if phase == "final":
                    continue  # emitted by close(); run.end decides
                if phase in fractions:
                    # A phase snapshot marks that phase (and every
                    # earlier one) complete.
                    for earlier in PHASES:
                        fractions[earlier] = 1.0
                        if earlier == phase:
                            break
                    index = PHASES.index(phase)
                    if index + 1 < len(PHASES):
                        current_phase = PHASES[index + 1]
            elif kind == "run.end":
                status = str(event.get("status") or "ok")
                if status in ("ok", "complete"):
                    for phase in PHASES:
                        fractions[phase] = 1.0
            elif kind == "run.interrupted":
                status = str(event.get("status") or "interrupted")
        fraction = sum(
            self.weights[phase] * fractions[phase] for phase in PHASES
        )
        fraction = min(max(fraction, 0.0), 1.0)
        if fraction >= 1.0:
            current_phase = "done"
        elif current_phase is None:
            current_phase = PHASES[0] if events else None
        elapsed = None
        eta = None
        if started_ts is not None:
            end_ts = max(now or 0.0, last_ts or started_ts)
            elapsed = max(end_ts - started_ts, 0.0)
            if 1e-9 < fraction < 1.0 and elapsed > 0.0:
                eta = elapsed * (1.0 - fraction) / fraction
            elif fraction >= 1.0:
                eta = 0.0
        return {
            "fraction": fraction,
            "phase": current_phase,
            "eta_seconds": eta,
            "elapsed_seconds": elapsed,
            "status": status,
            "progress_events": progress_events,
            "phases": fractions,
        }


def eta_error(events: list[dict], weights: dict | None = None) -> dict | None:
    """ETA calibration quality of one finished run: the wall-clock
    prediction the model would have served at each ``progress`` event
    versus the actual wall. Returns ``None`` for runs with no
    ``run.end`` or no progress events.

    Keys: ``predicted_wall_seconds`` (final prediction, at the last
    progress event), ``actual_wall_seconds``, ``final_error_ratio``
    (``|predicted - actual| / actual``) and ``mean_error_ratio``
    (mean over every prediction point).
    """
    run_start = next(
        (e for e in events if e.get("kind") == "run.start"), None
    )
    run_end = next(
        (e for e in events if e.get("kind") == "run.end"), None
    )
    if run_start is None or run_end is None:
        return None
    actual = float(run_end.get("ts", 0.0)) - float(run_start.get("ts", 0.0))
    if actual <= 0.0:
        return None
    model = ProgressModel(weights)
    predictions: list[float] = []
    for position, event in enumerate(events):
        if event.get("kind") != "progress":
            continue
        snap = model.snapshot(events[: position + 1])
        fraction = snap["fraction"]
        elapsed = snap["elapsed_seconds"]
        if fraction and fraction > 1e-9 and elapsed is not None:
            predictions.append(elapsed / fraction)
    if not predictions:
        return None
    ratios = [abs(p - actual) / actual for p in predictions]
    return {
        "predicted_wall_seconds": round(predictions[-1], 6),
        "actual_wall_seconds": round(actual, 6),
        "final_error_ratio": round(ratios[-1], 6),
        "mean_error_ratio": round(sum(ratios) / len(ratios), 6),
    }
