"""Structured spans: nested, timed, attributed units of solver work.

A :class:`Tracer` produces :class:`Span` objects used as context
managers::

    tracer = Tracer()
    with tracer.span("solve", rng_seed=7) as span:
        with tracer.span("feasibility"):
            ...
        if span.recording:
            span.set(p=12)

Nesting is tracked by the tracer (a plain stack — the solver is
single-threaded per process), so a span's parent is whatever span was
open when it started. Finished spans accumulate as plain dicts on
:attr:`Tracer.finished`, ready for JSONL serialization.

Cross-process stitching
-----------------------
Worker tasks cannot share the parent's tracer object, so the parent
captures a *span context* — the serializable pair
``(trace_id, current_span_id)`` from :meth:`Tracer.context` — and
ships it with the task arguments. The worker builds its own tracer
with :func:`worker_tracer`, which roots every worker-side span under
the parent's current span, and returns ``list(tracer.finished)`` with
its result; the parent adopts those dicts into its own trace. Span ids
embed the producing process id plus a per-tracer random prefix, so ids
are unique across the pool without any coordination.

Disabled-telemetry cost
-----------------------
The default tracer everywhere is :data:`NULL_TRACER`: ``span()``
returns the shared :data:`NULL_SPAN` singleton whose ``__enter__`` /
``__exit__`` / ``set`` are empty methods, and whose ``recording``
attribute is ``False`` so call sites can skip computing expensive
attributes entirely. No timestamps are taken and nothing allocates.

Timestamps are wall-clock (``time.time()``) because spans from
different processes must land on one comparable timeline; the event
log additionally records a monotonic clock for intra-process ordering.
"""

from __future__ import annotations

import os
import time

from . import profiling

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "worker_tracer",
]


class Span:
    """One timed unit of work; use as a context manager.

    Attributes become part of the span's serialized form. Cheap
    attributes can be passed to :meth:`Tracer.span` directly; guard
    expensive ones with :attr:`recording`::

        if span.recording:
            span.set(heterogeneity=state.total_heterogeneity())
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "start",
        "end",
        "attrs",
        "status",
        "pid",
        "verbosity",
        "_tracer",
        "_profile",
    )

    recording = True

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.verbosity = tracer.verbosity
        self.attrs = dict(attrs)
        self.span_id = ""
        self.parent_id = None
        self.trace_id = tracer.trace_id
        self.start = 0.0
        self.end = None
        self.status = "ok"
        self.pid = os.getpid()
        self._profile = None

    def set(self, **attrs) -> "Span":
        """Attach attributes to this span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = tracer._next_id()
        self.parent_id = tracer._current_id()
        tracer._stack.append(self)
        self.start = time.time()
        tracer._started(self)
        self._profile = profiling.begin(self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._profile is not None:
            self.attrs.update(profiling.finish(self._profile))
            self._profile = None
        self.end = time.time()
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("exception", exc_type.__name__)
        stack = self._tracer._stack
        if self in stack:  # tolerate exceptions unwinding several spans
            while stack and stack[-1] is not self:
                stack.pop()
            stack.pop()
        self._tracer._finish(self)
        return False

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def as_dict(self) -> dict:
        """The span's serialized (JSON-ready) form."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Produces spans and collects their finished forms.

    Parameters
    ----------
    trace_id:
        Identity of the whole run's trace; generated when omitted.
        Worker tracers inherit the parent's so all spans of one solve
        share a single trace.
    root_parent:
        Span id adopted as the parent of this tracer's top-level spans
        (how worker spans attach under the parent's current span).
    on_start / on_finish:
        Optional callbacks receiving each span (start) or its dict
        form (finish) — the event log's hook.
    verbosity:
        Attribute detail level inherited by every span this tracer
        produces: ``2`` (the default) records everything, ``1`` tells
        call sites to skip *expensive* attributes (anything that walks
        the whole partition — see ``repro.fact.growing
        ._set_state_attrs``), ``0`` is the null span's level. Shipped
        through :meth:`context` so worker spans keep the parent's
        level.
    """

    enabled = True

    def __init__(
        self,
        trace_id: str | None = None,
        root_parent: str | None = None,
        on_start=None,
        on_finish=None,
        verbosity: int = 2,
    ):
        self.verbosity = verbosity
        self.trace_id = trace_id or os.urandom(6).hex()
        self._root_parent = root_parent
        # Unique-without-coordination span ids: random per-tracer
        # prefix + sequence number + pid.
        self._prefix = f"{os.getpid():x}-{os.urandom(3).hex()}"
        self._seq = 0
        self._stack: list[Span] = []
        self.finished: list[dict] = []
        self._on_start = on_start
        self._on_finish = on_finish

    # -- span production ----------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        """A new span; enter it with ``with`` to start the clock."""
        return Span(self, name, attrs)

    def _next_id(self) -> str:
        self._seq += 1
        return f"{self._prefix}-{self._seq}"

    def _current_id(self) -> str | None:
        if self._stack:
            return self._stack[-1].span_id
        return self._root_parent

    def _started(self, span: Span) -> None:
        if self._on_start is not None:
            self._on_start(span)

    def _finish(self, span: Span) -> None:
        record = span.as_dict()
        self.finished.append(record)
        if self._on_finish is not None:
            self._on_finish(record)

    # -- cross-process stitching --------------------------------------
    def context(self) -> tuple[str, str | None, int]:
        """Serializable ``(trace_id, current_span_id, verbosity)``
        triple to ship to a worker; feed it to :func:`worker_tracer`
        there."""
        return (self.trace_id, self._current_id(), self.verbosity)

    def adopt(self, span_dicts) -> None:
        """Fold finished span dicts from a worker tracer into this
        trace (callbacks are NOT fired — the caller decides how
        adopted spans reach the event log)."""
        self.finished.extend(span_dicts)

    def open_span_names(self) -> list[str]:
        """Names of spans entered but not yet exited (outermost
        first) — non-empty at close time means a span leak."""
        return [span.name for span in self._stack]


class _NullSpan:
    """Shared no-op span: no clock reads, no allocation, not recording."""

    __slots__ = ()
    recording = False
    verbosity = 0
    name = ""
    attrs: dict = {}

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: the disabled-telemetry default everywhere."""

    enabled = False
    verbosity = 0
    trace_id = None
    finished: tuple = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def context(self) -> None:
        return None

    def adopt(self, span_dicts) -> None:
        pass

    def open_span_names(self) -> list:
        return []


NULL_TRACER = NullTracer()


def worker_tracer(span_context) -> Tracer | NullTracer:
    """The tracer a worker task should use for *span_context* (a
    :meth:`Tracer.context` value, or ``None`` for disabled telemetry).

    Accepts the legacy two-field ``(trace_id, parent_id)`` context
    (e.g. from a journaled job written before verbosity existed); the
    worker then runs at full detail, matching the old behavior.
    """
    if span_context is None:
        return NULL_TRACER
    trace_id, parent_id = span_context[0], span_context[1]
    verbosity = span_context[2] if len(span_context) > 2 else 2
    return Tracer(
        trace_id=trace_id, root_parent=parent_id, verbosity=verbosity
    )
