"""The per-solve telemetry bundle: tracer + metrics + event log.

:class:`SolveTelemetry` is what the solver stack actually passes
around — one object owning the run's :class:`~repro.obs.spans.Tracer`,
:class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.events.EventLog`, wired so every span lands in the
event log automatically.

The disabled counterpart is :data:`DISABLED`, a shared singleton whose
tracer is :data:`~repro.obs.spans.NULL_TRACER` and whose methods are
empty — the default everywhere, keeping the telemetry-off solve free
of clock reads and allocations (<2% overhead by construction: the
hot loops only ever touch no-op singletons).

Telemetry never influences solver decisions: spans and metrics are
written, not read, so a solve produces bit-identical partitions with
telemetry on or off (CI asserts this).
"""

from __future__ import annotations

import time

from .events import EventLog
from .metrics import NULL_METRICS, MetricsRegistry
from .spans import NULL_TRACER, Tracer

__all__ = ["DISABLED", "SolveTelemetry", "resolve_telemetry"]

_VERBOSITY_ENV = "REPRO_TRACE_VERBOSITY"

# Minimum seconds between non-forced progress events. The gate only
# decides whether a record is *written* — never a solver decision — so
# the wall-clock read here cannot break bit-identity.
_PROGRESS_MIN_INTERVAL = 0.25


def _env_verbosity() -> int:
    """``REPRO_TRACE_VERBOSITY`` as an int, defaulting to 2 (full
    detail); garbage values fall back to the default too."""
    import os

    raw = os.environ.get(_VERBOSITY_ENV, "").strip()
    if not raw:
        return 2
    try:
        return int(raw)
    except ValueError:
        return 2


class SolveTelemetry:
    """Live telemetry for one :meth:`repro.fact.solver.FaCT.solve`.

    Parameters
    ----------
    trace_path:
        JSONL event-log file (``--trace-output``); ``None`` keeps
        events in memory (still inspectable via ``events.records``).
    metrics_path:
        Final metrics dump (``--metrics-output``): Prometheus text
        exposition for ``.prom``/``.txt`` paths, JSON otherwise.
    verbosity:
        Span attribute detail (see :class:`~repro.obs.spans.Tracer`):
        ``2`` records everything, ``1`` skips expensive attributes
        (whole-partition sweeps like the substep heterogeneity).
        ``None`` (the default) reads ``REPRO_TRACE_VERBOSITY``,
        falling back to ``2``.
    """

    enabled = True

    def __init__(
        self,
        trace_path: str | None = None,
        metrics_path: str | None = None,
        verbosity: int | None = None,
    ):
        if verbosity is None:
            verbosity = _env_verbosity()
        self.events = EventLog(trace_path)
        self.metrics = MetricsRegistry()
        self.metrics_path = str(metrics_path) if metrics_path else None
        self.tracer = Tracer(
            on_start=self._span_started,
            on_finish=self._span_finished,
            verbosity=verbosity,
        )
        self._last_snapshot: dict | None = None
        self._closed = False
        self._progress_count = 0
        self._last_progress_mono = 0.0
        self.events.emit("run.start", trace_id=self.tracer.trace_id)

    # -- span plumbing -------------------------------------------------
    def _span_started(self, span) -> None:
        self.events.emit(
            "span.start",
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            start=span.start,
            pid=span.pid,
        )

    def _span_finished(self, record: dict) -> None:
        self.events.emit("span", **record)

    def adopt_spans(self, span_dicts) -> None:
        """Stitch a worker task's finished spans into this trace: they
        join the tracer's record and the event log (as paired
        ``span.start``/``span`` events, so unclosed-span accounting
        stays uniform)."""
        for record in span_dicts:
            self.events.emit(
                "span.start",
                span_id=record["span_id"],
                parent_id=record["parent_id"],
                name=record["name"],
                start=record["start"],
                pid=record.get("pid"),
            )
            self.events.emit("span", **record)
        self.tracer.adopt(span_dicts)

    def span_context(self):
        """Serializable context parenting worker spans under the
        currently open span (see :meth:`repro.obs.spans.Tracer.context`)."""
        return self.tracer.context()

    # -- events and metrics -------------------------------------------
    def event(self, kind: str, **payload) -> None:
        """Emit one run event."""
        self.events.emit(kind, **payload)

    def progress(
        self,
        phase: str,
        done: float,
        total: float,
        force: bool = False,
        **extra,
    ) -> None:
        """Emit one compact ``progress`` record (phase, done, total).

        Verbosity-gated (silent below verbosity 1) and rate-bounded:
        non-forced samples closer than :data:`_PROGRESS_MIN_INTERVAL`
        to the previous one are dropped, so a tight tabu loop cannot
        flood the log. ``force=True`` (phase boundaries, completion)
        always writes. Emission never feeds back into the solver, so
        partitions stay bit-identical with progress on or off.
        """
        if self.tracer.verbosity < 1:
            return
        now = time.monotonic()
        if (
            not force
            and now - self._last_progress_mono < _PROGRESS_MIN_INTERVAL
        ):
            return
        self._last_progress_mono = now
        self._progress_count += 1
        self.events.emit(
            "progress", phase=str(phase), done=done, total=total, **extra
        )

    def snapshot_metrics(self, phase: str) -> dict:
        """Record a ``metrics.snapshot`` event for *phase*: the full
        registry view plus the delta since the previous snapshot."""
        snapshot = self.metrics.snapshot()
        delta = self.metrics.delta(self._last_snapshot)
        self._last_snapshot = snapshot
        self.events.emit(
            "metrics.snapshot", phase=phase, snapshot=snapshot, delta=delta
        )
        return snapshot

    def summary(self) -> dict:
        """Compact roll-up for bench records: total spans, the
        per-phase wall-clock the registry knows about, the number of
        progress samples written and (for finished runs) the ETA
        calibration error of the progress model."""
        from .progress import eta_error

        return {
            "trace_id": self.tracer.trace_id,
            "total_spans": len(self.tracer.finished),
            "total_events": len(self.events.records),
            "progress_events": self._progress_count,
            "eta_error": eta_error(self.events.records),
            "phase_seconds": {
                name: round(seconds, 6)
                for name, seconds in sorted(
                    self.metrics.label_values("phase_seconds", "phase").items()
                )
            },
        }

    # -- lifecycle -----------------------------------------------------
    def close(self, status: str = "ok") -> None:
        """Finalize: last metrics snapshot, ``run.end`` record (listing
        any leaked open spans), flush, optional metrics dump."""
        if self._closed:
            return
        self._closed = True
        self.snapshot_metrics("final")
        self.events.emit(
            "run.end",
            status=str(status),
            open_spans=self.tracer.open_span_names(),
            total_spans=len(self.tracer.finished),
        )
        self.events.close()
        if self.metrics_path is not None:
            self._dump_metrics()

    def _dump_metrics(self) -> None:
        import json

        from ..runtime.atomic import atomic_write_text
        from .exporters import prometheus_text

        snapshot = self.metrics.snapshot()
        if self.metrics_path.endswith((".prom", ".txt")):
            text = prometheus_text(snapshot)
        else:
            text = json.dumps(snapshot, indent=1, sort_keys=True) + "\n"
        atomic_write_text(self.metrics_path, text)


class _DisabledTelemetry:
    """Shared no-op bundle — the default `telemetry` value everywhere."""

    enabled = False
    tracer = NULL_TRACER
    metrics = NULL_METRICS
    events = None
    metrics_path = None

    def adopt_spans(self, span_dicts) -> None:
        pass

    def span_context(self) -> None:
        return None

    def event(self, kind: str, **payload) -> None:
        pass

    def progress(
        self, phase: str, done: float, total: float, force: bool = False,
        **extra,
    ) -> None:
        pass

    def snapshot_metrics(self, phase: str) -> dict:
        return {}

    def summary(self) -> None:
        return None

    def close(self, status: str = "ok") -> None:
        pass


DISABLED = _DisabledTelemetry()


def resolve_telemetry(
    telemetry,
    trace_path: str | None = None,
    metrics_path: str | None = None,
):
    """The telemetry a solve should use: an explicit bundle wins, else
    one is built when the config asks for output files, else
    :data:`DISABLED`."""
    if telemetry is not None:
        return telemetry
    if trace_path or metrics_path:
        return SolveTelemetry(trace_path=trace_path, metrics_path=metrics_path)
    return DISABLED
