"""Benchmark harness: workloads, runners and table/figure generators
behind the ``benchmarks/`` pytest suite and ``python -m
repro.bench.report``."""

from .journal import RunJournal
from .micro import run_micro
from .runner import (
    ExperimentRow,
    bench_cell_deadline,
    bench_config,
    bench_dataset,
    bench_scale,
    run_emp,
    run_maxp,
    use_journal,
)
from .plotting import bar_chart, figure_to_chart
from .tables import format_p_table, table3_rows, table4_rows
from .workloads import combo_constraints, format_range

__all__ = [
    "ExperimentRow",
    "RunJournal",
    "bar_chart",
    "bench_cell_deadline",
    "bench_config",
    "bench_dataset",
    "bench_scale",
    "combo_constraints",
    "figure_to_chart",
    "format_p_table",
    "format_range",
    "run_emp",
    "run_maxp",
    "run_micro",
    "table3_rows",
    "table4_rows",
    "use_journal",
]
