"""Benchmark workloads — the constraint grids of Section VII.

The paper names constraint combinations by their initial letters: *M*
(MIN only), *MS* (MIN + SUM), *MA* (MIN + AVG), *MAS* (all three), *S*
(SUM only), *AS* (AVG + SUM), plus *MP* for the classic max-p baseline
(equivalent to *S* with an open upper bound, solved by the competitor).
This module builds :class:`~repro.core.constraints.ConstraintSet`
objects for any combination and default range, and declares the exact
threshold grids of Tables III/IV and Figures 5–13.

Ranges are written ``(lower, upper)`` with ``None`` for an open end,
matching the paper's interval notation.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.constraints import (
    Constraint,
    ConstraintSet,
    avg_constraint,
    count_constraint,
    max_constraint,
    min_constraint,
    sum_constraint,
)
from ..data import schema
from ..exceptions import InvalidConstraintError

__all__ = [
    "Range",
    "format_range",
    "combo_constraints",
    "enriched_constraints",
    "SCALING_SUM_THRESHOLD",
    "MIN_COMBOS",
    "SUM_COMBOS",
    "AVG_COMBOS",
    "DEFAULT_MIN_RANGE",
    "DEFAULT_AVG_RANGE",
    "DEFAULT_SUM_RANGE",
    "TABLE3_OPEN_LOWER_RANGES",
    "TABLE3_OPEN_UPPER_RANGES",
    "TABLE3_LENGTH_RANGES",
    "TABLE3_MIDPOINT_RANGES",
    "TABLE4_SUM_LOWER_BOUNDS",
    "TABLE4_SUM_BOUNDED_RANGES",
    "FIG9_AVG_MIDPOINTS",
    "FIG10_AVG_HALF_LENGTHS",
    "AVG_BOTTLENECK_RANGE",
]

Range = tuple[float | None, float | None]

# Combination codes evaluated in each experiment family.
MIN_COMBOS = ("M", "MS", "MA", "MAS")
SUM_COMBOS = ("S", "MS", "AS", "MAS")
AVG_COMBOS = ("A", "MA", "AS", "MAS")

# Table II defaults.
DEFAULT_MIN_RANGE: Range = (None, 3000)
DEFAULT_AVG_RANGE: Range = (1500, 3500)
DEFAULT_SUM_RANGE: Range = (20000, None)

# Table III / Figures 5-7 threshold grids for the MIN constraint.
TABLE3_OPEN_LOWER_RANGES: tuple[Range, ...] = (
    (None, 2000),
    (None, 3500),
    (None, 5000),
)
TABLE3_OPEN_UPPER_RANGES: tuple[Range, ...] = (
    (2000, None),
    (3500, None),
    (5000, None),
)
TABLE3_LENGTH_RANGES: tuple[Range, ...] = (
    (2500, 3500),
    (2000, 4000),
    (1500, 4500),
    (1000, 5000),
)
TABLE3_MIDPOINT_RANGES: tuple[Range, ...] = (
    (1000, 2000),
    (2000, 3000),
    (3000, 4000),
    (4000, 5000),
)

# Table IV / Figures 12-13 threshold grids for the SUM constraint.
TABLE4_SUM_LOWER_BOUNDS: tuple[float, ...] = (
    1000,
    10000,
    20000,
    30000,
    40000,
)
TABLE4_SUM_BOUNDED_RANGES: tuple[Range, ...] = (
    (15000, 25000),
    (10000, 30000),
    (5000, 35000),
)

# Figures 9-11 grids for the AVG constraint.
FIG9_AVG_MIDPOINTS: tuple[float, ...] = (
    1000,
    1500,
    2000,
    2500,
    3000,
    3500,
    4000,
    4500,
)
FIG9_AVG_HALF_LENGTH = 1000.0
FIG10_AVG_MIDPOINT = 3000.0
FIG10_AVG_HALF_LENGTHS: tuple[float, ...] = (500, 1000, 1500, 2000)

AVG_BOTTLENECK_RANGE: Range = (2000, 4000)
"""The ``3k ± 1k`` AVG range the paper identifies as the performance
bottleneck (Figures 9-11, 16)."""


def _bound(value: float | None, default: float) -> float:
    return default if value is None else float(value)


def format_range(value_range: Range) -> str:
    """Pretty interval string, e.g. ``(-inf,2k]`` or ``[1k,5k]``."""

    def fmt(value: float | None) -> str:
        if value is None:
            return "inf"
        if abs(value) >= 1000 and value % 500 == 0:
            return f"{value / 1000:g}k"
        return f"{value:g}"

    lower, upper = value_range
    left = "(-inf" if lower is None else f"[{fmt(lower)}"
    right = "inf)" if upper is None else f"{fmt(upper)}]"
    return f"{left},{right}"


def combo_constraints(
    combo: str,
    min_range: Range = DEFAULT_MIN_RANGE,
    avg_range: Range = DEFAULT_AVG_RANGE,
    sum_range: Range = DEFAULT_SUM_RANGE,
) -> ConstraintSet:
    """Build the constraint set for a combination code.

    *combo* is any subset of the letters ``M`` (MIN on POP16UP), ``A``
    (AVG on EMPLOYED) and ``S`` (SUM on TOTALPOP), e.g. ``"MAS"``. The
    per-type ranges default to Table II.
    """
    combo = combo.upper()
    unknown = set(combo) - set("MAS")
    if unknown or not combo:
        raise InvalidConstraintError(
            f"combination {combo!r} must be a non-empty subset of 'MAS'"
        )
    constraints: list[Constraint] = []
    if "M" in combo:
        constraints.append(
            min_constraint(
                schema.POP16UP,
                _bound(min_range[0], -math.inf),
                _bound(min_range[1], math.inf),
            )
        )
    if "A" in combo:
        constraints.append(
            avg_constraint(
                schema.EMPLOYED,
                _bound(avg_range[0], -math.inf),
                _bound(avg_range[1], math.inf),
            )
        )
    if "S" in combo:
        constraints.append(
            sum_constraint(
                schema.TOTALPOP,
                _bound(sum_range[0], -math.inf),
                _bound(sum_range[1], math.inf),
            )
        )
    return ConstraintSet(constraints)


SCALING_SUM_THRESHOLD = 800_000.0
"""SUM(TOTALPOP) lower bound of the scaling benchmark workload.

Roughly 250–300 areas per region on the synthetic census marginals.
This is deliberately the *large-region* regime the array backend
targets: every candidate move prices the full donor boundary against
eight constraints, so per-derive work grows with region size while
per-move bookkeeping does not. Empirically the python backend's
per-candidate cost grows faster with region size than the vector
path's (400k → 2.5x, 500k → 2.7x, 650k → 3.0x, 800k → 3.5x tabu-phase
ratio on the 10k dataset), so the threshold sits where the benchmark
exercises the separation without letting the shared Hopcroft–Tarjan
rebuild dominate either backend. The threshold is fixed across
dataset sizes, so region granularity — and with it the per-move cost
profile — stays comparable from 2k to 25k."""


def enriched_constraints(
    sum_threshold: float = SCALING_SUM_THRESHOLD,
) -> ConstraintSet:
    """The scaling benchmark's *enriched* workload: eight constraints
    spanning all five aggregate families (MIN / MAX / AVG / SUM /
    COUNT) and all four census attributes.

    This is the paper's headline setting — max-p enriched with every
    side-constraint type the formulation admits — pushed to the
    constraint count where per-candidate feasibility checking
    dominates the Tabu phase. The SUM(TOTALPOP) lower bound is the
    binding constraint and sets the region granularity; the companion
    bounds are loose enough to stay feasible on the synthetic
    marginals yet still have to be evaluated for every candidate
    move.
    """
    threshold = float(sum_threshold)
    return ConstraintSet(
        [
            min_constraint(schema.POP16UP, -math.inf, 3000),
            avg_constraint(schema.EMPLOYED, 1500, 3500),
            sum_constraint(schema.TOTALPOP, threshold, math.inf),
            avg_constraint(schema.TOTALPOP, 2500, 6500),
            sum_constraint(schema.EMPLOYED, 0.25 * threshold, math.inf),
            max_constraint(schema.HOUSEHOLDS, 1000, math.inf),
            avg_constraint(schema.HOUSEHOLDS, 500, 5000),
            count_constraint(10, 2000),
        ]
    )
