"""Benchmark workloads — the constraint grids of Section VII.

The paper names constraint combinations by their initial letters: *M*
(MIN only), *MS* (MIN + SUM), *MA* (MIN + AVG), *MAS* (all three), *S*
(SUM only), *AS* (AVG + SUM), plus *MP* for the classic max-p baseline
(equivalent to *S* with an open upper bound, solved by the competitor).
This module builds :class:`~repro.core.constraints.ConstraintSet`
objects for any combination and default range, and declares the exact
threshold grids of Tables III/IV and Figures 5–13.

Ranges are written ``(lower, upper)`` with ``None`` for an open end,
matching the paper's interval notation.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.constraints import (
    Constraint,
    ConstraintSet,
    avg_constraint,
    min_constraint,
    sum_constraint,
)
from ..data import schema
from ..exceptions import InvalidConstraintError

__all__ = [
    "Range",
    "format_range",
    "combo_constraints",
    "MIN_COMBOS",
    "SUM_COMBOS",
    "AVG_COMBOS",
    "DEFAULT_MIN_RANGE",
    "DEFAULT_AVG_RANGE",
    "DEFAULT_SUM_RANGE",
    "TABLE3_OPEN_LOWER_RANGES",
    "TABLE3_OPEN_UPPER_RANGES",
    "TABLE3_LENGTH_RANGES",
    "TABLE3_MIDPOINT_RANGES",
    "TABLE4_SUM_LOWER_BOUNDS",
    "TABLE4_SUM_BOUNDED_RANGES",
    "FIG9_AVG_MIDPOINTS",
    "FIG10_AVG_HALF_LENGTHS",
    "AVG_BOTTLENECK_RANGE",
]

Range = tuple[float | None, float | None]

# Combination codes evaluated in each experiment family.
MIN_COMBOS = ("M", "MS", "MA", "MAS")
SUM_COMBOS = ("S", "MS", "AS", "MAS")
AVG_COMBOS = ("A", "MA", "AS", "MAS")

# Table II defaults.
DEFAULT_MIN_RANGE: Range = (None, 3000)
DEFAULT_AVG_RANGE: Range = (1500, 3500)
DEFAULT_SUM_RANGE: Range = (20000, None)

# Table III / Figures 5-7 threshold grids for the MIN constraint.
TABLE3_OPEN_LOWER_RANGES: tuple[Range, ...] = (
    (None, 2000),
    (None, 3500),
    (None, 5000),
)
TABLE3_OPEN_UPPER_RANGES: tuple[Range, ...] = (
    (2000, None),
    (3500, None),
    (5000, None),
)
TABLE3_LENGTH_RANGES: tuple[Range, ...] = (
    (2500, 3500),
    (2000, 4000),
    (1500, 4500),
    (1000, 5000),
)
TABLE3_MIDPOINT_RANGES: tuple[Range, ...] = (
    (1000, 2000),
    (2000, 3000),
    (3000, 4000),
    (4000, 5000),
)

# Table IV / Figures 12-13 threshold grids for the SUM constraint.
TABLE4_SUM_LOWER_BOUNDS: tuple[float, ...] = (
    1000,
    10000,
    20000,
    30000,
    40000,
)
TABLE4_SUM_BOUNDED_RANGES: tuple[Range, ...] = (
    (15000, 25000),
    (10000, 30000),
    (5000, 35000),
)

# Figures 9-11 grids for the AVG constraint.
FIG9_AVG_MIDPOINTS: tuple[float, ...] = (
    1000,
    1500,
    2000,
    2500,
    3000,
    3500,
    4000,
    4500,
)
FIG9_AVG_HALF_LENGTH = 1000.0
FIG10_AVG_MIDPOINT = 3000.0
FIG10_AVG_HALF_LENGTHS: tuple[float, ...] = (500, 1000, 1500, 2000)

AVG_BOTTLENECK_RANGE: Range = (2000, 4000)
"""The ``3k ± 1k`` AVG range the paper identifies as the performance
bottleneck (Figures 9-11, 16)."""


def _bound(value: float | None, default: float) -> float:
    return default if value is None else float(value)


def format_range(value_range: Range) -> str:
    """Pretty interval string, e.g. ``(-inf,2k]`` or ``[1k,5k]``."""

    def fmt(value: float | None) -> str:
        if value is None:
            return "inf"
        if abs(value) >= 1000 and value % 500 == 0:
            return f"{value / 1000:g}k"
        return f"{value:g}"

    lower, upper = value_range
    left = "(-inf" if lower is None else f"[{fmt(lower)}"
    right = "inf)" if upper is None else f"{fmt(upper)}]"
    return f"{left},{right}"


def combo_constraints(
    combo: str,
    min_range: Range = DEFAULT_MIN_RANGE,
    avg_range: Range = DEFAULT_AVG_RANGE,
    sum_range: Range = DEFAULT_SUM_RANGE,
) -> ConstraintSet:
    """Build the constraint set for a combination code.

    *combo* is any subset of the letters ``M`` (MIN on POP16UP), ``A``
    (AVG on EMPLOYED) and ``S`` (SUM on TOTALPOP), e.g. ``"MAS"``. The
    per-type ranges default to Table II.
    """
    combo = combo.upper()
    unknown = set(combo) - set("MAS")
    if unknown or not combo:
        raise InvalidConstraintError(
            f"combination {combo!r} must be a non-empty subset of 'MAS'"
        )
    constraints: list[Constraint] = []
    if "M" in combo:
        constraints.append(
            min_constraint(
                schema.POP16UP,
                _bound(min_range[0], -math.inf),
                _bound(min_range[1], math.inf),
            )
        )
    if "A" in combo:
        constraints.append(
            avg_constraint(
                schema.EMPLOYED,
                _bound(avg_range[0], -math.inf),
                _bound(avg_range[1], math.inf),
            )
        )
    if "S" in combo:
        constraints.append(
            sum_constraint(
                schema.TOTALPOP,
                _bound(sum_range[0], -math.inf),
                _bound(sum_range[1], math.inf),
            )
        )
    return ConstraintSet(constraints)
