"""Extension workloads: MAX and COUNT constraints.

Section VII presents "results for one aggregate function in each
constraint type" — MIN for extrema and SUM for counting — citing
"similarity of results on aggregates of the same type". These
workloads make that claim checkable: MAX mirrors MIN's dual role
(filter + seed) with the bound roles swapped, and COUNT mirrors SUM
with unit weights, so the dual queries below must reproduce the same
p-trends the paper shows for MIN/SUM.
"""

from __future__ import annotations

from typing import Sequence

from ..core.area import AreaCollection
from ..core.constraints import (
    Constraint,
    ConstraintSet,
    count_constraint,
    max_constraint,
)
from ..data import schema
from .runner import ExperimentRow, bench_config
from .workloads import Range, format_range

__all__ = [
    "max_mirror_range",
    "max_constraints",
    "count_constraints",
    "run_max_row",
    "run_count_row",
    "MAX_MIRROR_RANGES",
    "COUNT_LOWER_BOUNDS",
]


def max_mirror_range(
    min_range: Range, pivot: float = 6700.0
) -> Range:
    """Mirror a MIN threshold range into the dual MAX range.

    MIN filters areas *below* l and seeds areas inside [l, u]; MAX
    filters areas *above* u and seeds inside [l, u]. Reflecting the
    range around a pivot inside the attribute's support swaps those
    roles while keeping comparable seed/filter fractions. The default
    pivot is 2 × the median POP16UP (≈ 3350), so ``(-inf, u]`` maps to
    ``[pivot - u, inf)``.
    """
    lower, upper = min_range
    new_lower = None if upper is None else pivot - upper
    new_upper = None if lower is None else pivot - lower
    return (new_lower, new_upper)


# Duals of the paper's three open-lower MIN ranges.
MAX_MIRROR_RANGES: tuple[Range, ...] = (
    max_mirror_range((None, 2000)),
    max_mirror_range((None, 3500)),
    max_mirror_range((None, 5000)),
)

# COUNT duals of Table IV's SUM lower bounds: SUM(TOTALPOP) >= L with
# mean tract population ~4300 corresponds to COUNT >= L / 4300.
COUNT_LOWER_BOUNDS: tuple[int, ...] = (1, 2, 5, 7, 9)


def max_constraints(max_range: Range) -> ConstraintSet:
    """A single MAX constraint on POP16UP with the given range."""
    lower, upper = max_range
    return ConstraintSet(
        [
            max_constraint(
                schema.POP16UP,
                float("-inf") if lower is None else lower,
                float("inf") if upper is None else upper,
            )
        ]
    )


def count_constraints(lower: float, upper: float | None = None) -> ConstraintSet:
    """A single COUNT constraint on the number of areas per region."""
    return ConstraintSet(
        [count_constraint(lower, float("inf") if upper is None else upper)]
    )


def _run(
    collection: AreaCollection,
    constraints: ConstraintSet,
    combo: str,
    setting: str,
    dataset: str,
    enable_tabu: bool,
    rng_seed: int,
) -> ExperimentRow:
    from ..fact.solver import FaCT

    config = bench_config(
        len(collection), rng_seed=rng_seed, enable_tabu=enable_tabu
    )
    solution = FaCT(config).solve(collection, constraints)
    return ExperimentRow(
        solver="FaCT",
        combo=combo,
        dataset=dataset,
        n_areas=len(collection),
        setting=setting,
        p=solution.p,
        n_unassigned=solution.n_unassigned,
        construction_seconds=solution.construction_seconds,
        tabu_seconds=solution.tabu_seconds,
        improvement=solution.improvement,
        heterogeneity=solution.heterogeneity,
    )


def run_max_row(
    collection: AreaCollection,
    max_range: Range,
    dataset: str = "?",
    enable_tabu: bool = False,
    rng_seed: int = 7,
) -> ExperimentRow:
    """Run a single-MAX query (the dual of the paper's M rows)."""
    return _run(
        collection,
        max_constraints(max_range),
        "X",
        f"MAX{format_range(max_range)}",
        dataset,
        enable_tabu,
        rng_seed,
    )


def run_count_row(
    collection: AreaCollection,
    lower: float,
    upper: float | None = None,
    dataset: str = "?",
    enable_tabu: bool = False,
    rng_seed: int = 7,
) -> ExperimentRow:
    """Run a single-COUNT query (the dual of the paper's S rows)."""
    return _run(
        collection,
        count_constraints(lower, upper),
        "C",
        f"COUNT{format_range((lower, upper))}",
        dataset,
        enable_tabu,
        rng_seed,
    )
