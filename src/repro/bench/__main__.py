"""``python -m repro.bench`` — benchmark subcommand dispatch.

Subcommands:

- ``micro``  — hot-path cache microbenchmark (:mod:`repro.bench.micro`);
  verifies cached vs uncached solver output is bit-identical and
  reports the speedup. ``micro --objective`` checks the incremental
  objective engine and the Tabu portfolio's worker-count invariance;
  ``micro --profile`` prints a cProfile breakdown of one solve.
- ``report`` — full paper-table/figure report run
  (:mod:`repro.bench.report`, also runnable directly as
  ``python -m repro.bench.report``).
"""

from __future__ import annotations

import sys

from . import micro, report

_USAGE = """usage: python -m repro.bench <command> [options]

commands:
  micro    hot-path cache microbenchmark (cached vs uncached);
           --objective for the incremental-objective/portfolio checks,
           --profile for a cProfile breakdown
  report   generate EXPERIMENTS.md tables and figures

run `python -m repro.bench <command> --help` for command options."""


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "micro":
        return micro.main(rest)
    if command == "report":
        return report.main(rest)
    print(f"unknown command: {command!r}\n\n{_USAGE}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
