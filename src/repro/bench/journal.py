"""Resumable on-disk journal for benchmark runs.

A full report run (``python -m repro.bench.report``) is hours of
solver time at scale 1.0; a crash near the end used to throw all of it
away. The journal makes runs resumable: every measured
:class:`~repro.bench.runner.ExperimentRow` is appended to a JSONL file
as soon as it exists, and a later run with the same journal replays
completed cells instead of re-solving them.

Only clean (``status == "ok"``) rows are replayed — error rows and
interrupted cells are retried, so a resume naturally re-attempts
exactly the cells that went wrong.

The journal is *ambient*: :func:`repro.bench.runner.use_journal`
installs one for the duration of a report run, and ``run_emp`` /
``run_maxp`` consult it transparently. Threading a journal argument
through every table/figure generator would touch a dozen call sites
for what is purely an operational concern.

The file format is deliberately dumb — one JSON object per line, the
cell key embedded in the row. Each record atomically rewrites the
whole file (:func:`repro.runtime.atomic.atomic_write_text`: sibling
temp file + ``os.replace``), so a SIGALRM watchdog, a per-cell
deadline kill or plain OOM death mid-record can never truncate the
journal a later ``--journal`` resume depends on — a reader always
sees a complete previous or complete new snapshot. Torn lines from
journals written by older (append-mode) versions are still detected
and dropped on load.

Records carry a ``schema_version``
(:data:`repro.bench.runner.BENCH_SCHEMA_VERSION`, currently 2 — the
version that added the ``telemetry`` summary block). The reader
accepts older records: missing version-2 fields fall back to their
defaults (``schema_version=1``, empty telemetry), so journals written
before the telemetry PR keep replaying unchanged.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING

from ..runtime.atomic import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runner import ExperimentRow

__all__ = ["RunJournal", "journal_key"]

# The fields that uniquely identify one experiment cell. A row is only
# replayed for a run that matches all of them. ``enable_tabu`` is part
# of the key because the tables measure p without Tabu while the
# timing figures re-run the same combo/setting cells with it enabled.
_KEY_FIELDS = (
    "solver",
    "combo",
    "dataset",
    "setting",
    "n_areas",
    "rng_seed",
    "enable_tabu",
)


def journal_key(
    solver: str,
    combo: str,
    dataset: str,
    setting: str,
    n_areas: int,
    rng_seed: int,
    enable_tabu: bool,
) -> tuple:
    """The identity of one experiment cell."""
    return (
        solver,
        combo,
        dataset,
        setting,
        int(n_areas),
        int(rng_seed),
        bool(enable_tabu),
    )


class RunJournal:
    """Append-only JSONL journal of completed benchmark cells.

    Parameters
    ----------
    path:
        The journal file. Created on first :meth:`record`; an existing
        file is loaded so completed cells replay.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._rows: dict[tuple, dict] = {}
        self.replayed = 0
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line from a crashed run
                if not isinstance(entry, dict):
                    continue
                try:
                    key = journal_key(*(entry[f] for f in _KEY_FIELDS))
                except (KeyError, TypeError, ValueError):
                    continue
                self._rows[key] = entry

    def __len__(self) -> int:
        return len(self._rows)

    def lookup(self, key: tuple) -> "ExperimentRow | None":
        """The replayable row for *key*, or ``None``.

        Only ``status == "ok"`` rows replay; error/interrupted cells
        are left for the caller to retry.
        """
        entry = self._rows.get(key)
        if entry is None or entry.get("status") != "ok":
            return None
        from .runner import ExperimentRow

        fields = {
            name: entry[name]
            for name in ExperimentRow.__dataclass_fields__
            if name in entry
        }
        # Version-1 records predate these fields; mark them as such
        # instead of letting the current-version defaults claim they
        # carry (empty) telemetry from a v2 run.
        fields.setdefault("schema_version", 1)
        fields.setdefault("telemetry", {})
        try:
            row = ExperimentRow(**fields)
        except TypeError:
            return None  # journal written by an incompatible version
        self.replayed += 1
        return row

    def record(self, row: "ExperimentRow") -> None:
        """Record one measured row, atomically rewriting the journal
        so a kill at any instant leaves a complete, parseable file."""
        entry = row.as_dict()
        self._rows[journal_key(*(entry[f] for f in _KEY_FIELDS))] = entry
        lines = [
            json.dumps(stored, sort_keys=True)
            for stored in self._rows.values()
        ]
        atomic_write_text(self.path, "\n".join(lines) + "\n")

    def close(self) -> None:
        """Kept for API compatibility — atomic rewrites hold no open
        handle, so there is nothing to close."""

    def delete(self) -> None:
        """Remove the journal file — called after a fully successful
        run, when there is nothing left to resume."""
        if os.path.exists(self.path):
            os.remove(self.path)

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
