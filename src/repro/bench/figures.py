"""Figure generators — the data series behind Figures 5-16.

Every function regenerates the series of one paper figure and returns
a :class:`FigureData`: named series of ``(x_label, value)`` points
plus metadata. The pytest benchmarks sample individual cells; the
report writer (:mod:`repro.bench.report`) runs the full grids and
renders them as text tables in EXPERIMENTS.md.

Runtime figures split construction and Tabu time, as the paper's
stacked/grouped bars do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.area import AreaCollection
from ..data import schema
from ..data.datasets import load_dataset
from .runner import ExperimentRow, run_emp, run_maxp
from .workloads import (
    AVG_BOTTLENECK_RANGE,
    AVG_COMBOS,
    FIG9_AVG_HALF_LENGTH,
    FIG9_AVG_MIDPOINTS,
    FIG10_AVG_HALF_LENGTHS,
    FIG10_AVG_MIDPOINT,
    MIN_COMBOS,
    SUM_COMBOS,
    TABLE3_LENGTH_RANGES,
    TABLE3_MIDPOINT_RANGES,
    TABLE3_OPEN_LOWER_RANGES,
    TABLE3_OPEN_UPPER_RANGES,
    TABLE4_SUM_BOUNDED_RANGES,
    TABLE4_SUM_LOWER_BOUNDS,
    format_range,
)

__all__ = [
    "FigureData",
    "fig5_min_open_lower",
    "fig6_min_open_upper",
    "fig7a_min_lengths",
    "fig7b_min_midpoints",
    "fig8_avg_distribution",
    "fig9_avg_midpoints",
    "fig10_11_avg_lengths",
    "fig12_sum_open_upper",
    "fig13_sum_bounded",
    "scalability",
    "SCALABILITY_SMALL",
    "SCALABILITY_LARGE",
]

SCALABILITY_SMALL = ("1k", "2k", "4k", "8k")
SCALABILITY_LARGE = ("10k", "20k", "30k", "40k", "50k")


@dataclass
class FigureData:
    """Series data for one figure.

    ``series`` maps a series name (e.g. ``"MAS construction"``) to a
    list of ``(x_label, value)`` points; ``rows`` keeps the raw
    measurements for the report writer.
    """

    figure: str
    title: str
    x_label: str
    y_label: str
    series: dict[str, list[tuple[str, float]]] = field(default_factory=dict)
    rows: list[ExperimentRow] = field(default_factory=list)

    def add_point(self, series: str, x: str, value: float) -> None:
        """Append one point to a named series."""
        self.series.setdefault(series, []).append((x, float(value)))

    def format(self) -> str:
        """Render the figure as an x-by-series text table."""
        x_values: list[str] = []
        for points in self.series.values():
            for x, _ in points:
                if x not in x_values:
                    x_values.append(x)
        names = list(self.series)
        lookup = {
            (name, x): value
            for name, points in self.series.items()
            for x, value in points
        }
        header = [self.x_label] + names
        table_rows = []
        for x in x_values:
            table_rows.append(
                [x]
                + [
                    f"{lookup[(name, x)]:.4g}" if (name, x) in lookup else "N/A"
                    for name in names
                ]
            )
        widths = [
            max(len(header[i]), max((len(r[i]) for r in table_rows), default=0))
            for i in range(len(header))
        ]
        lines = [
            f"{self.figure}: {self.title} [{self.y_label}]",
            " | ".join(h.rjust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in table_rows:
            lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)


def _runtime_sweep(
    figure: str,
    title: str,
    collection: AreaCollection,
    ranges,
    range_kind: str,
    combos: Sequence[str],
    dataset: str,
    rng_seed: int = 7,
) -> FigureData:
    """Shared engine for the MIN/AVG/SUM runtime figures: for every
    threshold range run every combination with Tabu enabled and record
    construction and Tabu seconds."""
    data = FigureData(
        figure=figure,
        title=title,
        x_label="range",
        y_label="seconds",
    )
    for value_range in ranges:
        label = format_range(value_range)
        for combo in combos:
            row = run_emp(
                collection,
                combo,
                dataset=dataset,
                enable_tabu=True,
                rng_seed=rng_seed,
                **{range_kind: value_range},
            )
            data.rows.append(row)
            data.add_point(f"{combo} construction", label, row.construction_seconds)
            data.add_point(f"{combo} tabu", label, row.tabu_seconds)
    return data


def fig5_min_open_lower(
    collection: AreaCollection, dataset: str = "2k", rng_seed: int = 7
) -> FigureData:
    """Figure 5 — runtime for MIN with ``l = -inf`` (u varies)."""
    return _runtime_sweep(
        "Fig 5",
        "Runtime for MIN with l=-inf",
        collection,
        TABLE3_OPEN_LOWER_RANGES,
        "min_range",
        MIN_COMBOS,
        dataset,
        rng_seed,
    )


def fig6_min_open_upper(
    collection: AreaCollection, dataset: str = "2k", rng_seed: int = 7
) -> FigureData:
    """Figure 6 — runtime for MIN with ``u = inf`` (l varies)."""
    return _runtime_sweep(
        "Fig 6",
        "Runtime for MIN with u=inf",
        collection,
        TABLE3_OPEN_UPPER_RANGES,
        "min_range",
        MIN_COMBOS,
        dataset,
        rng_seed,
    )


def fig7a_min_lengths(
    collection: AreaCollection, dataset: str = "2k", rng_seed: int = 7
) -> FigureData:
    """Figure 7a — runtime for bounded MIN ranges of growing length."""
    return _runtime_sweep(
        "Fig 7a",
        "Runtime for MIN, varying range lengths (midpoint 3k)",
        collection,
        TABLE3_LENGTH_RANGES,
        "min_range",
        MIN_COMBOS,
        dataset,
        rng_seed,
    )


def fig7b_min_midpoints(
    collection: AreaCollection, dataset: str = "2k", rng_seed: int = 7
) -> FigureData:
    """Figure 7b — runtime for unit-length MIN ranges with shifting
    midpoints."""
    return _runtime_sweep(
        "Fig 7b",
        "Runtime for MIN, varying range midpoints (length 1k)",
        collection,
        TABLE3_MIDPOINT_RANGES,
        "min_range",
        MIN_COMBOS,
        dataset,
        rng_seed,
    )


def fig8_avg_distribution(
    collection: AreaCollection, dataset: str = "2k", n_bins: int = 12
) -> FigureData:
    """Figure 8 — the distribution of the AVG attribute (EMPLOYED).

    Returns a histogram (bin label -> area count) exhibiting the
    positively-skewed shape the paper reports: most values below 4k,
    outliers up to 6149.
    """
    values = np.array(
        list(collection.attribute_values(schema.EMPLOYED).values())
    )
    counts, edges = np.histogram(values, bins=n_bins)
    data = FigureData(
        figure="Fig 8",
        title=f"Distribution of {schema.EMPLOYED} on the {dataset} dataset",
        x_label="EMPLOYED bin",
        y_label="number of areas",
    )
    for count, left, right in zip(counts, edges[:-1], edges[1:]):
        data.add_point("areas", f"[{left:.0f},{right:.0f})", float(count))
    return data


def fig9_avg_midpoints(
    collection: AreaCollection, dataset: str = "2k", rng_seed: int = 7
) -> FigureData:
    """Figure 9 — AVG-only constraint, fixed length ±1k, midpoint
    sweeping 1k..4.5k: p and unassigned count (9a) and runtime (9b)."""
    data = FigureData(
        figure="Fig 9",
        title="AVG constraint, fixed range length 2k, varying midpoints",
        x_label="midpoint",
        y_label="p / unassigned / seconds",
    )
    for midpoint in FIG9_AVG_MIDPOINTS:
        avg_range = (
            midpoint - FIG9_AVG_HALF_LENGTH,
            midpoint + FIG9_AVG_HALF_LENGTH,
        )
        row = run_emp(
            collection,
            "A",
            avg_range=avg_range,
            dataset=dataset,
            enable_tabu=True,
            rng_seed=rng_seed,
        )
        data.rows.append(row)
        label = f"{midpoint / 1000:g}k"
        data.add_point("p", label, row.p)
        data.add_point("unassigned", label, row.n_unassigned)
        data.add_point("construction_s", label, row.construction_seconds)
        data.add_point("tabu_s", label, row.tabu_seconds)
        data.add_point("improvement", label, row.improvement)
    return data


def fig10_11_avg_lengths(
    collection: AreaCollection, dataset: str = "2k", rng_seed: int = 7
) -> FigureData:
    """Figures 10 & 11 — AVG midpoint fixed at 3k (the hard case),
    half-length sweeping 0.5k..2k, for combos A/MA/AS/MAS: p and
    unassigned (Fig 10) and runtime (Fig 11)."""
    data = FigureData(
        figure="Fig 10/11",
        title="AVG constraint, midpoint 3k, varying range lengths",
        x_label="range",
        y_label="p / unassigned / seconds",
    )
    for half in FIG10_AVG_HALF_LENGTHS:
        avg_range = (FIG10_AVG_MIDPOINT - half, FIG10_AVG_MIDPOINT + half)
        label = format_range(avg_range)
        for combo in AVG_COMBOS:
            row = run_emp(
                collection,
                combo,
                avg_range=avg_range,
                dataset=dataset,
                enable_tabu=True,
                rng_seed=rng_seed,
            )
            data.rows.append(row)
            data.add_point(f"{combo} p", label, row.p)
            data.add_point(f"{combo} unassigned", label, row.n_unassigned)
            data.add_point(
                f"{combo} construction_s", label, row.construction_seconds
            )
            data.add_point(f"{combo} tabu_s", label, row.tabu_seconds)
    return data


def fig12_sum_open_upper(
    collection: AreaCollection, dataset: str = "2k", rng_seed: int = 7
) -> FigureData:
    """Figure 12 — runtime for SUM with ``u = inf`` vs the MP
    baseline, lower bound sweeping 1k..40k."""
    data = FigureData(
        figure="Fig 12",
        title="Runtime for SUM with u=inf (vs MP baseline)",
        x_label="lower bound",
        y_label="seconds",
    )
    for lower in TABLE4_SUM_LOWER_BOUNDS:
        label = f"{lower / 1000:g}k"
        baseline = run_maxp(
            collection,
            lower,
            dataset=dataset,
            enable_tabu=True,
            rng_seed=rng_seed,
        )
        data.rows.append(baseline)
        data.add_point("MP construction", label, baseline.construction_seconds)
        data.add_point("MP tabu", label, baseline.tabu_seconds)
        for combo in SUM_COMBOS:
            row = run_emp(
                collection,
                combo,
                sum_range=(lower, None),
                dataset=dataset,
                enable_tabu=True,
                rng_seed=rng_seed,
            )
            data.rows.append(row)
            data.add_point(
                f"{combo} construction", label, row.construction_seconds
            )
            data.add_point(f"{combo} tabu", label, row.tabu_seconds)
    return data


def fig13_sum_bounded(
    collection: AreaCollection, dataset: str = "2k", rng_seed: int = 7
) -> FigureData:
    """Figure 13 — runtime for bounded SUM ranges of growing length
    around midpoint 20k."""
    return _runtime_sweep(
        "Fig 13",
        "Runtime for SUM with bounded ranges (midpoint 20k)",
        collection,
        TABLE4_SUM_BOUNDED_RANGES,
        "sum_range",
        SUM_COMBOS,
        dataset,
        rng_seed,
    )


def scalability(
    datasets: Sequence[str],
    combos: Sequence[str] = MIN_COMBOS,
    scale: float = 1.0,
    avg_range=None,
    figure: str = "Fig 14/15",
    rng_seed: int = 7,
) -> FigureData:
    """Figures 14-16 — runtime across dataset sizes.

    With ``avg_range=None`` the Table II defaults apply (Figures
    14/15); pass ``AVG_BOTTLENECK_RANGE`` (3k±1k) for Figure 16's
    bottleneck study.
    """
    data = FigureData(
        figure=figure,
        title=(
            "Scalability with default constraints"
            if avg_range is None
            else f"Scalability with AVG {format_range(avg_range)}"
        ),
        x_label="dataset",
        y_label="seconds",
    )
    for name in datasets:
        collection = load_dataset(name, scale=scale)
        for combo in combos:
            kwargs = {"avg_range": avg_range} if avg_range is not None else {}
            row = run_emp(
                collection,
                combo,
                dataset=name,
                enable_tabu=True,
                rng_seed=rng_seed,
                **kwargs,
            )
            data.rows.append(row)
            data.add_point(f"{combo} construction", name, row.construction_seconds)
            data.add_point(f"{combo} tabu", name, row.tabu_seconds)
            data.add_point(f"{combo} p", name, row.p)
    return data
