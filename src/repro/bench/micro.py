"""Hot-path microbenchmark — cached vs uncached reference path.

The incremental contiguity oracle and the frontier/adjacency indexes
(PR "hot-path caches") must be *pure* accelerations: with caches
disabled the solver recomputes everything from scratch, and both modes
must produce bit-identical partitions for a fixed seed. This module
measures the speedup and proves the identity in one run:

    python -m repro.bench micro --output BENCH_hotpaths.json

It solves the same dataset twice — once with hot-path caches enabled
(the default) and once with them disabled via
:func:`repro.core.perf.set_hotpath_caches` — then

- **fails (exit code 2)** unless labels, ``p``, unassigned count and
  heterogeneity match exactly between the two runs;
- reports the wall-clock speedup and the reduction in full graph
  traversals (Hopcroft–Tarjan / BFS passes) the oracle achieved;
- times the three hot-path queries in isolation (micro-ops):
  ``remains_contiguous_without``, ``unassigned_neighbors`` and
  ``adjacent_regions``.

``--smoke`` shrinks the dataset so CI can assert the cached/uncached
identity in seconds; the full-scale run that produced the checked-in
``BENCH_hotpaths.json`` uses the defaults.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence

from ..core.area import AreaCollection
from ..core.constraints import ConstraintSet
from ..core.perf import set_hotpath_caches
from ..data.datasets import load_dataset
from ..fact.solver import FaCT
from ..fact.state import SolutionState
from .runner import bench_config
from .workloads import combo_constraints

__all__ = ["run_micro", "main"]

_SMOKE_SCALE = 0.08


def _solve_once(
    collection: AreaCollection,
    constraints: ConstraintSet,
    rng_seed: int,
    cached: bool,
) -> dict:
    """One full FaCT solve with the cache gate forced to *cached*."""
    config = bench_config(len(collection), rng_seed=rng_seed, enable_tabu=True)
    previous = set_hotpath_caches(cached)
    try:
        started = time.perf_counter()
        solution = FaCT(config).solve(collection, constraints)
        wall = time.perf_counter() - started
    finally:
        set_hotpath_caches(previous)
    return {
        "wall_seconds": wall,
        "labels": solution.partition.labels(),
        "p": solution.p,
        "n_unassigned": solution.n_unassigned,
        "heterogeneity": solution.heterogeneity,
        "perf": solution.perf.as_dict() if solution.perf is not None else {},
    }


def _grow_state(
    collection: AreaCollection,
    constraints: ConstraintSet,
    target_regions: int = 12,
    fill_fraction: float = 0.8,
) -> SolutionState:
    """A deterministic partially-grown state for micro-op timing.

    Regions are grown breadth-first from the lowest area ids; growth
    stops at *fill_fraction* so the unassigned frontier is non-empty
    (otherwise ``unassigned_neighbors`` would measure an empty query).
    """
    state = SolutionState(collection, constraints)
    budget = int(len(collection) * fill_fraction)
    per_region = max(2, budget // target_regions)
    while state.n_unassigned > len(collection) - budget:
        seed = min(state.unassigned)
        region = state.new_region([seed])
        while len(region) < per_region:
            frontier = state.unassigned_neighbors(region)
            if not frontier:
                break
            state.assign(frontier[0], region)
        if state.n_unassigned <= len(collection) - budget:
            break
    return state


def _time_micro_ops(
    collection: AreaCollection,
    constraints: ConstraintSet,
    cached: bool,
    repeats: int = 3,
) -> dict[str, float]:
    """Mean per-call latency (µs) of the three hot-path queries."""
    previous = set_hotpath_caches(cached)
    try:
        state = _grow_state(collection, constraints)
        regions = [state.regions[rid] for rid in sorted(state.regions)]

        def contiguity() -> int:
            calls = 0
            for region in regions:
                for area_id in sorted(region.area_ids):
                    region.remains_contiguous_without(area_id)
                    calls += 1
            return calls

        def frontier() -> int:
            calls = 0
            for region in regions:
                state.unassigned_neighbors(region)
                calls += 1
            return calls

        def adjacency() -> int:
            calls = 0
            for region in regions:
                state.adjacent_regions(region)
                calls += 1
            return calls

        timings: dict[str, float] = {}
        for name, op in (
            ("remains_contiguous_without", contiguity),
            ("unassigned_neighbors", frontier),
            ("adjacent_regions", adjacency),
        ):
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                calls = op()
                elapsed = time.perf_counter() - started
                best = min(best, elapsed / max(1, calls))
            timings[name] = best * 1e6
        return timings
    finally:
        set_hotpath_caches(previous)


def run_micro(
    dataset: str = "2k",
    scale: float = 1.0,
    rng_seed: int = 7,
    combo: str = "MAS",
    micro_ops: bool = True,
) -> dict:
    """Run the cached/uncached comparison and return the result dict.

    ``result["identical"]`` is the acceptance gate: ``False`` means the
    caches changed solver behaviour and the build must fail.
    """
    collection = load_dataset(dataset, scale=scale)
    constraints = combo_constraints(combo)

    cached = _solve_once(collection, constraints, rng_seed, cached=True)
    uncached = _solve_once(collection, constraints, rng_seed, cached=False)

    identical = (
        cached["labels"] == uncached["labels"]
        and cached["p"] == uncached["p"]
        and cached["n_unassigned"] == uncached["n_unassigned"]
        and cached["heterogeneity"] == uncached["heterogeneity"]
    )
    traversals_cached = max(1, cached["perf"].get("graph_traversals", 0))
    traversals_uncached = uncached["perf"].get("graph_traversals", 0)
    bfs_checks_cached = max(1, cached["perf"].get("full_bfs_checks", 0))
    bfs_checks_uncached = uncached["perf"].get("full_bfs_checks", 0)

    result = {
        "benchmark": "hotpaths",
        "dataset": dataset,
        "scale": scale,
        "n_areas": len(collection),
        "combo": combo,
        "rng_seed": rng_seed,
        "identical": identical,
        "p": cached["p"],
        "n_unassigned": cached["n_unassigned"],
        "heterogeneity": cached["heterogeneity"],
        "cached": {
            "wall_seconds": round(cached["wall_seconds"], 4),
            "perf": cached["perf"],
        },
        "uncached": {
            "wall_seconds": round(uncached["wall_seconds"], 4),
            "perf": uncached["perf"],
        },
        "speedup": round(
            uncached["wall_seconds"] / max(1e-9, cached["wall_seconds"]), 3
        ),
        # Contiguity checks answered by a full BFS, uncached / cached —
        # the oracle's headline: checks become O(1) lookups unless the
        # check itself triggers the lazy rebuild.
        "bfs_check_reduction": round(
            bfs_checks_uncached / bfs_checks_cached, 3
        ),
        # All induced-subgraph passes (incl. oracle rebuilds), both
        # modes — the conservative overall-work view.
        "traversal_reduction": round(
            traversals_uncached / traversals_cached, 3
        ),
    }
    if micro_ops:
        result["micro_ops_us"] = {
            "cached": {
                name: round(value, 3)
                for name, value in _time_micro_ops(
                    collection, constraints, cached=True
                ).items()
            },
            "uncached": {
                name: round(value, 3)
                for name, value in _time_micro_ops(
                    collection, constraints, cached=False
                ).items()
            },
        }
    return result


def _strip_labels(result: dict) -> dict:
    """The JSON payload: everything except the raw label maps."""
    return {key: value for key, value in result.items() if key != "labels"}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench micro",
        description=(
            "Measure the hot-path caches against the uncached reference "
            "path and verify bit-identical solver output."
        ),
    )
    parser.add_argument("--dataset", default="2k", help="registry dataset name")
    parser.add_argument(
        "--scale", type=float, default=1.0, help="dataset scale factor"
    )
    parser.add_argument("--seed", type=int, default=7, help="solver RNG seed")
    parser.add_argument(
        "--combo", default="MAS", help="constraint combination (subset of MAS)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI mode: shrink the dataset to scale {_SMOKE_SCALE} and "
        "skip micro-op timing; the cached/uncached identity check "
        "still runs in full",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON result here (default: stdout only)",
    )
    args = parser.parse_args(argv)

    scale = _SMOKE_SCALE if args.smoke else args.scale
    result = run_micro(
        dataset=args.dataset,
        scale=scale,
        rng_seed=args.seed,
        combo=args.combo,
        micro_ops=not args.smoke,
    )

    payload = json.dumps(_strip_labels(result), indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    print(payload)

    if not result["identical"]:
        print(
            "FAIL: cached and uncached runs diverged — the hot-path "
            "caches changed solver behaviour",
            file=sys.stderr,
        )
        return 2
    print(
        f"OK: identical output; speedup {result['speedup']}x, "
        f"full-BFS check reduction {result['bfs_check_reduction']}x, "
        f"graph-traversal reduction {result['traversal_reduction']}x",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
