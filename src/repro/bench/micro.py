"""Hot-path microbenchmark — cached vs uncached reference path.

The incremental contiguity oracle and the frontier/adjacency indexes
(PR "hot-path caches") must be *pure* accelerations: with caches
disabled the solver recomputes everything from scratch, and both modes
must produce bit-identical partitions for a fixed seed. This module
measures the speedup and proves the identity in one run:

    python -m repro.bench micro --output BENCH_hotpaths.json

It solves the same dataset twice — once with hot-path caches enabled
(the default) and once with them disabled via
:func:`repro.core.perf.set_hotpath_caches` — then

- **fails (exit code 2)** unless labels, ``p``, unassigned count and
  heterogeneity match exactly between the two runs;
- reports the wall-clock speedup and the reduction in full graph
  traversals (Hopcroft–Tarjan / BFS passes) the oracle achieved;
- times the three hot-path queries in isolation (micro-ops):
  ``remains_contiguous_without``, ``unassigned_neighbors`` and
  ``adjacent_regions``.

``--smoke`` shrinks the dataset so CI can assert the cached/uncached
identity in seconds; the full-scale run that produced the checked-in
``BENCH_hotpaths.json`` uses the defaults.

Two further modes share the dataset/seed options:

- ``--objective`` (:func:`run_objective`) targets the incremental
  objective engine: it verifies the cached delta path against the
  recompute-everything reference path, verifies that the Tabu
  portfolio returns bit-identical partitions at every worker count
  *and under both hot-path backends* (``numpy`` vs ``python`` — see
  :mod:`repro.core.arrays`), and reports the delta fast-path rate
  plus the tabu-phase speedup — the full-scale run produces the
  checked-in ``BENCH_objective.json``;
- ``--scaling`` (:func:`run_scaling`) sweeps the dataset registry
  (2k/10k/25k/50k by default) once per backend, diffs the two
  backends' partitions dataset by dataset (exit 2 on any divergence)
  and reports the numpy-vs-python tabu-phase speedup — the full-scale
  run produces the checked-in ``BENCH_scaling.json``. With
  ``--perf-baseline`` the run's oracle-rebuild and candidate-
  evaluation rates are additionally graded WIN / NEUTRAL /
  REGRESSION against a checked-in record (exit 3 on REGRESSION);
- ``--profile`` wraps one cached solve in :mod:`cProfile` and prints
  the top cumulative-time entries — the optimization worklist.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence

from ..core import arrays as arrays_mod
from ..core.area import AreaCollection
from ..core.constraints import ConstraintSet
from ..core.perf import set_hotpath_caches
from ..data.datasets import load_dataset
from ..fact.solver import FaCT
from ..fact.state import SolutionState
from ..obs.telemetry import SolveTelemetry
from ..runtime.atomic import atomic_write_text
from .runner import BENCH_SCHEMA_VERSION, bench_config
from .workloads import combo_constraints, enriched_constraints

__all__ = [
    "compare_perf_to_baseline",
    "read_bench_record",
    "run_micro",
    "run_objective",
    "run_scaling",
    "main",
]

_SMOKE_SCALE = 0.08

# Perf-gate verdict thresholds. Both gated metrics are lower-is-better
# *rates* (scale-invariant by construction, unlike the raw counters),
# but a smoke-scale run still shifts them — tiny regions mean tinier
# denominators — so a verdict needs BOTH a relative factor and an
# absolute gap before it leaves NEUTRAL. The gate is a tripwire for
# structural breakage (e.g. the incremental oracle silently falling
# back to full rebuilds pushes ``oracle_rebuild_share`` from ~0 to
# ~1), not a percent-level performance assertion.
_PERF_GATE_REL = 2.0
_PERF_GATE_ABS = {
    "oracle_rebuild_share": 0.05,
    "candidate_evals_per_derive": 50.0,
}
# A comparison needs this many denominator events in the *current* run
# before its rate means anything — a sub-minimum run (e.g. the 0.08
# identity smoke, whose tabu phase barely moves) reports the
# comparison as NEUTRAL with ``insufficient_volume`` set instead of
# flapping. The CI perf-gate step runs at scale 0.3, which clears the
# minimums while keeping region granularity (and therefore the rates)
# comparable to the full-scale baseline.
_PERF_MIN_VOLUME = {
    "oracle_rebuild_share": 200,
    "candidate_evals_per_derive": 50,
}


def read_bench_record(path: str) -> dict | None:
    """Load a ``BENCH_*.json`` record, accepting records of any schema
    version.

    Version-1 records (written before the telemetry PR) gain
    ``schema_version=1`` and an empty ``telemetry`` block so consumers
    can treat every record uniformly. Returns ``None`` when the file is
    missing or unparseable.
    """
    import os

    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    payload.setdefault("schema_version", 1)
    payload.setdefault("telemetry", {})
    return payload


def _telemetry_block(telemetry: SolveTelemetry) -> dict:
    """Span count + per-phase wall-clock summary for a JSON payload."""
    summary = telemetry.summary()
    return {
        "total_spans": summary["total_spans"],
        "total_events": summary["total_events"],
        "phase_seconds": {
            phase: round(seconds, 4)
            for phase, seconds in sorted(summary["phase_seconds"].items())
        },
        "progress_events": summary.get("progress_events", 0),
        "eta_error": summary.get("eta_error"),
    }


def _solve_once(
    collection: AreaCollection,
    constraints: ConstraintSet,
    rng_seed: int,
    cached: bool,
) -> dict:
    """One full FaCT solve with the cache gate forced to *cached*.

    Both modes run with (in-memory) telemetry on, so the wall-clock
    comparison stays apples-to-apples and the record carries the span
    summary.
    """
    config = bench_config(len(collection), rng_seed=rng_seed, enable_tabu=True)
    telemetry = SolveTelemetry()
    previous = set_hotpath_caches(cached)
    try:
        started = time.perf_counter()
        solution = FaCT(config).solve(
            collection, constraints, telemetry=telemetry
        )
        wall = time.perf_counter() - started
    finally:
        set_hotpath_caches(previous)
    return {
        "wall_seconds": wall,
        "labels": solution.partition.labels(),
        "p": solution.p,
        "n_unassigned": solution.n_unassigned,
        "heterogeneity": solution.heterogeneity,
        "perf": solution.perf.as_dict() if solution.perf is not None else {},
        "telemetry": _telemetry_block(telemetry),
    }


def _grow_state(
    collection: AreaCollection,
    constraints: ConstraintSet,
    target_regions: int = 12,
    fill_fraction: float = 0.8,
) -> SolutionState:
    """A deterministic partially-grown state for micro-op timing.

    Regions are grown breadth-first from the lowest area ids; growth
    stops at *fill_fraction* so the unassigned frontier is non-empty
    (otherwise ``unassigned_neighbors`` would measure an empty query).
    """
    state = SolutionState(collection, constraints)
    budget = int(len(collection) * fill_fraction)
    per_region = max(2, budget // target_regions)
    while state.n_unassigned > len(collection) - budget:
        seed = min(state.unassigned)
        region = state.new_region([seed])
        while len(region) < per_region:
            frontier = state.unassigned_neighbors(region)
            if not frontier:
                break
            state.assign(frontier[0], region)
        if state.n_unassigned <= len(collection) - budget:
            break
    return state


def _time_micro_ops(
    collection: AreaCollection,
    constraints: ConstraintSet,
    cached: bool,
    repeats: int = 3,
) -> dict[str, float]:
    """Mean per-call latency (µs) of the three hot-path queries."""
    previous = set_hotpath_caches(cached)
    try:
        state = _grow_state(collection, constraints)
        regions = [state.regions[rid] for rid in sorted(state.regions)]

        def contiguity() -> int:
            calls = 0
            for region in regions:
                for area_id in sorted(region.area_ids):
                    region.remains_contiguous_without(area_id)
                    calls += 1
            return calls

        def frontier() -> int:
            calls = 0
            for region in regions:
                state.unassigned_neighbors(region)
                calls += 1
            return calls

        def adjacency() -> int:
            calls = 0
            for region in regions:
                state.adjacent_regions(region)
                calls += 1
            return calls

        timings: dict[str, float] = {}
        for name, op in (
            ("remains_contiguous_without", contiguity),
            ("unassigned_neighbors", frontier),
            ("adjacent_regions", adjacency),
        ):
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                calls = op()
                elapsed = time.perf_counter() - started
                best = min(best, elapsed / max(1, calls))
            timings[name] = best * 1e6
        return timings
    finally:
        set_hotpath_caches(previous)


def run_micro(
    dataset: str = "2k",
    scale: float = 1.0,
    rng_seed: int = 7,
    combo: str = "MAS",
    micro_ops: bool = True,
) -> dict:
    """Run the cached/uncached comparison and return the result dict.

    ``result["identical"]`` is the acceptance gate: ``False`` means the
    caches changed solver behaviour and the build must fail.
    """
    collection = load_dataset(dataset, scale=scale)
    constraints = combo_constraints(combo)

    cached = _solve_once(collection, constraints, rng_seed, cached=True)
    uncached = _solve_once(collection, constraints, rng_seed, cached=False)

    identical = (
        cached["labels"] == uncached["labels"]
        and cached["p"] == uncached["p"]
        and cached["n_unassigned"] == uncached["n_unassigned"]
        and cached["heterogeneity"] == uncached["heterogeneity"]
    )
    traversals_cached = max(1, cached["perf"].get("graph_traversals", 0))
    traversals_uncached = uncached["perf"].get("graph_traversals", 0)
    bfs_checks_cached = max(1, cached["perf"].get("full_bfs_checks", 0))
    bfs_checks_uncached = uncached["perf"].get("full_bfs_checks", 0)

    result = {
        "benchmark": "hotpaths",
        "schema_version": BENCH_SCHEMA_VERSION,
        "telemetry": cached["telemetry"],
        "dataset": dataset,
        "scale": scale,
        "n_areas": len(collection),
        "combo": combo,
        "rng_seed": rng_seed,
        "identical": identical,
        "p": cached["p"],
        "n_unassigned": cached["n_unassigned"],
        "heterogeneity": cached["heterogeneity"],
        "cached": {
            "wall_seconds": round(cached["wall_seconds"], 4),
            "perf": cached["perf"],
        },
        "uncached": {
            "wall_seconds": round(uncached["wall_seconds"], 4),
            "perf": uncached["perf"],
        },
        "speedup": round(
            uncached["wall_seconds"] / max(1e-9, cached["wall_seconds"]), 3
        ),
        # Contiguity checks answered by a full BFS, uncached / cached —
        # the oracle's headline: checks become O(1) lookups unless the
        # check itself triggers the lazy rebuild.
        "bfs_check_reduction": round(
            bfs_checks_uncached / bfs_checks_cached, 3
        ),
        # All induced-subgraph passes (incl. oracle rebuilds), both
        # modes — the conservative overall-work view.
        "traversal_reduction": round(
            traversals_uncached / traversals_cached, 3
        ),
    }
    if micro_ops:
        result["micro_ops_us"] = {
            "cached": {
                name: round(value, 3)
                for name, value in _time_micro_ops(
                    collection, constraints, cached=True
                ).items()
            },
            "uncached": {
                name: round(value, 3)
                for name, value in _time_micro_ops(
                    collection, constraints, cached=False
                ).items()
            },
        }
    return result


def _solve_objective_once(
    collection: AreaCollection,
    constraints: ConstraintSet,
    rng_seed: int,
    cached: bool,
    n_jobs: int = 1,
    tabu_portfolio: int = 1,
    backend: str | None = None,
) -> dict:
    """One FaCT solve with explicit parallelism knobs, for the
    objective-identity benchmark.

    *backend* pins the hot-path backend explicitly (``"numpy"`` /
    ``"python"``); ``None`` keeps the config default (``"auto"``).
    """
    from dataclasses import replace

    config = replace(
        bench_config(len(collection), rng_seed=rng_seed, enable_tabu=True),
        n_jobs=n_jobs,
        tabu_portfolio=tabu_portfolio,
        **({} if backend is None else {"backend": backend}),
    )
    telemetry = SolveTelemetry()
    previous = set_hotpath_caches(cached)
    try:
        started = time.perf_counter()
        solution = FaCT(config).solve(
            collection, constraints, telemetry=telemetry
        )
        wall = time.perf_counter() - started
    finally:
        set_hotpath_caches(previous)
    perf = solution.perf.as_dict() if solution.perf is not None else {}
    return {
        "wall_seconds": wall,
        "labels": solution.partition.labels(),
        "p": solution.p,
        "n_unassigned": solution.n_unassigned,
        "heterogeneity": solution.heterogeneity,
        "backend": solution.backend,
        "status": solution.status.value,
        "tabu_seconds": perf.get("timings", {}).get("tabu", 0.0),
        "perf": perf,
        "telemetry": _telemetry_block(telemetry),
    }


def _baseline_tabu_seconds(path: str) -> float | None:
    """Tabu-phase seconds of the checked-in hot-path baseline, if the
    file exists and carries them (PR2's ``BENCH_hotpaths.json``).

    Goes through :func:`read_bench_record`, so baselines of any schema
    version are accepted."""
    payload = read_bench_record(path)
    if payload is None:
        return None
    try:
        value = payload["cached"]["perf"]["timings"]["tabu"]
    except (KeyError, TypeError):
        return None
    return float(value)


def run_objective(
    dataset: str = "2k",
    scale: float = 1.0,
    rng_seed: int = 7,
    combo: str = "MAS",
    n_jobs_grid: Sequence[int] = (1, 2, 4),
    tabu_portfolio: int = 3,
    baseline_path: str = "BENCH_hotpaths.json",
) -> dict:
    """The objective-engine benchmark: delta fast path + portfolio.

    Three checks in one run, mirroring the PR's acceptance gates:

    - **identity** — cached vs uncached (reference-path) solves must
      produce bit-identical partitions; the maintained sorted-values
      structure and the heap move index are pure accelerations;
    - **fast-path rate** — share of objective delta queries served by
      the maintained structure without a full recompute
      (``delta_fastpath_rate`` from
      :class:`~repro.core.perf.PerfCounters`);
    - **worker invariance** — with the Tabu portfolio on, partitions
      must be bit-identical at every ``n_jobs`` in *n_jobs_grid*;
    - **backend parity** — when numpy is importable, every ``n_jobs``
      in the grid is re-run under the *other* resolved backend
      (``numpy`` vs ``python`` — see :mod:`repro.core.arrays`) and the
      partitions must match the portfolio runs bit-for-bit.

    ``result["identical"]``, ``result["n_jobs_invariant"]`` and
    ``result["backend_parity"]["identical"]`` are the failure gates;
    tabu-phase wall-clock is reported against both the in-run uncached
    solve and the checked-in PR2 baseline file.
    """
    collection = load_dataset(dataset, scale=scale)
    constraints = combo_constraints(combo)

    cached = _solve_objective_once(collection, constraints, rng_seed, cached=True)
    uncached = _solve_objective_once(
        collection, constraints, rng_seed, cached=False
    )
    identical = (
        cached["labels"] == uncached["labels"]
        and cached["heterogeneity"] == uncached["heterogeneity"]
    )

    portfolio_runs = {
        n_jobs: _solve_objective_once(
            collection,
            constraints,
            rng_seed,
            cached=True,
            n_jobs=n_jobs,
            tabu_portfolio=tabu_portfolio,
        )
        for n_jobs in n_jobs_grid
    }
    reference = portfolio_runs[n_jobs_grid[0]]
    n_jobs_invariant = all(
        run["labels"] == reference["labels"]
        and run["heterogeneity"] == reference["heterogeneity"]
        for run in portfolio_runs.values()
    )

    # Backend parity: re-run the portfolio grid under the backend the
    # runs above did NOT use and require bit-identical partitions.
    default_backend = reference["backend"]
    backend_parity: dict[str, object] = {
        "default_backend": default_backend,
        "other_backend": None,
        "identical": True,
        "n_jobs_identical": {},
    }
    if arrays_mod.numpy_available():
        other = "python" if default_backend == "numpy" else "numpy"
        backend_parity["other_backend"] = other
        for n_jobs in n_jobs_grid:
            run = _solve_objective_once(
                collection,
                constraints,
                rng_seed,
                cached=True,
                n_jobs=n_jobs,
                tabu_portfolio=tabu_portfolio,
                backend=other,
            )
            same = (
                run["labels"] == portfolio_runs[n_jobs]["labels"]
                and run["heterogeneity"]
                == portfolio_runs[n_jobs]["heterogeneity"]
                and run["p"] == portfolio_runs[n_jobs]["p"]
            )
            backend_parity["n_jobs_identical"][str(n_jobs)] = same
        backend_parity["identical"] = all(
            backend_parity["n_jobs_identical"].values()
        )

    baseline_tabu = _baseline_tabu_seconds(baseline_path)
    tabu_cached = cached["tabu_seconds"]
    return {
        "benchmark": "objective",
        "schema_version": BENCH_SCHEMA_VERSION,
        "telemetry": cached["telemetry"],
        "dataset": dataset,
        "scale": scale,
        "n_areas": len(collection),
        "combo": combo,
        "rng_seed": rng_seed,
        "identical": identical,
        "n_jobs_invariant": n_jobs_invariant,
        "backend": cached["backend"],
        "backend_parity": backend_parity,
        "p": cached["p"],
        "n_unassigned": cached["n_unassigned"],
        "heterogeneity": cached["heterogeneity"],
        "delta_fastpath_rate": cached["perf"].get("delta_fastpath_rate", 0.0),
        "delta_fastpath": cached["perf"].get("delta_fastpath", 0),
        "delta_recompute": cached["perf"].get("delta_recompute", 0),
        "objective_struct_updates": cached["perf"].get(
            "objective_struct_updates", 0
        ),
        "tabu_seconds_cached": round(tabu_cached, 4),
        "tabu_seconds_uncached": round(uncached["tabu_seconds"], 4),
        "tabu_speedup_vs_uncached": round(
            uncached["tabu_seconds"] / max(1e-9, tabu_cached), 3
        ),
        "tabu_baseline_seconds": baseline_tabu,
        "tabu_speedup_vs_baseline": (
            round(baseline_tabu / max(1e-9, tabu_cached), 3)
            if baseline_tabu is not None
            else None
        ),
        "wall_seconds_cached": round(cached["wall_seconds"], 4),
        "wall_seconds_uncached": round(uncached["wall_seconds"], 4),
        "portfolio": {
            "tabu_portfolio": tabu_portfolio,
            "runs": {
                str(n_jobs): {
                    "wall_seconds": round(run["wall_seconds"], 4),
                    "tabu_seconds": round(run["tabu_seconds"], 4),
                    "heterogeneity": run["heterogeneity"],
                    "p": run["p"],
                }
                for n_jobs, run in portfolio_runs.items()
            },
            "heterogeneity": reference["heterogeneity"],
            "improvement_over_single": round(
                (cached["heterogeneity"] - reference["heterogeneity"])
                / max(1e-9, cached["heterogeneity"]),
                4,
            ),
        },
        "cached_perf": cached["perf"],
        "uncached_perf": uncached["perf"],
    }


def _solve_scaling_once(
    collection: AreaCollection,
    constraints: ConstraintSet,
    rng_seed: int,
    backend: str,
) -> dict:
    """One cached solve under an explicitly pinned backend."""
    from dataclasses import replace

    config = replace(
        bench_config(len(collection), rng_seed=rng_seed, enable_tabu=True),
        backend=backend,
    )
    telemetry = SolveTelemetry()
    started = time.perf_counter()
    solution = FaCT(config).solve(collection, constraints, telemetry=telemetry)
    wall = time.perf_counter() - started
    perf = solution.perf.as_dict() if solution.perf is not None else {}
    return {
        "wall_seconds": wall,
        "labels": solution.partition.labels(),
        "p": solution.p,
        "n_unassigned": solution.n_unassigned,
        "heterogeneity": solution.heterogeneity,
        "backend": solution.backend,
        "status": solution.status.value,
        "construction_seconds": solution.construction_seconds,
        "tabu_seconds": perf.get("timings", {}).get("tabu", 0.0),
        "perf": perf,
        "telemetry": _telemetry_block(telemetry),
    }


def run_scaling(
    datasets: Sequence[str] = ("2k", "10k", "25k", "50k"),
    scale: float = 1.0,
    rng_seed: int = 7,
    workload: str = "enriched",
) -> dict:
    """The backend-scaling benchmark: numpy vs python across sizes.

    The default *workload* is the six-constraint *enriched* set
    (:func:`repro.bench.workloads.enriched_constraints`) — the paper's
    headline setting, and the regime the array backend targets: large
    regions (the SUM threshold) and a constraint count where
    per-candidate feasibility checking dominates the scalar Tabu
    phase. Any ``MAS``-subset combo code is accepted instead for
    narrower sweeps.

    Sweeps *datasets* (registry names) once per resolved backend with
    the backend pinned explicitly through ``FaCTConfig.backend`` — so
    one process measures both code paths — and, per dataset,

    - diffs the two backends' partitions (labels, ``p``, unassigned
      count, heterogeneity) — ``result["identical"]`` is the failure
      gate: the numpy backend must be a *pure* acceleration;
    - reports per-backend construction/tabu/total wall-clock and the
      numpy-vs-python tabu-phase speedup (the headline the PR's
      acceptance criteria gate on at 10k);
    - records the run status so an interrupted cell (bench deadline)
      is visible in the checked-in artifact rather than silently
      truncated.

    Without numpy the sweep degrades to a python-only measurement
    (``identical`` stays True; there is nothing to diff against).
    """
    backends = (
        ("python", "numpy") if arrays_mod.numpy_available() else ("python",)
    )
    dataset_blocks: dict[str, dict] = {}
    all_identical = True
    all_complete = True
    telemetry_block: dict = {}
    constraints = (
        enriched_constraints()
        if workload == "enriched"
        else combo_constraints(workload)
    )
    for name in datasets:
        collection = load_dataset(name, scale=scale)
        runs = {
            backend: _solve_scaling_once(
                collection, constraints, rng_seed, backend
            )
            for backend in backends
        }
        reference = runs[backends[0]]
        identical = all(
            run["labels"] == reference["labels"]
            and run["p"] == reference["p"]
            and run["n_unassigned"] == reference["n_unassigned"]
            and run["heterogeneity"] == reference["heterogeneity"]
            for run in runs.values()
        )
        all_identical = all_identical and identical
        all_complete = all_complete and all(
            run["status"] == "complete" for run in runs.values()
        )
        block: dict[str, object] = {
            "n_areas": len(collection),
            "identical": identical,
            "p": reference["p"],
            "n_unassigned": reference["n_unassigned"],
            "heterogeneity": reference["heterogeneity"],
            "backends": {
                backend: {
                    "wall_seconds": round(run["wall_seconds"], 4),
                    "construction_seconds": round(
                        run["construction_seconds"], 4
                    ),
                    "tabu_seconds": round(run["tabu_seconds"], 4),
                    "status": run["status"],
                    "candidate_evaluations": run["perf"].get(
                        "candidate_evaluations", 0
                    ),
                    "vector_derives": run["perf"].get("vector_derives", 0),
                    "donor_cache_hits": run["perf"].get(
                        "donor_cache_hits", 0
                    ),
                    "oracle_rebuilds": run["perf"].get("oracle_rebuilds", 0),
                    "oracle_incremental": run["perf"].get(
                        "oracle_incremental", 0
                    ),
                    "oracle_fallbacks": run["perf"].get(
                        "oracle_fallbacks", 0
                    ),
                    "oracle_incremental_rate": run["perf"].get(
                        "oracle_incremental_rate", 0.0
                    ),
                }
                for backend, run in runs.items()
            },
        }
        if len(backends) > 1:
            numpy_run = runs["numpy"]
            python_run = runs["python"]
            block["tabu_speedup"] = round(
                python_run["tabu_seconds"]
                / max(1e-9, numpy_run["tabu_seconds"]),
                3,
            )
            block["wall_speedup"] = round(
                python_run["wall_seconds"]
                / max(1e-9, numpy_run["wall_seconds"]),
                3,
            )
            telemetry_block = numpy_run["telemetry"]
        else:
            telemetry_block = reference["telemetry"]
        dataset_blocks[name] = block
    return {
        "benchmark": "scaling",
        "schema_version": BENCH_SCHEMA_VERSION,
        "telemetry": telemetry_block,
        "backends": list(backends),
        "numpy_version": arrays_mod.numpy_version(),
        "scale": scale,
        "workload": workload,
        "constraints": [str(c) for c in constraints],
        "rng_seed": rng_seed,
        "identical": all_identical,
        "all_complete": all_complete,
        "datasets": dataset_blocks,
    }


def _perf_rates(backend_row: dict) -> dict:
    """The gated scale-invariant rates of one scaling backend row, as
    ``{metric: (rate, denominator_volume)}``.

    ``oracle_rebuild_share`` — full Hopcroft–Tarjan rebuilds as a share
    of all oracle refreshes (lower is better; the incremental
    block-cut oracle drives it toward 0, and structural breakage
    drives it back toward 1). ``candidate_evals_per_derive`` — mean
    (candidate, receiver) pairs priced per vector derive (a boundary-
    size proxy; a blowup means move derivation lost its dedup or
    feasibility pruning). The rate is ``None`` when the row predates
    the counter or the denominator is empty (python rows have no
    vector derives).
    """
    rebuilds = backend_row.get("oracle_rebuilds")
    incremental = backend_row.get("oracle_incremental")
    refreshes = (rebuilds or 0) + (incremental or 0)
    evals = backend_row.get("candidate_evaluations")
    derives = backend_row.get("vector_derives")
    return {
        "oracle_rebuild_share": (
            (rebuilds / refreshes, refreshes)
            if rebuilds is not None and incremental is not None and refreshes
            else (None, refreshes)
        ),
        "candidate_evals_per_derive": (
            (evals / derives, derives)
            if evals is not None and derives
            else (None, derives or 0)
        ),
    }


def _perf_verdict(metric: str, current: float, baseline: float) -> str:
    """WIN / NEUTRAL / REGRESSION for one lower-is-better rate.

    Leaving NEUTRAL requires both the relative factor
    (``_PERF_GATE_REL``) and the metric's absolute gap
    (``_PERF_GATE_ABS``) — smoke-scale runs legitimately shift the
    rates by small absolute amounts, and near-zero baselines make any
    relative factor trivially exceedable.
    """
    gap = current - baseline
    abs_slack = _PERF_GATE_ABS[metric]
    if current > baseline * _PERF_GATE_REL and gap > abs_slack:
        return "REGRESSION"
    if baseline > current * _PERF_GATE_REL and -gap > abs_slack:
        return "WIN"
    return "NEUTRAL"


def compare_perf_to_baseline(result: dict, baseline: dict | None) -> dict:
    """Grade a scaling run's perf counters against a checked-in
    ``BENCH_scaling.json``.

    One comparison per (dataset, backend, metric) present in both
    records; the ``overall`` verdict is REGRESSION if any comparison
    regressed, else WIN if any won, else NEUTRAL. A missing baseline
    (or one predating the gated counters) yields zero comparisons and
    an overall NEUTRAL — the gate only bites once a post-oracle
    baseline is checked in.
    """
    comparisons: list[dict] = []
    base_datasets = (baseline or {}).get("datasets", {})
    for name, block in result.get("datasets", {}).items():
        base_block = base_datasets.get(name, {})
        for backend, row in block.get("backends", {}).items():
            base_row = base_block.get("backends", {}).get(backend)
            if not isinstance(base_row, dict):
                continue
            current_rates = _perf_rates(row)
            base_rates = _perf_rates(base_row)
            for metric, (current, volume) in current_rates.items():
                base_value, _ = base_rates[metric]
                if current is None or base_value is None:
                    continue
                entry = {
                    "dataset": name,
                    "backend": backend,
                    "metric": metric,
                    "current": round(current, 6),
                    "baseline": round(base_value, 6),
                    "volume": volume,
                }
                if volume < _PERF_MIN_VOLUME[metric]:
                    entry["verdict"] = "NEUTRAL"
                    entry["insufficient_volume"] = True
                else:
                    entry["verdict"] = _perf_verdict(
                        metric, current, base_value
                    )
                comparisons.append(entry)
    verdicts = {entry["verdict"] for entry in comparisons}
    if "REGRESSION" in verdicts:
        overall = "REGRESSION"
    elif "WIN" in verdicts:
        overall = "WIN"
    else:
        overall = "NEUTRAL"
    return {
        "overall": overall,
        "comparisons": comparisons,
        "baseline_found": bool(base_datasets),
    }


def _profile_solve(
    dataset: str, scale: float, rng_seed: int, combo: str, top: int = 25
) -> None:
    """cProfile one cached solve and print the *top* cumulative-time
    entries (the optimization worklist view)."""
    import cProfile
    import io
    import pstats

    collection = load_dataset(dataset, scale=scale)
    constraints = combo_constraints(combo)
    config = bench_config(len(collection), rng_seed=rng_seed, enable_tabu=True)
    previous = set_hotpath_caches(True)
    profiler = cProfile.Profile()
    try:
        profiler.enable()
        FaCT(config).solve(collection, constraints)
        profiler.disable()
    finally:
        set_hotpath_caches(previous)
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    print(stream.getvalue())


def _strip_labels(result: dict) -> dict:
    """The JSON payload: everything except the raw label maps."""
    return {key: value for key, value in result.items() if key != "labels"}


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench micro",
        description=(
            "Measure the hot-path caches against the uncached reference "
            "path and verify bit-identical solver output."
        ),
    )
    parser.add_argument("--dataset", default="2k", help="registry dataset name")
    parser.add_argument(
        "--scale", type=float, default=1.0, help="dataset scale factor"
    )
    parser.add_argument("--seed", type=int, default=7, help="solver RNG seed")
    parser.add_argument(
        "--combo", default="MAS", help="constraint combination (subset of MAS)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI mode: shrink the dataset to scale {_SMOKE_SCALE} and "
        "skip micro-op timing; the cached/uncached identity check "
        "still runs in full",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the JSON result here (default: stdout only)",
    )
    parser.add_argument(
        "--objective",
        action="store_true",
        help="objective-engine mode: verify the incremental objective "
        "deltas (cached vs reference path) and the Tabu portfolio's "
        "n_jobs invariance; report the delta fast-path rate and the "
        "tabu-phase speedup (emits BENCH_objective.json with --output)",
    )
    parser.add_argument(
        "--scaling",
        action="store_true",
        help="scaling mode: sweep --datasets once per backend (numpy "
        "and python), diff the partitions per dataset and report the "
        "numpy-vs-python tabu speedup (emits BENCH_scaling.json with "
        "--output)",
    )
    parser.add_argument(
        "--datasets",
        default="2k,10k,25k,50k",
        help="scaling mode: comma-separated registry dataset names to "
        "sweep (default 2k,10k,25k,50k). Full-scale runtime grows "
        "steeply with size — expect roughly 1 min (2k), 5 min (10k), "
        "8 min (25k) and 30-45 min (50k) per sweep, dominated by the "
        "python-backend tabu phase; use --smoke (or trim --datasets) "
        "for CI-sized runs",
    )
    parser.add_argument(
        "--perf-baseline",
        default=None,
        help="scaling mode: checked-in BENCH_scaling.json to grade "
        "this run's perf counters against (oracle rebuild share, "
        "candidate evaluations per derive). Each (dataset, backend, "
        "metric) pair present in both records gets a WIN / NEUTRAL / "
        "REGRESSION verdict; any REGRESSION fails the run (exit 3). "
        "Thresholds are deliberately coarse so a --smoke run can be "
        "graded against a full-scale baseline",
    )
    parser.add_argument(
        "--workload",
        default="enriched",
        help="scaling mode: 'enriched' (six-constraint workload, the "
        "default) or a MAS-subset combo code",
    )
    parser.add_argument(
        "--jobs",
        default="1,2,4",
        help="objective mode: comma-separated n_jobs grid for the "
        "worker-invariance check (default 1,2,4)",
    )
    parser.add_argument(
        "--portfolio",
        type=int,
        default=3,
        help="objective mode: tabu_portfolio size for the invariance "
        "runs (default 3)",
    )
    parser.add_argument(
        "--baseline",
        default="BENCH_hotpaths.json",
        help="objective mode: prior-PR benchmark file to compare the "
        "tabu-phase wall-clock against",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile one cached solve and print the top-25 "
        "cumulative-time entries instead of benchmarking",
    )
    args = parser.parse_args(argv)

    scale = _SMOKE_SCALE if args.smoke else args.scale

    if args.profile:
        _profile_solve(args.dataset, scale, args.seed, args.combo)
        return 0

    if args.scaling:
        result = run_scaling(
            datasets=tuple(
                part.strip()
                for part in args.datasets.split(",")
                if part.strip()
            ),
            scale=scale,
            rng_seed=args.seed,
            workload=args.workload,
        )
        if args.perf_baseline:
            result["perf_gate"] = compare_perf_to_baseline(
                result, read_bench_record(args.perf_baseline)
            )
    elif args.objective:
        n_jobs_grid = tuple(
            int(part) for part in args.jobs.split(",") if part.strip()
        )
        result = run_objective(
            dataset=args.dataset,
            scale=scale,
            rng_seed=args.seed,
            combo=args.combo,
            n_jobs_grid=n_jobs_grid,
            tabu_portfolio=args.portfolio,
            baseline_path=args.baseline,
        )
    else:
        result = run_micro(
            dataset=args.dataset,
            scale=scale,
            rng_seed=args.seed,
            combo=args.combo,
            micro_ops=not args.smoke,
        )

    payload = json.dumps(_strip_labels(result), indent=2, sort_keys=True)
    if args.output:
        # Atomic: a watchdog kill mid-write must not truncate a
        # checked-in BENCH_*.json.
        atomic_write_text(args.output, payload + "\n")
    print(payload)

    if args.scaling:
        if not result["identical"]:
            print(
                "FAIL: numpy and python backends diverged — the array "
                "backend changed solver behaviour",
                file=sys.stderr,
            )
            return 2
        speedups = ", ".join(
            f"{name}: {block.get('tabu_speedup', 'n/a')}x tabu"
            for name, block in result["datasets"].items()
        )
        print(
            "OK: backends bit-identical on every dataset "
            f"({'/'.join(result['backends'])}); {speedups}",
            file=sys.stderr,
        )
        gate = result.get("perf_gate")
        if gate is not None:
            for entry in gate["comparisons"]:
                print(
                    f"perf-gate {entry['verdict']}: "
                    f"{entry['dataset']}/{entry['backend']} "
                    f"{entry['metric']} {entry['current']} "
                    f"(baseline {entry['baseline']})",
                    file=sys.stderr,
                )
            if not gate["baseline_found"]:
                print(
                    "perf-gate NEUTRAL: no usable baseline at "
                    f"{args.perf_baseline}",
                    file=sys.stderr,
                )
            if gate["overall"] == "REGRESSION":
                print(
                    "FAIL: perf gate regressed against "
                    f"{args.perf_baseline}",
                    file=sys.stderr,
                )
                return 3
            print(f"perf-gate overall: {gate['overall']}", file=sys.stderr)
        return 0

    if not result["identical"]:
        print(
            "FAIL: cached and uncached runs diverged — the hot-path "
            "caches changed solver behaviour",
            file=sys.stderr,
        )
        return 2
    if args.objective:
        if not result["n_jobs_invariant"]:
            print(
                "FAIL: portfolio results differ across n_jobs — worker "
                "execution changed solver behaviour",
                file=sys.stderr,
            )
            return 2
        if not result["backend_parity"]["identical"]:
            print(
                "FAIL: numpy and python backends diverged on the "
                "portfolio grid — the array backend changed solver "
                "behaviour",
                file=sys.stderr,
            )
            return 2
        speedup_note = (
            f"tabu speedup vs PR2 baseline {result['tabu_speedup_vs_baseline']}x"
            if result["tabu_speedup_vs_baseline"] is not None
            else "no baseline file for tabu speedup comparison"
        )
        print(
            "OK: identical output, n_jobs-invariant portfolio; delta "
            f"fast-path rate {result['delta_fastpath_rate']:.2%}, "
            f"tabu speedup vs reference path "
            f"{result['tabu_speedup_vs_uncached']}x, {speedup_note}",
            file=sys.stderr,
        )
        return 0
    print(
        f"OK: identical output; speedup {result['speedup']}x, "
        f"full-BFS check reduction {result['bfs_check_reduction']}x, "
        f"graph-traversal reduction {result['traversal_reduction']}x",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
