"""Table III and Table IV generators.

Table III reports the answer-set size ``p`` for the MIN-constraint
combinations (M, MS, MA, MAS) over fourteen threshold ranges: three
with an open lower bound, three with an open upper bound, four bounded
ranges of growing length around midpoint 3k, and four unit-length
ranges with shifting midpoints.

Table IV reports ``p`` for the SUM-constraint combinations (MP
baseline, S, MS, AS, MAS) over five open-upper lower bounds and three
bounded ranges around midpoint 20k.
"""

from __future__ import annotations

from typing import Sequence

from ..core.area import AreaCollection
from .runner import ExperimentRow, run_emp, run_maxp
from .workloads import (
    MIN_COMBOS,
    SUM_COMBOS,
    TABLE3_LENGTH_RANGES,
    TABLE3_MIDPOINT_RANGES,
    TABLE3_OPEN_LOWER_RANGES,
    TABLE3_OPEN_UPPER_RANGES,
    TABLE4_SUM_BOUNDED_RANGES,
    TABLE4_SUM_LOWER_BOUNDS,
    Range,
    format_range,
)

__all__ = [
    "table3_min_ranges",
    "table3_rows",
    "table4_settings",
    "table4_rows",
    "format_p_table",
]


def table3_min_ranges() -> tuple[Range, ...]:
    """The fourteen MIN threshold ranges of Table III, paper order."""
    return (
        TABLE3_OPEN_LOWER_RANGES
        + TABLE3_OPEN_UPPER_RANGES
        + TABLE3_LENGTH_RANGES
        + TABLE3_MIDPOINT_RANGES
    )


def table3_rows(
    collection: AreaCollection,
    dataset: str = "2k",
    combos: Sequence[str] = MIN_COMBOS,
    ranges: Sequence[Range] | None = None,
    enable_tabu: bool = False,
    rng_seed: int = 7,
) -> list[ExperimentRow]:
    """All Table III cells: ``combos × ranges`` FaCT runs.

    Tabu search does not change ``p``, so it is disabled by default;
    the figure generators re-run selected cells with Tabu enabled for
    the runtime plots.
    """
    rows: list[ExperimentRow] = []
    for min_range in ranges if ranges is not None else table3_min_ranges():
        for combo in combos:
            rows.append(
                run_emp(
                    collection,
                    combo,
                    min_range=min_range,
                    dataset=dataset,
                    enable_tabu=enable_tabu,
                    rng_seed=rng_seed,
                )
            )
    return rows


def table4_settings() -> tuple[Range, ...]:
    """The eight SUM threshold settings of Table IV, paper order."""
    open_upper = tuple(
        (lower, None) for lower in TABLE4_SUM_LOWER_BOUNDS
    )
    return open_upper + TABLE4_SUM_BOUNDED_RANGES


def table4_rows(
    collection: AreaCollection,
    dataset: str = "2k",
    combos: Sequence[str] = SUM_COMBOS,
    settings: Sequence[Range] | None = None,
    enable_tabu: bool = False,
    include_baseline: bool = True,
    rng_seed: int = 7,
) -> list[ExperimentRow]:
    """All Table IV cells: the MP baseline (open-upper settings only,
    as in the paper — its N/A cells are bounded ranges it cannot
    express) plus the FaCT combinations."""
    rows: list[ExperimentRow] = []
    for sum_range in settings if settings is not None else table4_settings():
        lower, upper = sum_range
        if include_baseline and upper is None:
            rows.append(
                run_maxp(
                    collection,
                    lower,
                    dataset=dataset,
                    enable_tabu=enable_tabu,
                    rng_seed=rng_seed,
                )
            )
        for combo in combos:
            rows.append(
                run_emp(
                    collection,
                    combo,
                    sum_range=sum_range,
                    dataset=dataset,
                    enable_tabu=enable_tabu,
                    rng_seed=rng_seed,
                )
            )
    return rows


def format_p_table(rows: Sequence[ExperimentRow], value: str = "p") -> str:
    """Render rows as a combo × setting text table (paper layout).

    *value* selects the reported quantity: ``p`` (default),
    ``n_unassigned``, ``total_seconds`` … Failed cells render as
    ``ERR`` (the exception lives in the row's ``error`` field);
    interrupted cells suffix their best-so-far value with ``*``.
    """
    combos: list[str] = []
    settings: list[str] = []
    cells: dict[tuple[str, str], object] = {}
    for row in rows:
        if row.combo not in combos:
            combos.append(row.combo)
        if row.setting not in settings:
            settings.append(row.setting)
        if row.failed:
            quantity: object = "ERR"
        else:
            quantity = getattr(row, value)
            if isinstance(quantity, float):
                quantity = round(quantity, 3)
            if row.status != "ok":
                quantity = f"{quantity}*"
        cells[(row.combo, row.setting)] = quantity

    header = ["combo"] + settings
    widths = [max(len(header[0]), max((len(c) for c in combos), default=0))]
    for setting in settings:
        column = [str(cells.get((combo, setting), "N/A")) for combo in combos]
        widths.append(max(len(setting), max((len(v) for v in column), default=0)))

    def fmt_line(values: list[str]) -> str:
        return " | ".join(v.rjust(w) for v, w in zip(values, widths))

    lines = [fmt_line(header)]
    lines.append("-+-".join("-" * w for w in widths))
    for combo in combos:
        lines.append(
            fmt_line(
                [combo]
                + [str(cells.get((combo, s), "N/A")) for s in settings]
            )
        )
    return "\n".join(lines)
