"""Terminal plotting: render figure series as ASCII bar charts.

The benchmark report is consumed in terminals and markdown files, so
this module renders :class:`~repro.bench.figures.FigureData` series as
dependency-free horizontal bar charts — a visual complement to the
numeric tables, mirroring how the paper's grouped-bar figures read:

    Fig 5: Runtime for MIN with l=-inf  [seconds]
    (-inf,2k]   M construction    ████▌ 0.021
                M tabu            ████████████████████ 0.094
    ...

Charts scale bars to the widest value and keep one decimal of
precision in the printed labels.
"""

from __future__ import annotations

from typing import Sequence

from .figures import FigureData

__all__ = ["bar_chart", "figure_to_chart"]

_FULL = "█"
_PARTIAL = ("", "▏", "▎", "▍", "▌", "▋", "▊", "▉")


def _bar(value: float, maximum: float, width: int) -> str:
    """A unicode bar of ``value / maximum`` scaled to *width* cells."""
    if maximum <= 0 or value <= 0:
        return ""
    cells = value / maximum * width
    full = int(cells)
    remainder = int((cells - full) * 8)
    return _FULL * full + _PARTIAL[remainder]


def bar_chart(
    items: Sequence[tuple[str, float]],
    title: str = "",
    width: int = 40,
) -> str:
    """Render ``(label, value)`` pairs as a horizontal bar chart.

    Values must be non-negative; the longest bar spans *width* cells.
    """
    if not items:
        return title
    label_width = max(len(label) for label, _ in items)
    maximum = max(value for _, value in items)
    lines = [title] if title else []
    for label, value in items:
        bar = _bar(value, maximum, width)
        lines.append(f"{label.ljust(label_width)}  {bar} {value:g}")
    return "\n".join(lines)


def figure_to_chart(data: FigureData, width: int = 30) -> str:
    """Render a :class:`FigureData` as grouped bar charts, one group
    per x value (mirroring the paper's grouped-bar figures)."""
    x_values: list[str] = []
    for points in data.series.values():
        for x, _ in points:
            if x not in x_values:
                x_values.append(x)
    lookup = {
        (name, x): value
        for name, points in data.series.items()
        for x, value in points
    }
    names = list(data.series)
    maximum = max(
        (value for value in lookup.values() if value > 0), default=1.0
    )
    name_width = max((len(name) for name in names), default=0)

    lines = [f"{data.figure}: {data.title}  [{data.y_label}]"]
    for x in x_values:
        lines.append(f"{x}:")
        for name in names:
            value = lookup.get((name, x))
            if value is None:
                continue
            bar = _bar(value, maximum, width)
            lines.append(f"  {name.ljust(name_width)}  {bar} {value:g}")
    return "\n".join(lines)
