"""Experiment runner — one row of a paper table/figure per call.

Each experiment in Section VII measures, for one dataset and one
constraint combination at one threshold setting, the paper's three
performance measures: construction time, Tabu time, the answer-set
size ``p`` (plus the number of unassigned areas) and the relative
heterogeneity improvement. :func:`run_emp` and :func:`run_maxp`
produce one :class:`ExperimentRow` each; the table/figure modules
assemble grids of them.

Resilience: a cell that raises is reported as an *error row*
(``status="error"``, the exception in ``error``) instead of aborting
the whole table; ``REPRO_BENCH_CELL_DEADLINE`` imposes a per-cell
wall-clock budget (interrupted cells carry the solver's best-so-far
numbers flagged ``deadline_exceeded``); and an ambient
:class:`~repro.bench.journal.RunJournal` installed via
:func:`use_journal` makes multi-hour report runs resumable.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..core.area import AreaCollection
from ..data.datasets import load_dataset
from ..fact.config import FaCTConfig
from ..fact.solver import FaCT
from ..obs.telemetry import SolveTelemetry
from ..baselines.maxp import MaxPConfig, solve_maxp
from ..data import schema
from ..runtime import RunStatus
from .journal import RunJournal, journal_key
from .workloads import Range, combo_constraints, format_range

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "ExperimentRow",
    "bench_scale",
    "bench_dataset",
    "bench_config",
    "bench_cell_deadline",
    "run_emp",
    "run_maxp",
    "use_journal",
    "active_journal",
]

_SCALE_ENV = "REPRO_BENCH_SCALE"
_DEFAULT_BENCH_SCALE = 0.15
_CELL_DEADLINE_ENV = "REPRO_BENCH_CELL_DEADLINE"

# Version of the benchmark record layout (journal rows and the
# BENCH_*.json payloads). Version 2 added ``schema_version`` itself and
# the ``telemetry`` summary block; readers accept version-1 records
# (the fields default) so existing journals and checked-in baselines
# keep replaying.
BENCH_SCHEMA_VERSION = 2


def bench_scale() -> float:
    """The dataset scale used by the pytest benchmarks.

    Controlled by the ``REPRO_BENCH_SCALE`` environment variable
    (default 0.15, i.e. the default ``2k`` dataset shrinks to ~350
    areas so the whole suite runs in minutes). The full-size runs for
    EXPERIMENTS.md use :mod:`repro.bench.report` with ``--scale 1``.
    """
    return float(os.environ.get(_SCALE_ENV, _DEFAULT_BENCH_SCALE))


def bench_cell_deadline() -> float | None:
    """Per-cell wall-clock budget in seconds, or ``None`` (no budget).

    Controlled by the ``REPRO_BENCH_CELL_DEADLINE`` environment
    variable. A cell that hits its deadline still yields a measured
    row — the solver's best-so-far answer flagged
    ``deadline_exceeded`` — so one pathological cell cannot stall an
    entire report run.
    """
    raw = os.environ.get(_CELL_DEADLINE_ENV)
    if raw is None or not raw.strip():
        return None
    return float(raw)


def bench_dataset(name: str = "2k", scale: float | None = None) -> AreaCollection:
    """Load a registry dataset at the benchmark scale."""
    return load_dataset(name, scale=bench_scale() if scale is None else scale)


def bench_config(
    n_areas: int,
    rng_seed: int = 7,
    enable_tabu: bool = True,
    deadline_seconds: float | None = None,
) -> FaCTConfig:
    """The FaCT configuration used across all benchmarks.

    One construction pass and the paper's default Tabu knobs (tenure
    10, patience = dataset size), with a hard iteration cap of ``4n``
    so a pathological search cannot stall a benchmark run. Retries are
    disabled: a degenerate cell is itself a measured result, and
    benchmark rows must reflect exactly one construction per seed.
    """
    return FaCTConfig(
        rng_seed=rng_seed,
        construction_iterations=1,
        enable_tabu=enable_tabu,
        tabu_max_no_improve=n_areas,
        tabu_max_iterations=4 * n_areas,
        deadline_seconds=(
            deadline_seconds
            if deadline_seconds is not None
            else bench_cell_deadline()
        ),
        construction_retry_attempts=0,
    )


@dataclass(frozen=True)
class ExperimentRow:
    """One measured experiment cell.

    Field names mirror the quantities the paper plots: ``p``,
    unassigned count, construction/tabu seconds and heterogeneity
    improvement. ``status`` is ``"ok"`` for a clean run,
    ``"deadline_exceeded"``/``"cancelled"`` for an interrupted one
    (the measured numbers are then the solver's best-so-far), or
    ``"error"`` when the cell raised — ``error`` then holds the
    exception and the numeric fields are zeroed.
    """

    solver: str
    combo: str
    dataset: str
    n_areas: int
    setting: str
    p: int
    n_unassigned: int
    construction_seconds: float
    tabu_seconds: float
    improvement: float
    heterogeneity: float
    status: str = "ok"
    error: str = ""
    rng_seed: int = 7
    enable_tabu: bool = True
    schema_version: int = BENCH_SCHEMA_VERSION
    # Telemetry summary of the measured solve (total spans and
    # per-phase wall-clock from the in-memory SolveTelemetry); empty
    # for error rows, baseline (MP) rows and version-1 journal rows.
    telemetry: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Construction plus Tabu wall-clock time."""
        return self.construction_seconds + self.tabu_seconds

    @property
    def failed(self) -> bool:
        """True when the cell raised instead of measuring."""
        return self.status == "error"

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (used by the report writer and journal)."""
        return {
            "solver": self.solver,
            "combo": self.combo,
            "dataset": self.dataset,
            "n_areas": self.n_areas,
            "setting": self.setting,
            "p": self.p,
            "n_unassigned": self.n_unassigned,
            "construction_seconds": round(self.construction_seconds, 4),
            "tabu_seconds": round(self.tabu_seconds, 4),
            "improvement": round(self.improvement, 4),
            "heterogeneity": round(self.heterogeneity, 2),
            "status": self.status,
            "error": self.error,
            "rng_seed": self.rng_seed,
            "enable_tabu": self.enable_tabu,
            "schema_version": self.schema_version,
            "telemetry": dict(self.telemetry),
        }


# ----------------------------------------------------------------------
# ambient journal
# ----------------------------------------------------------------------

_journal: RunJournal | None = None


@contextmanager
def use_journal(journal: RunJournal | None):
    """Install *journal* as the ambient run journal.

    While active, :func:`run_emp` and :func:`run_maxp` replay cells
    the journal already holds and record every cell they measure. The
    journal is ambient rather than a parameter because the table and
    figure generators between the report driver and the runners have
    no business knowing about it.
    """
    global _journal
    previous = _journal
    _journal = journal
    try:
        yield journal
    finally:
        _journal = previous


def active_journal() -> RunJournal | None:
    """The currently installed run journal, if any."""
    return _journal


def _finish_row(key: tuple, make_row) -> ExperimentRow:
    """Replay *key* from the ambient journal, or measure it with
    *make_row* — converting an exception into an error row — and
    record the outcome."""
    journal = _journal
    if journal is not None:
        cached = journal.lookup(key)
        if cached is not None:
            return cached
    solver, combo, dataset, setting, n_areas, rng_seed, enable_tabu = key
    try:
        row = make_row()
    except Exception as exc:  # noqa: BLE001 - any cell failure becomes a row
        row = ExperimentRow(
            solver=solver,
            combo=combo,
            dataset=dataset,
            n_areas=n_areas,
            setting=setting,
            p=0,
            n_unassigned=n_areas,
            construction_seconds=0.0,
            tabu_seconds=0.0,
            improvement=0.0,
            heterogeneity=0.0,
            status="error",
            error=f"{type(exc).__name__}: {exc}",
            rng_seed=rng_seed,
            enable_tabu=enable_tabu,
        )
    if journal is not None:
        journal.record(row)
    return row


def _row_status(status: RunStatus) -> str:
    return "ok" if status is RunStatus.COMPLETE else status.value


def run_emp(
    collection: AreaCollection,
    combo: str,
    min_range: Range = None,
    avg_range: Range = None,
    sum_range: Range = None,
    dataset: str = "?",
    enable_tabu: bool = True,
    rng_seed: int = 7,
) -> ExperimentRow:
    """Run FaCT for one combination/threshold cell and measure it."""
    # The setting label names only the explicitly varied ranges: it
    # identifies the table *column*, while the combo identifies the
    # row. Unvaried constraint types keep their Table II defaults and
    # would only blur the column labels.
    kwargs = {}
    settings = []
    if min_range is not None:
        kwargs["min_range"] = min_range
        settings.append(f"MIN{format_range(min_range)}")
    if avg_range is not None:
        kwargs["avg_range"] = avg_range
        settings.append(f"AVG{format_range(avg_range)}")
    if sum_range is not None:
        kwargs["sum_range"] = sum_range
        settings.append(f"SUM{format_range(sum_range)}")
    setting = " ".join(settings) or "defaults"
    key = journal_key(
        "FaCT", combo, dataset, setting, len(collection), rng_seed, enable_tabu
    )

    def _measure() -> ExperimentRow:
        constraints = combo_constraints(combo, **kwargs)
        config = bench_config(
            len(collection), rng_seed=rng_seed, enable_tabu=enable_tabu
        )
        # In-memory telemetry (no trace file): the row carries a
        # summary of the solve's span tree and per-phase wall-clock.
        telemetry = SolveTelemetry()
        solution = FaCT(config).solve(
            collection, constraints, telemetry=telemetry
        )
        return ExperimentRow(
            solver="FaCT",
            combo=combo,
            dataset=dataset,
            n_areas=len(collection),
            setting=setting,
            p=solution.p,
            n_unassigned=solution.n_unassigned,
            construction_seconds=solution.construction_seconds,
            tabu_seconds=solution.tabu_seconds,
            improvement=solution.improvement,
            heterogeneity=solution.heterogeneity,
            status=_row_status(solution.status),
            rng_seed=rng_seed,
            enable_tabu=enable_tabu,
            telemetry=_telemetry_summary(telemetry),
        )

    return _finish_row(key, _measure)


def _telemetry_summary(telemetry: SolveTelemetry) -> dict:
    """The row's ``telemetry`` block: span count and per-phase seconds."""
    summary = telemetry.summary()
    return {
        "total_spans": summary["total_spans"],
        "total_events": summary["total_events"],
        "phase_seconds": {
            phase: round(seconds, 4)
            for phase, seconds in sorted(summary["phase_seconds"].items())
        },
        "progress_events": summary.get("progress_events", 0),
        "eta_error": summary.get("eta_error"),
    }


def run_maxp(
    collection: AreaCollection,
    threshold: float,
    dataset: str = "?",
    enable_tabu: bool = True,
    rng_seed: int = 7,
) -> ExperimentRow:
    """Run the classic max-p baseline (the paper's *MP* rows)."""
    n = len(collection)
    setting = f"SUM{format_range((threshold, None))}"
    key = journal_key("MP", "MP", dataset, setting, n, rng_seed, enable_tabu)

    def _measure() -> ExperimentRow:
        config = MaxPConfig(
            rng_seed=rng_seed,
            iterations=1,
            enable_tabu=enable_tabu,
            tabu_max_no_improve=n,
            tabu_max_iterations=4 * n,
        )
        result = solve_maxp(collection, schema.TOTALPOP, threshold, config)
        return ExperimentRow(
            solver="MP",
            combo="MP",
            dataset=dataset,
            n_areas=n,
            setting=setting,
            p=result.p,
            n_unassigned=result.n_unassigned,
            construction_seconds=result.construction_seconds,
            tabu_seconds=result.tabu_seconds,
            improvement=result.improvement,
            heterogeneity=result.heterogeneity,
            rng_seed=rng_seed,
            enable_tabu=enable_tabu,
        )

    return _finish_row(key, _measure)
