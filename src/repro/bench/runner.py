"""Experiment runner — one row of a paper table/figure per call.

Each experiment in Section VII measures, for one dataset and one
constraint combination at one threshold setting, the paper's three
performance measures: construction time, Tabu time, the answer-set
size ``p`` (plus the number of unassigned areas) and the relative
heterogeneity improvement. :func:`run_emp` and :func:`run_maxp`
produce one :class:`ExperimentRow` each; the table/figure modules
assemble grids of them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..core.area import AreaCollection
from ..data.datasets import load_dataset
from ..fact.config import FaCTConfig
from ..fact.solver import FaCT
from ..baselines.maxp import MaxPConfig, solve_maxp
from ..data import schema
from .workloads import Range, combo_constraints, format_range

__all__ = [
    "ExperimentRow",
    "bench_scale",
    "bench_dataset",
    "bench_config",
    "run_emp",
    "run_maxp",
]

_SCALE_ENV = "REPRO_BENCH_SCALE"
_DEFAULT_BENCH_SCALE = 0.15


def bench_scale() -> float:
    """The dataset scale used by the pytest benchmarks.

    Controlled by the ``REPRO_BENCH_SCALE`` environment variable
    (default 0.15, i.e. the default ``2k`` dataset shrinks to ~350
    areas so the whole suite runs in minutes). The full-size runs for
    EXPERIMENTS.md use :mod:`repro.bench.report` with ``--scale 1``.
    """
    return float(os.environ.get(_SCALE_ENV, _DEFAULT_BENCH_SCALE))


def bench_dataset(name: str = "2k", scale: float | None = None) -> AreaCollection:
    """Load a registry dataset at the benchmark scale."""
    return load_dataset(name, scale=bench_scale() if scale is None else scale)


def bench_config(
    n_areas: int, rng_seed: int = 7, enable_tabu: bool = True
) -> FaCTConfig:
    """The FaCT configuration used across all benchmarks.

    One construction pass and the paper's default Tabu knobs (tenure
    10, patience = dataset size), with a hard iteration cap of ``4n``
    so a pathological search cannot stall a benchmark run.
    """
    return FaCTConfig(
        rng_seed=rng_seed,
        construction_iterations=1,
        enable_tabu=enable_tabu,
        tabu_max_no_improve=n_areas,
        tabu_max_iterations=4 * n_areas,
    )


@dataclass(frozen=True)
class ExperimentRow:
    """One measured experiment cell.

    Field names mirror the quantities the paper plots: ``p``,
    unassigned count, construction/tabu seconds and heterogeneity
    improvement.
    """

    solver: str
    combo: str
    dataset: str
    n_areas: int
    setting: str
    p: int
    n_unassigned: int
    construction_seconds: float
    tabu_seconds: float
    improvement: float
    heterogeneity: float

    @property
    def total_seconds(self) -> float:
        """Construction plus Tabu wall-clock time."""
        return self.construction_seconds + self.tabu_seconds

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (used by the report writer)."""
        return {
            "solver": self.solver,
            "combo": self.combo,
            "dataset": self.dataset,
            "n_areas": self.n_areas,
            "setting": self.setting,
            "p": self.p,
            "n_unassigned": self.n_unassigned,
            "construction_seconds": round(self.construction_seconds, 4),
            "tabu_seconds": round(self.tabu_seconds, 4),
            "improvement": round(self.improvement, 4),
            "heterogeneity": round(self.heterogeneity, 2),
        }


def run_emp(
    collection: AreaCollection,
    combo: str,
    min_range: Range = None,
    avg_range: Range = None,
    sum_range: Range = None,
    dataset: str = "?",
    enable_tabu: bool = True,
    rng_seed: int = 7,
) -> ExperimentRow:
    """Run FaCT for one combination/threshold cell and measure it."""
    # The setting label names only the explicitly varied ranges: it
    # identifies the table *column*, while the combo identifies the
    # row. Unvaried constraint types keep their Table II defaults and
    # would only blur the column labels.
    kwargs = {}
    settings = []
    if min_range is not None:
        kwargs["min_range"] = min_range
        settings.append(f"MIN{format_range(min_range)}")
    if avg_range is not None:
        kwargs["avg_range"] = avg_range
        settings.append(f"AVG{format_range(avg_range)}")
    if sum_range is not None:
        kwargs["sum_range"] = sum_range
        settings.append(f"SUM{format_range(sum_range)}")
    constraints = combo_constraints(combo, **kwargs)
    config = bench_config(
        len(collection), rng_seed=rng_seed, enable_tabu=enable_tabu
    )
    solution = FaCT(config).solve(collection, constraints)
    return ExperimentRow(
        solver="FaCT",
        combo=combo,
        dataset=dataset,
        n_areas=len(collection),
        setting=" ".join(settings) or "defaults",
        p=solution.p,
        n_unassigned=solution.n_unassigned,
        construction_seconds=solution.construction_seconds,
        tabu_seconds=solution.tabu_seconds,
        improvement=solution.improvement,
        heterogeneity=solution.heterogeneity,
    )


def run_maxp(
    collection: AreaCollection,
    threshold: float,
    dataset: str = "?",
    enable_tabu: bool = True,
    rng_seed: int = 7,
) -> ExperimentRow:
    """Run the classic max-p baseline (the paper's *MP* rows)."""
    n = len(collection)
    config = MaxPConfig(
        rng_seed=rng_seed,
        iterations=1,
        enable_tabu=enable_tabu,
        tabu_max_no_improve=n,
        tabu_max_iterations=4 * n,
    )
    result = solve_maxp(collection, schema.TOTALPOP, threshold, config)
    return ExperimentRow(
        solver="MP",
        combo="MP",
        dataset=dataset,
        n_areas=n,
        setting=f"SUM{format_range((threshold, None))}",
        p=result.p,
        n_unassigned=result.n_unassigned,
        construction_seconds=result.construction_seconds,
        tabu_seconds=result.tabu_seconds,
        improvement=result.improvement,
        heterogeneity=result.heterogeneity,
    )
