"""Pluggable optimization objectives for the local-search phase.

Definition III.3 fixes the default objective — pairwise-absolute-
deviation heterogeneity — but the paper explicitly notes that "our
work can support alternative definitions, such as improving spatial
compactness or balancing multiple criteria. The reason is that our
second phase, which is based on Tabu search […], can deal with
different optimization functions." This module delivers that claim:

- :class:`HeterogeneityObjective` — the default ``H(P)``;
- :class:`CompactnessObjective` — within-region centroid dispersion
  (the moment-of-inertia compactness proxy used in the p-compact-
  regions literature);
- :class:`WeightedObjective` — a weighted sum balancing several
  criteria.

Every objective scores a region in isolation (the total is the sum
over regions) and must price a prospective move in O(1)–O(log g) so
the Tabu scan stays fast. The Tabu phase itself only sees the
:class:`Objective` interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..core.region import Region
from ..exceptions import DatasetError
from .state import SolutionState

__all__ = [
    "Objective",
    "HeterogeneityObjective",
    "CompactnessObjective",
    "WeightedObjective",
]


class Objective(ABC):
    """Interface between the Tabu phase and an optimization function.

    Lifecycle: :meth:`attach` is called once with the solution state;
    :meth:`delta_move` prices a prospective move; :meth:`apply_move`
    is called after the state mutation so the objective can update any
    internal caches. :meth:`total` returns the current overall score
    (lower is better).
    """

    name = "objective"

    @abstractmethod
    def attach(self, state: SolutionState) -> None:
        """Bind to a solution state and build per-region caches."""

    @abstractmethod
    def total(self) -> float:
        """Current overall score (lower is better)."""

    @abstractmethod
    def delta_move(self, donor: Region, receiver: Region, area_id: int) -> float:
        """Score change if *area_id* moved from *donor* to *receiver*."""

    def apply_move(self, donor_id: int, receiver_id: int, area_id: int) -> None:
        """Update caches after the move was executed (default: none)."""


class HeterogeneityObjective(Objective):
    """The paper's default objective: ``H(P)`` (Definition III.3).

    Stateless — regions already maintain their own heterogeneity
    incrementally, including O(log g) delta queries.
    """

    name = "heterogeneity"

    def attach(self, state: SolutionState) -> None:
        self._state = state

    def total(self) -> float:
        return self._state.total_heterogeneity()

    def delta_move(self, donor: Region, receiver: Region, area_id: int) -> float:
        return donor.heterogeneity_delta_remove(
            area_id
        ) + receiver.heterogeneity_delta_add(area_id)


class CompactnessObjective(Objective):
    """Spatial compactness: within-region centroid dispersion.

    Region score = ``sum_i ||c_i - mean_c||²`` over member-area
    centroids — the moment-of-inertia measure minimized by the
    p-compact-regions family. Maintained per region as running sums
    (Σx, Σy, Σx², Σy², g), giving O(1) totals and move deltas.

    Requires every area to carry a polygon (centroids come from the
    geometry); raises :class:`DatasetError` otherwise.
    """

    name = "compactness"

    def attach(self, state: SolutionState) -> None:
        self._state = state
        self._centroids: dict[int, tuple[float, float]] = {}
        for area in state.collection:
            if area.polygon is None:
                raise DatasetError(
                    f"area {area.area_id} has no polygon; the compactness "
                    "objective needs centroids"
                )
            centroid = area.polygon.centroid
            self._centroids[area.area_id] = (centroid.x, centroid.y)
        self._sums: dict[int, list[float]] = {}
        for region in state.iter_regions():
            self._sums[region.region_id] = self._sums_of(region.area_ids)

    def _sums_of(self, area_ids) -> list[float]:
        sx = sy = sxx = syy = 0.0
        count = 0
        for area_id in area_ids:
            x, y = self._centroids[area_id]
            sx += x
            sy += y
            sxx += x * x
            syy += y * y
            count += 1
        return [sx, sy, sxx, syy, float(count)]

    @staticmethod
    def _score(sums: Sequence[float]) -> float:
        sx, sy, sxx, syy, count = sums
        if count <= 0:
            return 0.0
        return (sxx - sx * sx / count) + (syy - sy * sy / count)

    def total(self) -> float:
        return sum(self._score(sums) for sums in self._sums.values())

    def _score_after(self, sums, x, y, sign) -> float:
        sx, sy, sxx, syy, count = sums
        return self._score(
            [
                sx + sign * x,
                sy + sign * y,
                sxx + sign * x * x,
                syy + sign * y * y,
                count + sign,
            ]
        )

    def delta_move(self, donor: Region, receiver: Region, area_id: int) -> float:
        x, y = self._centroids[area_id]
        donor_sums = self._sums[donor.region_id]
        receiver_sums = self._sums[receiver.region_id]
        return (
            self._score_after(donor_sums, x, y, -1)
            - self._score(donor_sums)
            + self._score_after(receiver_sums, x, y, +1)
            - self._score(receiver_sums)
        )

    def apply_move(self, donor_id: int, receiver_id: int, area_id: int) -> None:
        x, y = self._centroids[area_id]
        for region_id, sign in ((donor_id, -1), (receiver_id, +1)):
            sums = self._sums[region_id]
            sums[0] += sign * x
            sums[1] += sign * y
            sums[2] += sign * x * x
            sums[3] += sign * y * y
            sums[4] += sign


class WeightedObjective(Objective):
    """A weighted sum of objectives — "balancing multiple criteria".

    ``WeightedObjective([(HeterogeneityObjective(), 1.0),
    (CompactnessObjective(), 0.5)])`` optimizes
    ``H(P) + 0.5 · compactness``. Because the component scales can
    differ wildly, each component is normalized by its score on the
    initial partition (so weights express *relative* emphasis).
    """

    name = "weighted"

    def __init__(self, components: Sequence[tuple[Objective, float]]):
        if not components:
            raise DatasetError("WeightedObjective needs at least one component")
        self._components = list(components)
        self._scales: list[float] = []

    def attach(self, state: SolutionState) -> None:
        self._scales = []
        for objective, _weight in self._components:
            objective.attach(state)
            initial = objective.total()
            self._scales.append(initial if initial > 0 else 1.0)

    def total(self) -> float:
        return sum(
            weight * objective.total() / scale
            for (objective, weight), scale in zip(self._components, self._scales)
        )

    def delta_move(self, donor: Region, receiver: Region, area_id: int) -> float:
        return sum(
            weight * objective.delta_move(donor, receiver, area_id) / scale
            for (objective, weight), scale in zip(self._components, self._scales)
        )

    def apply_move(self, donor_id: int, receiver_id: int, area_id: int) -> None:
        for objective, _weight in self._components:
            objective.apply_move(donor_id, receiver_id, area_id)
