"""Pluggable optimization objectives for the local-search phase.

Definition III.3 fixes the default objective — pairwise-absolute-
deviation heterogeneity — but the paper explicitly notes that "our
work can support alternative definitions, such as improving spatial
compactness or balancing multiple criteria. The reason is that our
second phase, which is based on Tabu search […], can deal with
different optimization functions." This module delivers that claim:

- :class:`HeterogeneityObjective` — the default ``H(P)``;
- :class:`CompactnessObjective` — within-region centroid dispersion
  (the moment-of-inertia compactness proxy used in the p-compact-
  regions literature);
- :class:`WeightedObjective` — a weighted sum balancing several
  criteria.

Every objective scores a region in isolation (the total is the sum
over regions) and must price a prospective move in O(1)–O(log g) so
the Tabu scan stays fast. The Tabu phase itself only sees the
:class:`Objective` interface.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Sequence

from ..core.perf import hotpath_caches_enabled
from ..core.region import Region
from ..exceptions import DatasetError
from .state import SolutionState

__all__ = [
    "Objective",
    "HeterogeneityObjective",
    "CompactnessObjective",
    "WeightedObjective",
]


class Objective(ABC):
    """Interface between the Tabu phase and an optimization function.

    Lifecycle: :meth:`attach` is called once with the solution state;
    :meth:`delta_move` prices a prospective move; :meth:`apply_move`
    is called after the state mutation so the objective can update any
    internal caches. :meth:`total` returns the current overall score
    (lower is better).
    """

    name = "objective"

    @abstractmethod
    def attach(self, state: SolutionState) -> None:
        """Bind to a solution state and build per-region caches."""

    @abstractmethod
    def total(self) -> float:
        """Current overall score (lower is better)."""

    @abstractmethod
    def delta_move(self, donor: Region, receiver: Region, area_id: int) -> float:
        """Score change if *area_id* moved from *donor* to *receiver*."""

    def apply_move(self, donor_id: int, receiver_id: int, area_id: int) -> None:
        """Update caches after the move was executed (default: none)."""

    # Attach-time state (``_state`` plus any per-region caches) must
    # never travel to worker processes: it drags the whole solution
    # state through pickle. Portfolio workers receive a detached copy
    # and call :meth:`attach` on their own rebuilt state.
    _ATTACH_ATTRS: tuple[str, ...] = ("_state",)

    def detached(self) -> "Objective":
        """A copy of this objective with all attach-time state dropped.

        The copy is safe to pickle into a worker process; it must be
        re-:meth:`attach`-ed before use.
        """
        clone = copy.copy(self)
        for attr in self._ATTACH_ATTRS:
            clone.__dict__.pop(attr, None)
        return clone


class HeterogeneityObjective(Objective):
    """The paper's default objective: ``H(P)`` (Definition III.3).

    Stateless — regions already maintain their own heterogeneity
    incrementally, including O(log g) delta queries off the maintained
    sorted-values + prefix-sums structure (``delta_fastpath`` /
    ``delta_recompute`` in :class:`~repro.core.perf.PerfCounters`
    record which path served each query).
    """

    name = "heterogeneity"

    def attach(self, state: SolutionState) -> None:
        self._state = state

    def total(self) -> float:
        return self._state.total_heterogeneity()

    def delta_move(self, donor: Region, receiver: Region, area_id: int) -> float:
        return donor.heterogeneity_delta_remove(
            area_id
        ) + receiver.heterogeneity_delta_add(area_id)


class CompactnessObjective(Objective):
    """Spatial compactness: within-region centroid dispersion.

    Region score = ``sum_i ||c_i - mean_c||²`` over member-area
    centroids — the moment-of-inertia measure minimized by the
    p-compact-regions family. Maintained per region as running sums
    (Σx, Σy, Σx², Σy², g), giving O(1) totals and move deltas.

    With the hot-path cache gate off
    (:func:`repro.core.perf.hotpath_caches_enabled`) the maintained
    sums are ignored and every total/delta recomputes the coordinate
    sums from the live region membership — the reference path. The two
    paths agree to float accumulation order (the incremental path adds
    and subtracts terms the recompute path re-sums fresh), so
    comparisons belong at ``pytest.approx`` tolerance, unlike the
    heterogeneity structure whose two paths are bit-identical.

    Requires every area to carry a polygon (centroids come from the
    geometry); raises :class:`DatasetError` otherwise.
    """

    name = "compactness"

    _ATTACH_ATTRS = ("_state", "_centroids", "_sums")

    def attach(self, state: SolutionState) -> None:
        self._state = state
        self._centroids: dict[int, tuple[float, float]] = {}
        for area in state.collection:
            if area.polygon is None:
                raise DatasetError(
                    f"area {area.area_id} has no polygon; the compactness "
                    "objective needs centroids"
                )
            centroid = area.polygon.centroid
            self._centroids[area.area_id] = (centroid.x, centroid.y)
        self._sums: dict[int, list[float]] = {}
        for region in state.iter_regions():
            # Sorted member order keeps the accumulated sums identical
            # across processes (portfolio workers rebuild their own).
            self._sums[region.region_id] = self._sums_of(
                sorted(region.area_ids)
            )

    def _sums_of(self, area_ids) -> list[float]:
        sx = sy = sxx = syy = 0.0
        count = 0
        for area_id in area_ids:
            x, y = self._centroids[area_id]
            sx += x
            sy += y
            sxx += x * x
            syy += y * y
            count += 1
        return [sx, sy, sxx, syy, float(count)]

    def _region_sums(self, region: Region) -> list[float]:
        """Maintained sums when the gate is on; fresh recompute (in
        sorted member order, for determinism) when it is off."""
        perf = self._state.perf
        if hotpath_caches_enabled():
            sums = self._sums.get(region.region_id)
            if sums is None:
                # A region created after attach (construction-time use
                # of the objective) enters the maintained map lazily.
                sums = self._sums[region.region_id] = self._sums_of(
                    sorted(region.area_ids)
                )
                if perf is not None:
                    perf.delta_recompute += 1
            elif perf is not None:
                perf.delta_fastpath += 1
            return sums
        if perf is not None:
            perf.delta_recompute += 1
        return self._sums_of(sorted(region.area_ids))

    @staticmethod
    def _score(sums: Sequence[float]) -> float:
        sx, sy, sxx, syy, count = sums
        if count <= 0:
            return 0.0
        return (sxx - sx * sx / count) + (syy - sy * sy / count)

    def total(self) -> float:
        if not hotpath_caches_enabled():
            return sum(
                self._score(self._sums_of(sorted(region.area_ids)))
                for region in self._state.iter_regions()
            )
        return sum(
            self._score(self._region_sums(region))
            for region in self._state.iter_regions()
        )

    def _score_after(self, sums, x, y, sign) -> float:
        sx, sy, sxx, syy, count = sums
        return self._score(
            [
                sx + sign * x,
                sy + sign * y,
                sxx + sign * x * x,
                syy + sign * y * y,
                count + sign,
            ]
        )

    def delta_move(self, donor: Region, receiver: Region, area_id: int) -> float:
        x, y = self._centroids[area_id]
        donor_sums = self._region_sums(donor)
        receiver_sums = self._region_sums(receiver)
        return (
            self._score_after(donor_sums, x, y, -1)
            - self._score(donor_sums)
            + self._score_after(receiver_sums, x, y, +1)
            - self._score(receiver_sums)
        )

    def apply_move(self, donor_id: int, receiver_id: int, area_id: int) -> None:
        x, y = self._centroids[area_id]
        perf = self._state.perf
        for region_id, sign in ((donor_id, -1), (receiver_id, +1)):
            sums = self._sums.get(region_id)
            if sums is None:
                continue  # never materialized (gate off since attach)
            sums[0] += sign * x
            sums[1] += sign * y
            sums[2] += sign * x * x
            sums[3] += sign * y * y
            sums[4] += sign
            if perf is not None:
                perf.objective_struct_updates += 1


class WeightedObjective(Objective):
    """A weighted sum of objectives — "balancing multiple criteria".

    ``WeightedObjective([(HeterogeneityObjective(), 1.0),
    (CompactnessObjective(), 0.5)])`` optimizes
    ``H(P) + 0.5 · compactness``. Because the component scales can
    differ wildly, each component is normalized by its score on the
    initial partition (so weights express *relative* emphasis).
    """

    name = "weighted"

    def __init__(self, components: Sequence[tuple[Objective, float]]):
        if not components:
            raise DatasetError("WeightedObjective needs at least one component")
        self._components = list(components)
        self._scales: list[float] = []

    def attach(self, state: SolutionState) -> None:
        self._scales = []
        for objective, _weight in self._components:
            objective.attach(state)
            initial = objective.total()
            self._scales.append(initial if initial > 0 else 1.0)

    def total(self) -> float:
        return sum(
            weight * objective.total() / scale
            for (objective, weight), scale in zip(self._components, self._scales)
        )

    def delta_move(self, donor: Region, receiver: Region, area_id: int) -> float:
        return sum(
            weight * objective.delta_move(donor, receiver, area_id) / scale
            for (objective, weight), scale in zip(self._components, self._scales)
        )

    def apply_move(self, donor_id: int, receiver_id: int, area_id: int) -> None:
        for objective, _weight in self._components:
            objective.apply_move(donor_id, receiver_id, area_id)

    def detached(self) -> "WeightedObjective":
        return WeightedObjective(
            [
                (objective.detached(), weight)
                for objective, weight in self._components
            ]
        )
