"""The FaCT solver facade — the library's main entry point.

Typical usage::

    from repro import FaCT, FaCTConfig, ConstraintSet
    from repro.core import min_constraint, avg_constraint, sum_constraint
    from repro.data import load_dataset

    collection = load_dataset("2k")
    constraints = ConstraintSet([
        min_constraint("POP16UP", upper=3000),
        avg_constraint("EMPLOYED", 1500, 3500),
        sum_constraint("TOTALPOP", lower=20000),
    ])
    solution = FaCT(FaCTConfig(rng_seed=7)).solve(collection, constraints)
    print(solution.p, solution.heterogeneity, solution.improvement)

The solver runs the three phases in order — feasibility, construction,
Tabu local search — and returns an :class:`EMPSolution` carrying the
final partition plus the per-phase statistics the paper reports
(construction time, tabu time, ``p``, unassigned count, heterogeneity
improvement).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.area import AreaCollection
from ..core.constraints import Constraint, ConstraintSet
from ..core.partition import Partition
from .config import FaCTConfig
from .construction import ConstructionResult, construct
from .feasibility import FeasibilityReport, check_feasibility
from .tabu import TabuResult, tabu_improve

__all__ = ["EMPSolution", "FaCT", "solve_emp"]


@dataclass(frozen=True)
class EMPSolution:
    """Result of one FaCT run.

    Attributes
    ----------
    partition:
        The final regions and ``U_0``.
    feasibility:
        The Phase-1 report.
    construction:
        Phase-2 diagnostics (pass scores, timing).
    tabu:
        Phase-3 diagnostics, or ``None`` when the local search was
        disabled.
    """

    partition: Partition
    feasibility: FeasibilityReport
    construction: ConstructionResult
    tabu: TabuResult | None = None

    # -- the paper's three performance measures (Section VII-A) --------
    @property
    def p(self) -> int:
        """Answer-set size: the number of regions."""
        return self.partition.p

    @property
    def n_unassigned(self) -> int:
        """Size of ``U_0`` (invalid + unassignable areas)."""
        return len(self.partition.unassigned)

    @property
    def construction_seconds(self) -> float:
        """Wall-clock time of feasibility + construction."""
        return self.construction.elapsed_seconds

    @property
    def tabu_seconds(self) -> float:
        """Wall-clock time of the local search (0 when disabled)."""
        return self.tabu.elapsed_seconds if self.tabu else 0.0

    @property
    def total_seconds(self) -> float:
        """Total solver wall-clock time."""
        return self.construction_seconds + self.tabu_seconds

    @property
    def heterogeneity_before(self) -> float:
        """``H(P)`` after construction, before local search."""
        if self.tabu:
            return self.tabu.heterogeneity_before
        return self.construction.state.total_heterogeneity()

    @property
    def heterogeneity(self) -> float:
        """``H(P)`` of the final partition."""
        if self.tabu:
            return self.tabu.heterogeneity_after
        return self.heterogeneity_before

    @property
    def improvement(self) -> float:
        """Relative heterogeneity improvement from the local search."""
        return self.tabu.improvement if self.tabu else 0.0

    def summary(self) -> dict[str, object]:
        """The output statistics FaCT reports to users (Section
        VII-B3), as a plain dict."""
        return {
            "p": self.p,
            "n_unassigned": self.n_unassigned,
            "heterogeneity_before": round(self.heterogeneity_before, 3),
            "heterogeneity_after": round(self.heterogeneity, 3),
            "improvement": round(self.improvement, 4),
            "construction_seconds": round(self.construction_seconds, 4),
            "tabu_seconds": round(self.tabu_seconds, 4),
            "n_invalid_areas": self.feasibility.n_invalid,
            "warnings": list(self.feasibility.warnings),
        }


class FaCT:
    """The three-phase FaCT solver (Feasibility, Construction, Tabu).

    Stateless apart from its :class:`FaCTConfig`; one instance can
    solve many problems.

    Parameters
    ----------
    config:
        Solver knobs (seeds, merge limit, Tabu settings).
    objective:
        Optional :class:`repro.fact.objectives.Objective` for the
        local-search phase — e.g. ``CompactnessObjective()`` or a
        ``WeightedObjective`` balancing several criteria. Defaults to
        the paper's heterogeneity ``H(P)``.
    """

    def __init__(self, config: FaCTConfig | None = None, objective=None):
        self.config = config or FaCTConfig()
        self.objective = objective

    def check(
        self, collection: AreaCollection, constraints: ConstraintSet
    ) -> FeasibilityReport:
        """Run only the feasibility phase (Phase 1)."""
        return check_feasibility(collection, constraints, self.config)

    def solve(
        self,
        collection: AreaCollection,
        constraints: ConstraintSet | None = None,
    ) -> EMPSolution:
        """Solve one EMP instance end to end.

        Raises :class:`repro.exceptions.InfeasibleProblemError` when
        Phase 1 proves the query infeasible on this dataset.
        """
        constraints = _coerce_constraints(constraints)
        feasibility = check_feasibility(collection, constraints, self.config)
        construction = construct(
            collection, constraints, self.config, feasibility=feasibility
        )
        tabu: TabuResult | None = None
        partition = construction.partition
        if self.config.enable_tabu and construction.state.p > 0:
            tabu = tabu_improve(
                construction.state, self.config, objective=self.objective
            )
            partition = tabu.partition
        return EMPSolution(
            partition=partition,
            feasibility=feasibility,
            construction=construction,
            tabu=tabu,
        )


def _coerce_constraints(
    constraints: ConstraintSet | list | tuple | Constraint | None,
) -> ConstraintSet:
    """Accept a ConstraintSet, a single Constraint, an iterable of
    Constraints, or None (unconstrained)."""
    if constraints is None:
        return ConstraintSet()
    if isinstance(constraints, ConstraintSet):
        return constraints
    if isinstance(constraints, Constraint):
        return ConstraintSet([constraints])
    return ConstraintSet(constraints)


def solve_emp(
    collection: AreaCollection,
    constraints=None,
    **config_options,
) -> EMPSolution:
    """One-call convenience wrapper: ``solve_emp(collection,
    [min_constraint(...), ...], rng_seed=7)``."""
    return FaCT(FaCTConfig(**config_options)).solve(collection, constraints)
