"""The FaCT solver facade — the library's main entry point.

Typical usage::

    from repro import FaCT, FaCTConfig, ConstraintSet
    from repro.core import min_constraint, avg_constraint, sum_constraint
    from repro.data import load_dataset

    collection = load_dataset("2k")
    constraints = ConstraintSet([
        min_constraint("POP16UP", upper=3000),
        avg_constraint("EMPLOYED", 1500, 3500),
        sum_constraint("TOTALPOP", lower=20000),
    ])
    solution = FaCT(FaCTConfig(rng_seed=7)).solve(collection, constraints)
    print(solution.p, solution.heterogeneity, solution.improvement)

The solver runs the three phases in order — feasibility, construction,
Tabu local search — and returns an :class:`EMPSolution` carrying the
final partition plus the per-phase statistics the paper reports
(construction time, tabu time, ``p``, unassigned count, heterogeneity
improvement).

Resilience: a run can carry a wall-clock deadline and a cancellation
token (``FaCTConfig(deadline_seconds=...)`` or an explicit
:class:`repro.runtime.Budget` passed to :meth:`FaCT.solve`). On
deadline or cancel the solver returns the best-so-far solution flagged
with a :class:`~repro.runtime.RunStatus` instead of raising — or, with
``strict_interrupt=True``, raises
:class:`repro.exceptions.SolverInterrupted` carrying that same partial
solution. Degenerate constructions (``p == 0`` or almost everything
unassigned) are retried automatically with derived seeds, each attempt
recorded in :attr:`EMPSolution.attempts`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from ..certify import Certificate, certify_partition
from ..core import arrays as arrays_mod
from ..core.area import AreaCollection
from ..core.constraints import Constraint, ConstraintSet
from ..core.partition import Partition
from ..core.perf import PerfCounters
from ..exceptions import SolverInterrupted
from ..obs.telemetry import DISABLED, resolve_telemetry
from ..preflight import PreflightReport, build_report, scan_structure
from ..runtime import Budget, Interrupted, RunStatus
from ..runtime.faults import set_fault_listener
from .checkpointing import SolveLedger
from .config import CertifyLevel, FaCTConfig
from .construction import ConstructionResult, construct
from .feasibility import FeasibilityReport, check_feasibility
from .pool import SolverPool
from .portfolio import improve_portfolio
from .seeding import select_seeds
from .state import SolutionState
from .tabu import TabuResult

__all__ = [
    "ComponentProvenance",
    "ConstructionAttempt",
    "EMPSolution",
    "FaCT",
    "solve_emp",
]


@dataclass(frozen=True)
class ComponentProvenance:
    """Where one connected component's regions came from in a
    decomposed (``FaCTConfig.decompose_components``) solve.

    Attributes
    ----------
    index:
        Component index in the preflight report's canonical order
        (ascending smallest member id).
    n_areas:
        Areas in the component.
    p:
        Regions the component contributed to the merged partition.
    n_unassigned:
        Component areas left in ``U_0``.
    regions:
        The component's region indices *in the merged partition's
        final numbering* (canonical renumbering interleaves regions
        across components, so this is a sparse tuple, not a range).
    status:
        ``"complete"``, an interruption status value, or
        ``"infeasible"`` when the component's own Phase-1 scan proved
        no region can form there (its areas stay unassigned).
    heterogeneity:
        ``H`` summed over the component's regions.
    seconds:
        Wall-clock spent solving the component.
    """

    index: int
    n_areas: int
    p: int
    n_unassigned: int
    regions: tuple[int, ...]
    status: str
    heterogeneity: float
    seconds: float

    def as_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "n_areas": self.n_areas,
            "p": self.p,
            "n_unassigned": self.n_unassigned,
            "regions": list(self.regions),
            "status": self.status,
            "heterogeneity": self.heterogeneity,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class ConstructionAttempt:
    """Diagnostics for one construction attempt under the retry policy.

    The first attempt uses ``FaCTConfig.rng_seed``; retries (triggered
    by a degenerate partition) use seeds derived from it.
    """

    seed: int
    p: int
    n_unassigned: int
    degenerate: bool
    elapsed_seconds: float


@dataclass(frozen=True)
class EMPSolution:
    """Result of one FaCT run.

    Attributes
    ----------
    partition:
        The final regions and ``U_0``.
    feasibility:
        The Phase-1 report.
    construction:
        Phase-2 diagnostics (pass scores, timing) of the winning
        attempt.
    tabu:
        Phase-3 diagnostics, or ``None`` when the local search was
        disabled (or never started because the budget ran out first).
    status:
        ``RunStatus.COMPLETE`` for a full run; ``DEADLINE_EXCEEDED`` or
        ``CANCELLED`` when the run was interrupted and this solution is
        the best one found before the interruption.
    feasibility_seconds:
        Wall-clock time of the Phase-1 scan alone.
    attempts:
        One :class:`ConstructionAttempt` per construction tried by the
        degenerate-retry policy (a single entry for ordinary runs).
    perf:
        Hot-path counters of the winning construction pass and the
        Tabu search that refined it (contiguity-oracle hits/rebuilds,
        candidate evaluations, index traffic), with the per-phase
        wall-clock recorded under ``perf.timings``, plus the solve's
        resilience counters (worker-pool failures/retries/degrades,
        checkpoint writes/replays, certifications). ``None`` only for
        hand-built solutions.
    certificate:
        The :class:`repro.certify.Certificate` of the final partition
        when ``FaCTConfig.certify`` resolved to ``"final"`` or
        ``"paranoid"`` — always a *valid* one, since an invalid
        certification raises instead of returning. ``None`` with
        certification off.
    backend:
        The resolved hot-path backend the run executed under —
        ``"numpy"`` (vectorized array state) or ``"python"`` (scalar
        reference path). Both produce bit-identical partitions; the
        name is recorded so reports and bench artifacts can attribute
        timings. Defaults to ``"python"`` for hand-built solutions.
    preflight:
        The :class:`repro.preflight.PreflightReport` of the gate run
        before construction (``None`` with ``config.preflight`` off).
        Solutions only ever carry reports with no error findings — an
        error raises :class:`repro.exceptions.InfeasibleProblemError`
        instead of solving.
    provenance:
        Per-component :class:`ComponentProvenance` entries of a
        decomposed solve (empty for single-component solves and with
        ``decompose_components`` off).
    """

    partition: Partition
    feasibility: FeasibilityReport
    construction: ConstructionResult
    tabu: TabuResult | None = None
    status: RunStatus = RunStatus.COMPLETE
    feasibility_seconds: float = 0.0
    attempts: tuple[ConstructionAttempt, ...] = ()
    perf: PerfCounters | None = None
    certificate: Certificate | None = None
    backend: str = "python"
    preflight: PreflightReport | None = None
    provenance: tuple[ComponentProvenance, ...] = ()

    # -- the paper's three performance measures (Section VII-A) --------
    @property
    def p(self) -> int:
        """Answer-set size: the number of regions."""
        return self.partition.p

    @property
    def n_unassigned(self) -> int:
        """Size of ``U_0`` (invalid + unassignable areas)."""
        return len(self.partition.unassigned)

    @property
    def construction_seconds(self) -> float:
        """Wall-clock time of feasibility + construction."""
        return self.construction.elapsed_seconds

    @property
    def tabu_seconds(self) -> float:
        """Wall-clock time of the local search (0 when disabled)."""
        return self.tabu.elapsed_seconds if self.tabu else 0.0

    @property
    def total_seconds(self) -> float:
        """Total solver wall-clock time."""
        return self.construction_seconds + self.tabu_seconds

    @property
    def interrupted(self) -> bool:
        """True when this is a best-so-far result of an interrupted run."""
        return self.status is not RunStatus.COMPLETE

    @property
    def phase_seconds(self) -> dict[str, float]:
        """Per-phase wall-clock breakdown."""
        return {
            "feasibility": self.feasibility_seconds,
            "construction": self.construction_seconds,
            "tabu": self.tabu_seconds,
        }

    @property
    def heterogeneity_before(self) -> float:
        """``H(P)`` after construction, before local search."""
        if self.tabu:
            return self.tabu.heterogeneity_before
        return self.construction.state.total_heterogeneity()

    @property
    def heterogeneity(self) -> float:
        """``H(P)`` of the final partition."""
        if self.tabu:
            return self.tabu.heterogeneity_after
        return self.heterogeneity_before

    @property
    def improvement(self) -> float:
        """Relative heterogeneity improvement from the local search."""
        return self.tabu.improvement if self.tabu else 0.0

    def summary(self) -> dict[str, object]:
        """The output statistics FaCT reports to users (Section
        VII-B3), as a plain dict."""
        return {
            "p": self.p,
            "n_unassigned": self.n_unassigned,
            "status": self.status.value,
            "backend": self.backend,
            "heterogeneity_before": round(self.heterogeneity_before, 3),
            "heterogeneity_after": round(self.heterogeneity, 3),
            "improvement": round(self.improvement, 4),
            "construction_seconds": round(self.construction_seconds, 4),
            "tabu_seconds": round(self.tabu_seconds, 4),
            "n_construction_attempts": max(len(self.attempts), 1),
            "n_invalid_areas": self.feasibility.n_invalid,
            "warnings": list(self.feasibility.warnings),
            "perf": self.perf.as_dict() if self.perf is not None else None,
            "certificate": (
                self.certificate.as_dict()
                if self.certificate is not None
                else None
            ),
            "preflight": (
                self.preflight.as_dict()
                if self.preflight is not None
                else None
            ),
            "provenance": [entry.as_dict() for entry in self.provenance],
        }


class FaCT:
    """The three-phase FaCT solver (Feasibility, Construction, Tabu).

    Stateless apart from its :class:`FaCTConfig`; one instance can
    solve many problems.

    Parameters
    ----------
    config:
        Solver knobs (seeds, merge limit, Tabu settings, deadline and
        retry policy).
    objective:
        Optional :class:`repro.fact.objectives.Objective` for the
        local-search phase — e.g. ``CompactnessObjective()`` or a
        ``WeightedObjective`` balancing several criteria. Defaults to
        the paper's heterogeneity ``H(P)``.
    """

    def __init__(self, config: FaCTConfig | None = None, objective=None):
        self.config = config or FaCTConfig()
        self.objective = objective

    def check(
        self, collection: AreaCollection, constraints: ConstraintSet
    ) -> FeasibilityReport:
        """Run only the feasibility phase (Phase 1)."""
        return check_feasibility(collection, constraints, self.config)

    def solve(
        self,
        collection: AreaCollection,
        constraints: ConstraintSet | None = None,
        budget: Budget | None = None,
        resume_from=None,
        telemetry=None,
    ) -> EMPSolution:
        """Solve one EMP instance end to end.

        Parameters
        ----------
        budget:
            Optional :class:`repro.runtime.Budget` to observe. When
            omitted, one is built from ``config.deadline_seconds``
            (unlimited by default). Deadline expiry or cancellation of
            the budget's token ends the run gracefully at the next
            checkpoint: the best-so-far solution is returned flagged
            with its :class:`~repro.runtime.RunStatus` — or, with
            ``config.strict_interrupt``, raised inside
            :class:`repro.exceptions.SolverInterrupted` (carrying the
            partial solution, its labels and — when certification is
            on — its certificate).
        resume_from:
            Path of a solve-checkpoint file written by an earlier
            (killed or interrupted) run of the *same* problem
            (``config.checkpoint_path``). Recorded construction passes
            and portfolio members are replayed instead of recomputed,
            and the run continues **bit-identically** to an
            uninterrupted run with the same seed, at any ``n_jobs``.
            Checkpointing continues into the same file, which is
            deleted once the solve completes. Raises
            :class:`repro.exceptions.CheckpointError` when the file is
            missing, malformed or fingerprinted for a different
            problem.
        telemetry:
            Optional :class:`repro.obs.SolveTelemetry` to record the
            run into. When omitted, one is built from
            ``config.trace_path`` / ``config.metrics_path`` — or the
            no-op singleton when neither is set, costing (almost)
            nothing. With telemetry on, the solve becomes one span tree
            (``solve`` → per-phase spans → per-pass/per-member worker
            spans), an append-only JSONL event log and a metrics
            snapshot per phase; the partition itself is bit-identical
            with telemetry on or off.

        Raises :class:`repro.exceptions.InfeasibleProblemError` when
        Phase 1 proves the query infeasible on this dataset, and
        :class:`repro.exceptions.CertificationError` when independent
        certification (``config.certify``) rejects an answer.
        """
        config = self.config
        telemetry = resolve_telemetry(
            telemetry, config.trace_path, config.metrics_path
        )
        previous_listener = None
        if telemetry.enabled:
            # Mirror every injected fault into the event log (before it
            # applies, so even a "fail" fault leaves a record).
            def _on_fault(checkpoint, action, ordinal):
                telemetry.event(
                    "fault.injected",
                    checkpoint=checkpoint,
                    action=action,
                    ordinal=ordinal,
                )

            previous_listener = set_fault_listener(_on_fault)
        # Install the resolved backend for the whole solve — every
        # SolutionState built below (serial phases, pool payload for
        # worker processes, portfolio members) sees the same one.
        previous_backend = arrays_mod.set_active_backend(
            config.resolved_backend()
        )
        try:
            return self._solve_traced(
                collection, constraints, budget, resume_from, telemetry
            )
        except BaseException:
            # Idempotent: a strict-interrupt exit has already closed
            # the run with its real status.
            telemetry.close(status="error")
            raise
        finally:
            arrays_mod.set_active_backend(previous_backend)
            if telemetry.enabled:
                set_fault_listener(previous_listener)

    def _solve_traced(
        self,
        collection: AreaCollection,
        constraints,
        budget: Budget | None,
        resume_from,
        telemetry,
    ) -> EMPSolution:
        config = self.config
        constraints = _coerce_constraints(constraints)
        backend = arrays_mod.active_backend()

        # Resilience bookkeeping for this solve: the checkpoint ledger
        # (crash recovery) and the counters for pool faults and
        # certifications, merged into the solution's perf at the end.
        runtime_perf = PerfCounters()
        ledger = None
        if resume_from is not None:
            ledger = SolveLedger.load(
                resume_from, config, constraints, collection,
                keep_on_complete=config.checkpoint_keep_on_complete,
            )
        elif config.checkpoint_path is not None:
            ledger = SolveLedger.fresh(
                config.checkpoint_path, config, constraints, collection,
                keep_on_complete=config.checkpoint_keep_on_complete,
            )
        if ledger is not None:
            ledger.telemetry = telemetry

        if budget is None:
            deadline = config.deadline_seconds
            if deadline is not None and ledger is not None:
                # A resumed run only gets the time the original run
                # had left on its deadline.
                deadline = max(deadline - ledger.consumed_seconds, 1e-3)
            budget = Budget(deadline_seconds=deadline)
        budget.start()
        certify_level = config.certify_level()

        tracer = telemetry.tracer
        with tracer.span(
            "solve",
            seed=config.rng_seed,
            n_jobs=config.n_jobs,
            backend=backend,
            resumed=resume_from is not None,
        ) as solve_span:
            phase_started = time.perf_counter()
            preflight: PreflightReport | None = None
            components: tuple = ()
            structure_findings: tuple = ()
            if config.preflight:
                with tracer.span("preflight") as span:
                    components, structure_findings = scan_structure(
                        collection, budget=budget
                    )
                    if span.recording:
                        span.set(
                            n_components=len(components),
                            findings=len(structure_findings),
                        )
            with tracer.span("feasibility") as span:
                feasibility = check_feasibility(
                    collection, constraints, config, budget=budget
                )
                if span.recording:
                    span.set(
                        n_invalid=feasibility.n_invalid,
                        warnings=len(feasibility.warnings),
                    )
                if not config.preflight:
                    feasibility.raise_if_infeasible()
            if config.preflight:
                # Fold structure + Phase-1 diagnostics + per-component
                # relaxation bounds into one report; any error finding
                # rejects the instance before construction spends a
                # single budget checkpoint.
                preflight = build_report(
                    collection,
                    constraints,
                    components,
                    structure_findings,
                    feasibility,
                )
                if preflight.warnings:
                    telemetry.event(
                        "preflight.findings",
                        warnings=[f.code for f in preflight.warnings],
                    )
                preflight.raise_if_failed()
            feasibility_seconds = time.perf_counter() - phase_started
            telemetry.snapshot_metrics("feasibility")
            telemetry.progress("feasibility", 1, 1, force=True)

            provenance: tuple[ComponentProvenance, ...] = ()
            if (
                config.decompose_components
                and preflight is not None
                and preflight.n_components > 1
            ):
                if ledger is not None:
                    # The ledger's pass/member fingerprint scheme has
                    # no slot for per-component work units; decomposed
                    # solves run without snapshots.
                    telemetry.event("decompose.checkpointing_disabled")
                    ledger = None
                tabu: TabuResult | None = None
                construction, attempts, provenance = self._solve_components(
                    collection, constraints, feasibility, preflight,
                    budget, runtime_perf, telemetry,
                )
                partition = construction.partition
                telemetry.snapshot_metrics("construction")
                telemetry.progress("construction", 1, 1, force=True)
            else:
                # One worker pool serves every parallel stage of this
                # solve — all construction passes of all retry
                # attempts, then the Tabu portfolio members. The
                # dataset ships to each worker process once, at pool
                # initialization.
                pool = None
                if config.n_jobs > 1:
                    pool = SolverPool(
                        collection,
                        constraints,
                        feasibility.invalid_areas,
                        config,
                        max_workers=config.n_jobs,
                    )
                try:
                    construction, attempts = self._construct_with_retries(
                        collection, constraints, feasibility, budget, pool,
                        ledger, runtime_perf, telemetry,
                    )
                    if certify_level == CertifyLevel.PARANOID:
                        self._certify(
                            construction.partition,
                            collection,
                            constraints,
                            budget,
                            claimed=construction.state.total_heterogeneity(),
                            label="construction",
                            runtime_perf=runtime_perf,
                            telemetry=telemetry,
                        )
                    if telemetry.enabled:
                        telemetry.metrics.absorb_perf(
                            _merged_perf(construction.state.perf, runtime_perf)
                        )
                    telemetry.snapshot_metrics("construction")
                    telemetry.progress("construction", 1, 1, force=True)

                    tabu = None
                    partition = construction.partition
                    if (
                        config.enable_tabu
                        and construction.state.p > 0
                        and budget.status() is None
                    ):
                        tabu = improve_portfolio(
                            construction.state,
                            config,
                            objective=self.objective,
                            budget=budget,
                            pool=pool,
                            ranked_labels=construction.ranked_labels,
                            ledger=ledger,
                            runtime_perf=runtime_perf,
                            telemetry=telemetry,
                        )
                        partition = tabu.partition
                finally:
                    if pool is not None:
                        pool.shutdown()

            if telemetry.enabled:
                telemetry.metrics.absorb_perf(
                    _merged_perf(construction.state.perf, runtime_perf)
                )
            telemetry.snapshot_metrics("tabu")
            telemetry.progress("tabu", 1, 1, force=True)

            certificate = None
            if certify_level != CertifyLevel.OFF:
                # Tabu's score is H(P) only under the default objective;
                # a custom objective's score is not comparable to the
                # fresh heterogeneity recomputation.
                claimed = None
                if self.objective is None:
                    claimed = (
                        tabu.heterogeneity_after
                        if tabu is not None
                        else construction.state.total_heterogeneity()
                    )
                label = (
                    "interrupted" if budget.status() is not None else "final"
                )
                certificate = self._certify(
                    partition,
                    collection,
                    constraints,
                    budget,
                    claimed=claimed,
                    label=label,
                    runtime_perf=runtime_perf,
                    telemetry=telemetry,
                    provenance=provenance,
                )

            # Status is computed after certification so a cancellation
            # injected at the certify checkpoint still flags the
            # solution.
            status = budget.status() or RunStatus.COMPLETE
            if status is not RunStatus.COMPLETE:
                telemetry.event("run.interrupted", status=status.value)
            if ledger is not None:
                if status is RunStatus.COMPLETE and not ledger.keep_on_complete:
                    ledger.delete()
                runtime_perf.merge(ledger.counters)
            perf = construction.state.perf
            perf.merge(runtime_perf)
            perf.record_seconds("feasibility", feasibility_seconds)
            perf.record_seconds("construction", construction.elapsed_seconds)
            if tabu is not None:
                perf.record_seconds("tabu", tabu.elapsed_seconds)
            if solve_span.recording:
                solve_span.set(
                    p=partition.p,
                    n_unassigned=len(partition.unassigned),
                    status=status.value,
                )
        if telemetry.enabled:
            telemetry.metrics.absorb_perf(perf)
        telemetry.close(status=status.value)
        solution = EMPSolution(
            partition=partition,
            feasibility=feasibility,
            construction=construction,
            tabu=tabu,
            status=status,
            feasibility_seconds=feasibility_seconds,
            attempts=attempts,
            perf=perf,
            certificate=certificate,
            backend=backend,
            preflight=preflight,
            provenance=provenance,
        )
        if solution.interrupted and config.strict_interrupt:
            raise SolverInterrupted(
                f"solver run interrupted ({status.value}); best-so-far "
                f"solution has p={solution.p}",
                solution=solution,
                status=status,
                certificate=certificate,
                best_labels=partition.labels(),
            )
        return solution

    # ------------------------------------------------------------------
    # certification
    # ------------------------------------------------------------------
    @staticmethod
    def _certify(
        partition: Partition,
        collection: AreaCollection,
        constraints: ConstraintSet,
        budget: Budget,
        claimed: float | None,
        label: str,
        runtime_perf: PerfCounters,
        telemetry=DISABLED,
        provenance: tuple = (),
    ) -> Certificate:
        """Run one independent certification pass; raises
        :class:`repro.exceptions.CertificationError` on any violation.

        The ``certify.solution`` fault point fires first. An
        interruption signal there is swallowed — the certification
        still runs (a budget-expired answer deserves verification just
        as much) and the caller picks the status up afterwards.
        """
        try:
            budget.checkpoint("certify.solution")
        except Interrupted:
            pass
        runtime_perf.certifications += 1
        with telemetry.tracer.span("certify", label=label):
            certificate = certify_partition(
                partition,
                collection,
                constraints,
                claimed_heterogeneity=claimed,
                label=label,
                provenance=tuple(
                    entry.as_dict() for entry in provenance
                ),
            ).raise_if_invalid()
        telemetry.event(
            "certify.solution", label=label, p=partition.p, valid=True
        )
        return certificate

    # ------------------------------------------------------------------
    # construction retry policy
    # ------------------------------------------------------------------
    def _construct_with_retries(
        self,
        collection: AreaCollection,
        constraints: ConstraintSet,
        feasibility: FeasibilityReport,
        budget: Budget,
        pool: SolverPool | None = None,
        ledger: SolveLedger | None = None,
        runtime_perf: PerfCounters | None = None,
        telemetry=DISABLED,
    ) -> tuple[ConstructionResult, tuple[ConstructionAttempt, ...]]:
        """Run construction, retrying degenerate outcomes with derived
        seeds up to ``config.construction_retry_attempts`` times.

        Returns the best attempt (largest ``p``, then fewest
        unassigned) and the per-attempt diagnostics.
        """
        config = self.config
        n_valid = len(collection) - feasibility.n_invalid
        attempts: list[ConstructionAttempt] = []
        best: ConstructionResult | None = None
        best_key: tuple | None = None
        with telemetry.tracer.span("construction") as phase_span:
            for attempt_index in range(
                config.construction_retry_attempts + 1
            ):
                attempt_config = (
                    config
                    if attempt_index == 0
                    else replace(
                        config, rng_seed=config.derived_seed(attempt_index)
                    )
                )
                attempt_started = time.perf_counter()
                with telemetry.tracer.span(
                    "attempt",
                    index=attempt_index,
                    seed=attempt_config.rng_seed,
                ) as attempt_span:
                    construction = construct(
                        collection,
                        constraints,
                        attempt_config,
                        feasibility=feasibility,
                        budget=budget,
                        pool=pool,
                        attempt_index=attempt_index,
                        ledger=ledger,
                        runtime_perf=runtime_perf,
                        telemetry=telemetry,
                    )
                    degenerate = _is_degenerate(construction, n_valid, config)
                    if attempt_span.recording:
                        attempt_span.set(
                            p=construction.p,
                            n_unassigned=construction.state.n_unassigned,
                            degenerate=degenerate,
                        )
                attempts.append(
                    ConstructionAttempt(
                        seed=attempt_config.rng_seed,
                        p=construction.p,
                        n_unassigned=construction.state.n_unassigned,
                        degenerate=degenerate,
                        elapsed_seconds=time.perf_counter() - attempt_started,
                    )
                )
                key = (-construction.p, construction.state.n_unassigned)
                if best_key is None or key < best_key:
                    best_key = key
                    best = construction
                if not degenerate or construction.interrupted or n_valid == 0:
                    break
            if phase_span.recording:
                phase_span.set(attempts=len(attempts))
        assert best is not None  # at least one attempt always runs
        return best, tuple(attempts)

    # ------------------------------------------------------------------
    # component decomposition (disconnected geographies)
    # ------------------------------------------------------------------
    def _solve_components(
        self,
        collection: AreaCollection,
        constraints: ConstraintSet,
        feasibility: FeasibilityReport,
        preflight: PreflightReport,
        budget: Budget,
        runtime_perf: PerfCounters,
        telemetry,
    ) -> tuple[
        ConstructionResult,
        tuple[ConstructionAttempt, ...],
        tuple[ComponentProvenance, ...],
    ]:
        """Solve each connected component independently, then merge.

        Components are visited in the preflight report's canonical
        order (ascending smallest member id), each with the same
        ``rng_seed`` and the shared run budget. A component whose own
        Phase-1 scan proves infeasible is *skipped*, not fatal: its
        areas stay unassigned and the skip is recorded in the
        provenance. The merged labels are rebuilt through the
        canonical :meth:`SolutionState.from_labels` — regions
        renumbered by smallest member id, areas inserted ascending —
        so the merged partition is bit-identical at any ``n_jobs``
        and on both backends, exactly like single-component solves.
        """
        config = self.config
        tracer = telemetry.tracer
        merged_labels: dict[int, int] = {}
        attempts_all: list[ConstructionAttempt] = []
        interim: list[dict] = []
        iterations = 0
        offset = 0
        started = time.perf_counter()
        for index, members in enumerate(preflight.components):
            component_started = time.perf_counter()
            with tracer.span(
                "component", index=index, n_areas=len(members)
            ) as component_span:
                sub = collection.subset(members)
                sub_feasibility = check_feasibility(
                    sub, constraints, config, budget=budget
                )
                if not sub_feasibility.feasible:
                    for area_id in members:
                        merged_labels[area_id] = -1
                    interim.append(
                        {
                            "index": index,
                            "members": members,
                            "status": "infeasible",
                            "heterogeneity": 0.0,
                            "seconds": time.perf_counter()
                            - component_started,
                        }
                    )
                    if component_span.recording:
                        component_span.set(p=0, status="infeasible")
                    continue
                pool = None
                if config.n_jobs > 1:
                    pool = SolverPool(
                        sub,
                        constraints,
                        sub_feasibility.invalid_areas,
                        config,
                        max_workers=config.n_jobs,
                    )
                try:
                    construction, attempts = self._construct_with_retries(
                        sub, constraints, sub_feasibility, budget, pool,
                        None, runtime_perf, telemetry,
                    )
                    tabu = None
                    component_partition = construction.partition
                    if (
                        config.enable_tabu
                        and construction.state.p > 0
                        and budget.status() is None
                    ):
                        tabu = improve_portfolio(
                            construction.state,
                            config,
                            objective=self.objective,
                            budget=budget,
                            pool=pool,
                            ranked_labels=construction.ranked_labels,
                            ledger=None,
                            runtime_perf=runtime_perf,
                            telemetry=telemetry,
                        )
                        component_partition = tabu.partition
                finally:
                    if pool is not None:
                        pool.shutdown()
                attempts_all.extend(attempts)
                iterations += construction.iterations
                runtime_perf.merge(construction.state.perf)
                # Offsets only need uniqueness across components; the
                # canonical rebuild below renumbers everything.
                for area_id, label in component_partition.labels().items():
                    merged_labels[area_id] = (
                        offset + label if label >= 0 else -1
                    )
                offset += component_partition.p
                component_status = budget.status()
                interim.append(
                    {
                        "index": index,
                        "members": members,
                        "status": (
                            component_status.value
                            if component_status is not None
                            else "complete"
                        ),
                        "heterogeneity": (
                            tabu.heterogeneity_after
                            if tabu is not None
                            else construction.state.total_heterogeneity()
                        ),
                        "seconds": time.perf_counter() - component_started,
                    }
                )
                if component_span.recording:
                    component_span.set(
                        p=component_partition.p,
                        status=interim[-1]["status"],
                    )

        merged_state = SolutionState.from_labels(
            collection,
            constraints,
            merged_labels,
            excluded=feasibility.invalid_areas,
        )
        merged_partition = merged_state.to_partition()
        final_labels = merged_partition.labels()
        provenance = []
        for entry in interim:
            members = entry["members"]
            regions = tuple(
                sorted(
                    {
                        final_labels[area_id]
                        for area_id in members
                        if final_labels.get(area_id, -1) >= 0
                    }
                )
            )
            provenance.append(
                ComponentProvenance(
                    index=entry["index"],
                    n_areas=len(members),
                    p=len(regions),
                    n_unassigned=len(members) - sum(
                        1
                        for area_id in members
                        if final_labels.get(area_id, -1) >= 0
                    ),
                    regions=regions,
                    status=entry["status"],
                    heterogeneity=entry["heterogeneity"],
                    seconds=round(entry["seconds"], 4),
                )
            )
        merged = ConstructionResult(
            state=merged_state,
            partition=merged_partition,
            feasibility=feasibility,
            seeding=select_seeds(collection, constraints, feasibility),
            iterations=iterations,
            elapsed_seconds=time.perf_counter() - started,
            status=budget.status() or RunStatus.COMPLETE,
        )
        telemetry.event(
            "decompose.merged",
            n_components=len(preflight.components),
            p=merged_partition.p,
        )
        return merged, tuple(attempts_all), tuple(provenance)


def _merged_perf(*counters: PerfCounters) -> PerfCounters:
    """A fresh PerfCounters holding the sum of *counters* (the inputs
    are left untouched — they keep accumulating across phases)."""
    merged = PerfCounters()
    for item in counters:
        merged.merge(item)
    return merged


def _is_degenerate(
    construction: ConstructionResult, n_valid: int, config: FaCTConfig
) -> bool:
    """Degenerate construction: no regions at all, or nearly every
    valid (non-filtered) area left unassigned."""
    if construction.p == 0:
        return True
    if n_valid == 0:
        return False
    ratio = construction.state.n_unassigned / n_valid
    return ratio > config.degenerate_unassigned_ratio


def _coerce_constraints(
    constraints: ConstraintSet | list | tuple | Constraint | None,
) -> ConstraintSet:
    """Accept a ConstraintSet, a single Constraint, an iterable of
    Constraints, or None (unconstrained)."""
    if constraints is None:
        return ConstraintSet()
    if isinstance(constraints, ConstraintSet):
        return constraints
    if isinstance(constraints, Constraint):
        return ConstraintSet([constraints])
    return ConstraintSet(constraints)


def solve_emp(
    collection: AreaCollection,
    constraints=None,
    resume_from=None,
    **config_options,
) -> EMPSolution:
    """One-call convenience wrapper: ``solve_emp(collection,
    [min_constraint(...), ...], rng_seed=7, deadline_seconds=2.0)``."""
    return FaCT(FaCTConfig(**config_options)).solve(
        collection, constraints, resume_from=resume_from
    )
