"""FaCT Phase 2 — the construction phase orchestrator.

Runs the feasibility phase, Step 1 (filtering/seeding), then several
independent randomized construction passes (Steps 2 and 3 each pass)
and keeps the best one: largest ``p``, ties broken by fewest
unassigned areas, then by lower heterogeneity. The winning pass's live
:class:`~repro.fact.state.SolutionState` is handed to the local-search
phase.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.area import AreaCollection
from ..core.constraints import ConstraintSet
from ..core.partition import Partition
from .adjustment import adjust_counting
from .config import FaCTConfig
from .feasibility import FeasibilityReport, check_feasibility
from .growing import grow_regions
from .seeding import SeedingResult, select_seeds
from .state import SolutionState

__all__ = ["ConstructionResult", "construct"]


@dataclass
class ConstructionResult:
    """Outcome of the construction phase.

    Attributes
    ----------
    state:
        The winning pass's live solution state (consumed by Tabu).
    partition:
        Frozen snapshot of that state.
    feasibility:
        The Phase-1 report (invalid areas, warnings).
    seeding:
        The Step-1 seed classification.
    iterations:
        Number of construction passes executed.
    pass_scores:
        ``(p, n_unassigned)`` per pass, for diagnostics/ablations.
    elapsed_seconds:
        Wall-clock construction time (feasibility included).
    """

    state: SolutionState
    partition: Partition
    feasibility: FeasibilityReport
    seeding: SeedingResult
    iterations: int
    pass_scores: list[tuple[int, int]] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def p(self) -> int:
        """Number of regions in the constructed partition."""
        return self.partition.p


def construct(
    collection: AreaCollection,
    constraints: ConstraintSet,
    config: FaCTConfig | None = None,
    feasibility: FeasibilityReport | None = None,
) -> ConstructionResult:
    """Build a feasible initial partition maximizing ``p``.

    Raises :class:`repro.exceptions.InfeasibleProblemError` when the
    feasibility phase proves no solution exists.
    """
    config = config or FaCTConfig()
    started = time.perf_counter()
    if feasibility is None:
        feasibility = check_feasibility(collection, constraints, config)
    feasibility.raise_if_infeasible()
    seeding = select_seeds(collection, constraints, feasibility)

    if config.n_jobs > 1:
        best_state, pass_scores = _run_passes_parallel(
            collection, constraints, config, feasibility, seeding
        )
    else:
        best_state, pass_scores = _run_passes_serial(
            collection, constraints, config, feasibility, seeding
        )

    assert best_state is not None  # construction_iterations >= 1
    return ConstructionResult(
        state=best_state,
        partition=best_state.to_partition(),
        feasibility=feasibility,
        seeding=seeding,
        iterations=config.construction_iterations,
        pass_scores=pass_scores,
        elapsed_seconds=time.perf_counter() - started,
    )


def _run_passes_serial(
    collection: AreaCollection,
    constraints: ConstraintSet,
    config: FaCTConfig,
    feasibility: FeasibilityReport,
    seeding: SeedingResult,
) -> tuple[SolutionState, list[tuple[int, int]]]:
    """The default path: passes share one RNG stream sequentially."""
    rng = config.make_rng()
    best_state: SolutionState | None = None
    best_key: tuple | None = None
    pass_scores: list[tuple[int, int]] = []
    for _ in range(config.construction_iterations):
        state = SolutionState(
            collection, constraints, excluded=feasibility.invalid_areas
        )
        grow_regions(state, seeding, config, rng)
        adjust_counting(state, config, rng)
        pass_scores.append((state.p, state.n_unassigned))
        # maximize p, then minimize unassigned, then minimize H
        key = (-state.p, state.n_unassigned, state.total_heterogeneity())
        if best_key is None or key < best_key:
            best_key = key
            best_state = state
    return best_state, pass_scores


def _construction_pass_worker(
    collection: AreaCollection,
    constraints: ConstraintSet,
    config: FaCTConfig,
    excluded: frozenset[int],
    seeding: SeedingResult,
    pass_seed: int,
) -> tuple[tuple, dict[int, int], tuple[int, int]]:
    """One construction pass in a worker process.

    Returns the comparison key, the area -> region-label mapping and
    the (p, unassigned) score; regions travel back as labels because
    live :class:`SolutionState` objects are cheaper to rebuild than to
    pickle.
    """
    import random

    state = SolutionState(collection, constraints, excluded=excluded)
    rng = random.Random(pass_seed)
    grow_regions(state, seeding, config, rng)
    adjust_counting(state, config, rng)
    labels = {
        area_id: region_id
        for area_id, region_id in state.assignment.items()
        if region_id is not None
    }
    key = (-state.p, state.n_unassigned, state.total_heterogeneity())
    return key, labels, (state.p, state.n_unassigned)


def _run_passes_parallel(
    collection: AreaCollection,
    constraints: ConstraintSet,
    config: FaCTConfig,
    feasibility: FeasibilityReport,
    seeding: SeedingResult,
) -> tuple[SolutionState, list[tuple[int, int]]]:
    """Fan construction passes out over worker processes.

    Each pass gets the deterministic seed ``hash((rng_seed, index))``;
    the best pass's labels are replayed into a fresh state in the
    parent (the Tabu phase needs a live state).
    """
    from concurrent.futures import ProcessPoolExecutor

    pass_seeds = [
        (config.rng_seed * 1_000_003 + index)
        for index in range(config.construction_iterations)
    ]
    workers = min(config.n_jobs, config.construction_iterations)
    results = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                _construction_pass_worker,
                collection,
                constraints,
                config,
                feasibility.invalid_areas,
                seeding,
                pass_seed,
            )
            for pass_seed in pass_seeds
        ]
        for future in futures:
            results.append(future.result())

    pass_scores = [score for _key, _labels, score in results]
    best_key, best_labels, _score = min(results, key=lambda item: item[0])

    # Replay the winning labels into a live state for the Tabu phase.
    state = SolutionState(
        collection, constraints, excluded=feasibility.invalid_areas
    )
    groups: dict[int, list[int]] = {}
    for area_id, label in best_labels.items():
        groups.setdefault(label, []).append(area_id)
    for members in groups.values():
        state.new_region(members)
    return state, pass_scores
