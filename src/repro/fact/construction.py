"""FaCT Phase 2 — the construction phase orchestrator.

Runs the feasibility phase, Step 1 (filtering/seeding), then several
independent randomized construction passes (Steps 2 and 3 each pass)
and keeps the best one: largest ``p``, ties broken by fewest
unassigned areas, then by lower heterogeneity. The winning pass's live
:class:`~repro.fact.state.SolutionState` is handed to the local-search
phase.

Every pass observes an optional :class:`repro.runtime.Budget` at its
iteration boundaries (pass start, each seed, each enclave sweep, each
adjustment phase). On deadline or cancellation the in-flight pass is
*salvaged*, not discarded: construction only ever builds regions out
of whole contiguous pieces, so dissolving the constraint-violating
ones (:func:`repro.fact.adjustment.dissolve_infeasible`) leaves a
valid — if smaller — candidate partition, and the best pass seen so
far is returned flagged with the interruption
:class:`~repro.runtime.RunStatus`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.area import AreaCollection
from ..core.constraints import ConstraintSet
from ..core.partition import Partition
from ..runtime import Budget, Interrupted, RunStatus
from .adjustment import adjust_counting, dissolve_infeasible
from .config import FaCTConfig
from .feasibility import FeasibilityReport, check_feasibility
from .growing import grow_regions
from .seeding import SeedingResult, select_seeds
from .state import SolutionState

__all__ = ["ConstructionResult", "construct"]

# How often the parallel path re-checks its budget while waiting on
# worker processes (workers also enforce their own deadlines).
_PARALLEL_POLL_SECONDS = 0.05


@dataclass
class ConstructionResult:
    """Outcome of the construction phase.

    Attributes
    ----------
    state:
        The winning pass's live solution state (consumed by Tabu).
    partition:
        Frozen snapshot of that state.
    feasibility:
        The Phase-1 report (invalid areas, warnings).
    seeding:
        The Step-1 seed classification.
    iterations:
        Number of construction passes actually executed (equals
        ``config.construction_iterations`` unless interrupted).
    pass_scores:
        ``(p, n_unassigned)`` per executed pass, for diagnostics.
    elapsed_seconds:
        Wall-clock construction time (feasibility included).
    status:
        ``COMPLETE``, or the :class:`~repro.runtime.RunStatus` of the
        deadline/cancel that cut the phase short (the partition is
        then the best-so-far candidate).
    """

    state: SolutionState
    partition: Partition
    feasibility: FeasibilityReport
    seeding: SeedingResult
    iterations: int
    pass_scores: list[tuple[int, int]] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    status: RunStatus = RunStatus.COMPLETE

    @property
    def p(self) -> int:
        """Number of regions in the constructed partition."""
        return self.partition.p

    @property
    def interrupted(self) -> bool:
        """True when the phase stopped on deadline or cancellation."""
        return self.status is not RunStatus.COMPLETE


def construct(
    collection: AreaCollection,
    constraints: ConstraintSet,
    config: FaCTConfig | None = None,
    feasibility: FeasibilityReport | None = None,
    budget: Budget | None = None,
) -> ConstructionResult:
    """Build a feasible initial partition maximizing ``p``.

    Raises :class:`repro.exceptions.InfeasibleProblemError` when the
    feasibility phase proves no solution exists. When *budget* expires
    (or its token is cancelled) mid-phase, returns the best-so-far
    partition flagged with the interruption status instead of raising.
    """
    config = config or FaCTConfig()
    budget = (budget or Budget.unlimited()).start()
    started = time.perf_counter()
    if feasibility is None:
        feasibility = check_feasibility(
            collection, constraints, config, budget=budget
        )
    feasibility.raise_if_infeasible()
    seeding = select_seeds(collection, constraints, feasibility)

    if config.n_jobs > 1:
        best_state, pass_scores, status = _run_passes_parallel(
            collection, constraints, config, feasibility, seeding, budget
        )
    else:
        best_state, pass_scores, status = _run_passes_serial(
            collection, constraints, config, feasibility, seeding, budget
        )

    if best_state is None:
        # Interrupted before any pass produced a candidate: an empty
        # state is still a valid (p=0, all-unassigned) partial answer.
        best_state = SolutionState(
            collection, constraints, excluded=feasibility.invalid_areas
        )
    return ConstructionResult(
        state=best_state,
        partition=best_state.to_partition(),
        feasibility=feasibility,
        seeding=seeding,
        iterations=len(pass_scores),
        pass_scores=pass_scores,
        elapsed_seconds=time.perf_counter() - started,
        status=status or RunStatus.COMPLETE,
    )


def _score_key(state: SolutionState) -> tuple:
    """Pass comparison key: maximize p, then minimize unassigned, then
    minimize H."""
    return (-state.p, state.n_unassigned, state.total_heterogeneity())


def _run_passes_serial(
    collection: AreaCollection,
    constraints: ConstraintSet,
    config: FaCTConfig,
    feasibility: FeasibilityReport,
    seeding: SeedingResult,
    budget: Budget,
) -> tuple[SolutionState | None, list[tuple[int, int]], RunStatus | None]:
    """The default path: passes share one RNG stream sequentially."""
    rng = config.make_rng()
    best_state: SolutionState | None = None
    best_key: tuple | None = None
    pass_scores: list[tuple[int, int]] = []
    status: RunStatus | None = None
    for _ in range(config.construction_iterations):
        state = SolutionState(
            collection, constraints, excluded=feasibility.invalid_areas
        )
        try:
            budget.checkpoint("construction.pass.start")
            grow_regions(state, seeding, config, rng, budget=budget)
            adjust_counting(state, config, rng, budget=budget)
        except Interrupted as signal:
            status = signal.status
            # Salvage the in-flight pass: regions are whole contiguous
            # pieces, so dropping the constraint-violating ones leaves
            # a valid partial candidate.
            dissolve_infeasible(state)
        pass_scores.append((state.p, state.n_unassigned))
        key = _score_key(state)
        if best_key is None or key < best_key:
            best_key = key
            best_state = state
        if status is not None:
            break
    return best_state, pass_scores, status


def _construction_pass_worker(
    collection: AreaCollection,
    constraints: ConstraintSet,
    config: FaCTConfig,
    excluded: frozenset[int],
    seeding: SeedingResult,
    pass_seed: int,
    deadline_seconds: float | None = None,
) -> tuple[tuple, dict[int, int], tuple[int, int], RunStatus | None]:
    """One construction pass in a worker process.

    Returns the comparison key, the area -> region-label mapping, the
    (p, unassigned) score and the pass's interruption status (``None``
    when it ran to completion); regions travel back as labels because
    live :class:`SolutionState` objects are cheaper to rebuild than to
    pickle. *deadline_seconds* is the parent budget's remaining time —
    each worker enforces it locally, since process boundaries make the
    parent's token invisible here.
    """
    import random

    state = SolutionState(collection, constraints, excluded=excluded)
    rng = random.Random(pass_seed)
    worker_budget = (
        Budget(deadline_seconds=deadline_seconds).start()
        if deadline_seconds is not None
        else None
    )
    status: RunStatus | None = None
    try:
        grow_regions(state, seeding, config, rng, budget=worker_budget)
        adjust_counting(state, config, rng, budget=worker_budget)
    except Interrupted as signal:
        status = signal.status
        dissolve_infeasible(state)
    labels = {
        area_id: region_id
        for area_id, region_id in state.assignment.items()
        if region_id is not None
    }
    return _score_key(state), labels, (state.p, state.n_unassigned), status


def _run_passes_parallel(
    collection: AreaCollection,
    constraints: ConstraintSet,
    config: FaCTConfig,
    feasibility: FeasibilityReport,
    seeding: SeedingResult,
    budget: Budget,
) -> tuple[SolutionState | None, list[tuple[int, int]], RunStatus | None]:
    """Fan construction passes out over worker processes.

    Each pass gets a deterministic seed derived from ``rng_seed`` and
    its index, plus the budget's remaining wall-clock time as its own
    local deadline. The parent polls its budget while waiting so a
    cancellation is honored promptly: pending passes are cancelled,
    completed ones are kept, and the best completed pass's labels are
    replayed into a fresh state (the Tabu phase needs a live state).
    """
    from concurrent.futures import ProcessPoolExecutor, wait

    try:
        budget.checkpoint("construction.pass.start")
    except Interrupted as signal:
        return None, [], signal.status

    pass_seeds = [
        (config.rng_seed * 1_000_003 + index)
        for index in range(config.construction_iterations)
    ]
    workers = min(config.n_jobs, config.construction_iterations)
    deadline_remaining = budget.remaining()
    status: RunStatus | None = None
    outcome: dict = {}
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        futures = [
            pool.submit(
                _construction_pass_worker,
                collection,
                constraints,
                config,
                feasibility.invalid_areas,
                seeding,
                pass_seed,
                deadline_remaining,
            )
            for pass_seed in pass_seeds
        ]
        pending = set(futures)
        while pending:
            done, pending = wait(pending, timeout=_PARALLEL_POLL_SECONDS)
            for future in done:
                outcome[future] = future.result()
            status = budget.status()
            if status is not None:
                for future in pending:
                    future.cancel()
                break
    finally:
        pool.shutdown(wait=False, cancel_futures=True)

    # Submission order keeps tie-breaking (and thus the chosen pass)
    # deterministic regardless of completion order.
    results = [outcome[future] for future in futures if future in outcome]
    if status is None:
        # A worker may have tripped its local deadline even though the
        # parent loop never observed the budget as expired.
        for _key, _labels, _score, worker_status in results:
            if worker_status is not None:
                status = worker_status
                break
    if not results:
        return None, [], status

    pass_scores = [score for _key, _labels, score, _status in results]
    _best_key, best_labels, _score, _status = min(
        results, key=lambda item: item[0]
    )

    # Replay the winning labels into a live state for the Tabu phase.
    state = SolutionState(
        collection, constraints, excluded=feasibility.invalid_areas
    )
    groups: dict[int, list[int]] = {}
    for area_id, label in best_labels.items():
        groups.setdefault(label, []).append(area_id)
    for members in groups.values():
        state.new_region(members)
    return state, pass_scores, status
