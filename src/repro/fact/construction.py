"""FaCT Phase 2 — the construction phase orchestrator.

Runs the feasibility phase, Step 1 (filtering/seeding), then several
independent randomized construction passes (Steps 2 and 3 each pass)
and keeps the best one: largest ``p``, ties broken by fewest
unassigned areas, then by lower heterogeneity. The winning pass's
labels are rebuilt into a canonical live
:class:`~repro.fact.state.SolutionState`
(:meth:`SolutionState.from_labels`) which is handed to the local-search
phase.

Every pass runs the same task function
(:func:`repro.fact.pool.construction_pass_task`) on a deterministic
seed derived from ``rng_seed`` and the pass index — in-process when
``n_jobs == 1``, on the solve's :class:`~repro.fact.pool.SolverPool`
otherwise. Because the per-pass seeds, the reduction tie-break
(submission order) and the canonical rebuild are identical on both
paths, construction results are bit-identical at any worker count.

Every pass observes an optional :class:`repro.runtime.Budget` at its
iteration boundaries (pass start, each seed, each enclave sweep, each
adjustment phase). On deadline or cancellation the in-flight pass is
*salvaged*, not discarded: construction only ever builds regions out
of whole contiguous pieces, so dissolving the constraint-violating
ones (:func:`repro.fact.adjustment.dissolve_infeasible`) leaves a
valid — if smaller — candidate partition, and the best pass seen so
far is returned flagged with the interruption
:class:`~repro.runtime.RunStatus`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.area import AreaCollection
from ..core.constraints import ConstraintSet
from ..core.partition import Partition
from ..obs.telemetry import DISABLED
from ..runtime import Budget, Interrupted, RunStatus
from .config import FaCTConfig
from .feasibility import FeasibilityReport, check_feasibility
from .seeding import SeedingResult, select_seeds
from .state import SolutionState

__all__ = ["ConstructionResult", "construct"]

# How often the parallel path re-checks its budget while waiting on
# worker processes (workers also enforce their own deadlines).
_PARALLEL_POLL_SECONDS = 0.05

# (score_key, labels, (p, n_unassigned), status, perf, spans) — what
# one construction pass returns, see pool.construction_pass_task.
_PassResult = tuple


@dataclass
class ConstructionResult:
    """Outcome of the construction phase.

    Attributes
    ----------
    state:
        The winning pass's solution state, canonically rebuilt from
        its labels (consumed by Tabu).
    partition:
        Frozen snapshot of that state.
    feasibility:
        The Phase-1 report (invalid areas, warnings).
    seeding:
        The Step-1 seed classification.
    iterations:
        Number of construction passes actually executed (equals
        ``config.construction_iterations`` unless interrupted).
    pass_scores:
        ``(p, n_unassigned)`` per executed pass, for diagnostics.
    ranked_labels:
        Label snapshots of the executed passes that tied the winning
        pass on ``(p, n_unassigned)``, best first — the starting
        points for the Tabu portfolio. ``ranked_labels[0]`` is the
        winning pass itself.
    elapsed_seconds:
        Wall-clock construction time (feasibility included).
    status:
        ``COMPLETE``, or the :class:`~repro.runtime.RunStatus` of the
        deadline/cancel that cut the phase short (the partition is
        then the best-so-far candidate).
    """

    state: SolutionState
    partition: Partition
    feasibility: FeasibilityReport
    seeding: SeedingResult
    iterations: int
    pass_scores: list[tuple[int, int]] = field(default_factory=list)
    ranked_labels: list[dict[int, int]] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    status: RunStatus = RunStatus.COMPLETE

    @property
    def p(self) -> int:
        """Number of regions in the constructed partition."""
        return self.partition.p

    @property
    def interrupted(self) -> bool:
        """True when the phase stopped on deadline or cancellation."""
        return self.status is not RunStatus.COMPLETE


def construct(
    collection: AreaCollection,
    constraints: ConstraintSet,
    config: FaCTConfig | None = None,
    feasibility: FeasibilityReport | None = None,
    budget: Budget | None = None,
    pool=None,
    attempt_index: int = 0,
    ledger=None,
    runtime_perf=None,
    telemetry=None,
) -> ConstructionResult:
    """Build a feasible initial partition maximizing ``p``.

    Raises :class:`repro.exceptions.InfeasibleProblemError` when the
    feasibility phase proves no solution exists. When *budget* expires
    (or its token is cancelled) mid-phase, returns the best-so-far
    partition flagged with the interruption status instead of raising.

    *pool* is an optional :class:`repro.fact.pool.SolverPool` to run
    passes on when ``config.n_jobs > 1`` — the solver shares one pool
    across its construction attempts and the Tabu portfolio. Without
    one, a temporary pool is created (and torn down) here.

    *ledger* is an optional
    :class:`~repro.fact.checkpointing.SolveLedger`: completed passes
    are recorded to it (keyed by *attempt_index* and pass index) and
    previously recorded passes are replayed instead of recomputed —
    the checkpoint/resume mechanism. *runtime_perf* collects the
    worker-fault counters of the parallel path.

    *telemetry* is an optional :class:`repro.obs.SolveTelemetry`: each
    pass becomes a ``pass`` span (with ``grow``/``enclave``/
    ``extrema``/``adjust`` children) parented under the caller's
    current span — worker-side spans included, stitched back through
    the task results.
    """
    from .pool import SolverPool

    config = config or FaCTConfig()
    telemetry = telemetry if telemetry is not None else DISABLED
    budget = (budget or Budget.unlimited()).start()
    started = time.perf_counter()
    if feasibility is None:
        feasibility = check_feasibility(
            collection, constraints, config, budget=budget
        )
    feasibility.raise_if_infeasible()
    seeding = select_seeds(collection, constraints, feasibility)

    owns_pool = pool is None
    if owns_pool:
        pool = SolverPool(
            collection,
            constraints,
            feasibility.invalid_areas,
            config,
            max_workers=config.n_jobs,
        )
    try:
        if config.n_jobs > 1:
            results, status = _run_passes_parallel(
                config, seeding, budget, pool, attempt_index, ledger,
                runtime_perf, telemetry,
            )
        else:
            results, status = _run_passes_serial(
                config, seeding, budget, pool, attempt_index, ledger,
                telemetry,
            )
    finally:
        if owns_pool:
            pool.shutdown()

    pass_scores = [result[2] for result in results]
    ranked_labels: list[dict[int, int]] = []
    if results:
        # Submission order breaks ties, keeping the chosen pass (and
        # the portfolio's starting points) deterministic regardless of
        # completion order.
        order = sorted(range(len(results)), key=lambda i: (results[i][0], i))
        best_key, best_labels = results[order[0]][0], results[order[0]][1]
        best_perf = results[order[0]][4]
        # Only passes matching the winner's (p, n_unassigned) may seed
        # portfolio members: Tabu preserves both, and the portfolio
        # reduction compares members by objective score alone.
        ranked_labels = [
            results[i][1]
            for i in order
            if results[i][0][:2] == best_key[:2]
        ]
        best_state = SolutionState.from_labels(
            collection,
            constraints,
            best_labels,
            excluded=feasibility.invalid_areas,
            perf=best_perf,
        )
    else:
        # Interrupted before any pass produced a candidate: an empty
        # state is still a valid (p=0, all-unassigned) partial answer.
        best_state = SolutionState(
            collection, constraints, excluded=feasibility.invalid_areas
        )
    return ConstructionResult(
        state=best_state,
        partition=best_state.to_partition(),
        feasibility=feasibility,
        seeding=seeding,
        iterations=len(results),
        pass_scores=pass_scores,
        ranked_labels=ranked_labels,
        elapsed_seconds=time.perf_counter() - started,
        status=status or RunStatus.COMPLETE,
    )


def _score_key(state: SolutionState) -> tuple:
    """Pass comparison key: maximize p, then minimize unassigned, then
    minimize H."""
    return (-state.p, state.n_unassigned, state.total_heterogeneity())


def _run_passes_serial(
    config: FaCTConfig,
    seeding: SeedingResult,
    budget: Budget,
    pool,
    attempt_index: int = 0,
    ledger=None,
    telemetry=DISABLED,
) -> tuple[list[_PassResult], RunStatus | None]:
    """Run the passes in-process, sharing the parent budget (so a
    cancellation is observed mid-pass, not only between passes).

    Passes recorded on *ledger* are replayed instead of recomputed;
    freshly completed ones are recorded as they finish.
    """
    from .pool import construction_pass_task

    span_context = telemetry.span_context()
    results: list[_PassResult] = []
    status: RunStatus | None = None
    for index in range(config.construction_iterations):
        try:
            budget.checkpoint("construction.pass.start")
        except Interrupted as signal:
            status = signal.status
            break
        result = (
            ledger.lookup_pass(attempt_index, index)
            if ledger is not None
            else None
        )
        if result is None:
            result = pool.run_local(
                construction_pass_task,
                seeding,
                config.derived_pass_seed(index),
                config,
                None,
                budget,
                span_context,
                index,
            )
            if ledger is not None:
                ledger.record_pass(attempt_index, index, result, budget)
        else:
            telemetry.event(
                "checkpoint.replay",
                phase="construction",
                attempt=attempt_index,
                index=index,
            )
        telemetry.adopt_spans(result[5])
        try:
            budget.checkpoint("pool.result")
        except Interrupted:
            pass  # observed at the next pass-start checkpoint
        results.append(result)
        telemetry.progress(
            "construction",
            done=len(results),
            total=config.construction_iterations,
            attempt=attempt_index,
        )
        pass_status = result[3]
        if pass_status is not None:
            status = pass_status
            break
    return results, status


def _run_passes_parallel(
    config: FaCTConfig,
    seeding: SeedingResult,
    budget: Budget,
    pool,
    attempt_index: int = 0,
    ledger=None,
    runtime_perf=None,
    telemetry=DISABLED,
) -> tuple[list[_PassResult], RunStatus | None]:
    """Fan the passes out over the worker pool.

    Each pass gets the budget's remaining wall-clock time as its own
    local deadline (the parent's cancellation token is invisible
    across processes). Collection is fault-tolerant
    (:meth:`~repro.fact.pool.SolverPool.collect_resilient`): crashed
    or poisoned passes retry on surviving workers or degrade to
    in-process execution, and a budget interruption cancels pending
    passes while keeping completed ones. Ledger-recorded passes are
    replayed without being submitted at all.
    """
    from .pool import construction_pass_task

    try:
        budget.checkpoint("construction.pass.start")
    except Interrupted as signal:
        return [], signal.status

    replayed: dict[int, _PassResult] = {}
    to_run: list[int] = []
    for index in range(config.construction_iterations):
        replay = (
            ledger.lookup_pass(attempt_index, index)
            if ledger is not None
            else None
        )
        if replay is not None:
            replayed[index] = replay
            telemetry.event(
                "checkpoint.replay",
                phase="construction",
                attempt=attempt_index,
                index=index,
            )
        else:
            to_run.append(index)

    span_context = telemetry.span_context()
    deadline_remaining = budget.remaining()
    submit_args = [
        (
            seeding,
            config.derived_pass_seed(index),
            config,
            deadline_remaining,
            None,
            span_context,
            index,
        )
        for index in to_run
    ]
    local_args = [
        (
            seeding,
            config.derived_pass_seed(index),
            config,
            None,
            budget,
            span_context,
            index,
        )
        for index in to_run
    ]

    completed = {"count": len(replayed)}
    if replayed:
        telemetry.progress(
            "construction",
            done=completed["count"],
            total=config.construction_iterations,
            attempt=attempt_index,
        )

    def _record(position: int, result: _PassResult) -> None:
        if ledger is not None:
            ledger.record_pass(attempt_index, to_run[position], result, budget)
        # Live fan-out progress: counts only (completion order is
        # nondeterministic; the count is not).
        completed["count"] += 1
        telemetry.progress(
            "construction",
            done=completed["count"],
            total=config.construction_iterations,
            attempt=attempt_index,
        )

    collected, status = pool.collect_resilient(
        construction_pass_task,
        submit_args,
        local_args,
        budget=budget,
        perf=runtime_perf,
        retry_policy=config.pool_retry_policy(),
        task_deadline=config.worker_task_deadline_seconds,
        on_result=_record,
        poll_seconds=_PARALLEL_POLL_SECONDS,
        telemetry=telemetry,
    )

    outcome = dict(replayed)
    for position, result in collected.items():
        outcome[to_run[position]] = result
    # Pass-index order == submission order, like the serial path appends.
    results = [outcome[index] for index in sorted(outcome)]
    for result in results:
        # Adoption in pass-index order keeps the event log deterministic
        # regardless of worker completion order.
        telemetry.adopt_spans(result[5])
    if status is None:
        # A worker may have tripped its local deadline even though the
        # parent loop never observed the budget as expired.
        for result in results:
            if result[3] is not None:
                status = result[3]
                break
    return results, status
