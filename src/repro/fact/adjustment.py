"""FaCT Step 3 — Monotonic Adjustments (Section V-B).

Satisfies the SUM and COUNT (counting) constraints while preserving
everything Step 2 established. Counting aggregates are monotonic in
the member set (the paper assumes non-negative attribute values), so
regions below a lower bound need to *gain* areas and regions above an
upper bound need to *shed* areas. The step builds on the classic
max-p-regions construction [Wei, Rey & Knaap 2020] and proceeds in
five ordered phases:

A. **Absorb** — regions below a lower bound absorb adjacent unassigned
   areas (validated against the AVG constraints and the counting upper
   bounds; extrema constraints can never be broken by adding a
   filtered-valid area).
B. **Swap** — still-deficient regions pull boundary areas from
   adjacent donor regions when the donor stays contiguous and valid
   (the paper's swap with donor-connectivity validation).
C. **Merge** — still-deficient regions merge with adjacent regions
   when the union respects every upper bound (AVG and extrema are
   automatically preserved under union).
D. **Trim** — regions above an upper bound shed removable boundary
   areas back to the unassigned pool.
E. **Dissolve** — regions that still violate any constraint are
   removed and their areas become unassigned ("when no changes can be
   made, the infeasible regions are removed").
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.constraints import Constraint
from ..core.region import Region
from ..obs.spans import NULL_TRACER
from .config import FaCTConfig
from .state import SolutionState

__all__ = ["adjust_counting", "dissolve_infeasible"]


def adjust_counting(
    state: SolutionState,
    config: FaCTConfig,
    rng: random.Random,
    budget=None,
    tracer=None,
) -> None:
    """Run Step 3 over *state* (call after :func:`grow_regions`).

    *budget* is an optional :class:`repro.runtime.Budget` checked at
    every phase boundary (absorb → swap → merge → trim → dissolve); an
    exhausted budget raises :class:`repro.runtime.Interrupted` and the
    caller dissolves whatever regions the finished phases left invalid.

    *tracer* is an optional :class:`repro.obs.Tracer`; the whole step
    becomes one ``adjust`` span carrying the final state shape.
    """

    def _phase_boundary() -> None:
        if budget is not None:
            budget.checkpoint("construction.adjust.phase")

    if tracer is None:
        tracer = NULL_TRACER
    with tracer.span("adjust") as span:
        counting = state.constraints.counting
        _phase_boundary()
        if counting:
            _absorb_unassigned(state, config, rng)
            _phase_boundary()
            _swap_from_neighbors(state, rng)
            _phase_boundary()
            _merge_deficient(state)
            _phase_boundary()
            _trim_oversized(state, rng)
            _phase_boundary()
        dissolve_infeasible(state)
        if span.recording:
            span.set(
                p=state.p,
                n_unassigned=state.n_unassigned,
                heterogeneity=state.total_heterogeneity(),
            )


# ----------------------------------------------------------------------
# shared predicates
# ----------------------------------------------------------------------

def _violates_lower(region: Region, counting: Sequence[Constraint]) -> bool:
    return any(region.constraint_value(c) < c.lower for c in counting)


def _violates_upper(region: Region, counting: Sequence[Constraint]) -> bool:
    return any(region.constraint_value(c) > c.upper for c in counting)


def _safe_to_add(state: SolutionState, region: Region, area_id: int) -> bool:
    """Adding *area_id* keeps the AVG constraints satisfied and no
    counting constraint above its upper bound. (Extrema constraints
    cannot be violated by adding a filtered-valid area, and counting
    lower bounds only get closer.)"""
    for c in state.constraints.avgs:
        if not c.contains(region.value_after_add(c, area_id)):
            return False
    for c in state.constraints.counting:
        if region.value_after_add(c, area_id) > c.upper:
            return False
    return True


# ----------------------------------------------------------------------
# Phase A — absorb unassigned areas into deficient regions
# ----------------------------------------------------------------------

def _absorb_unassigned(
    state: SolutionState, config: FaCTConfig, rng: random.Random
) -> None:
    counting = state.constraints.counting
    for region_id in list(state.regions):
        region = state.regions.get(region_id)
        if region is None:
            continue
        while _violates_lower(region, counting):
            frontier = state.unassigned_neighbors(region)
            state.perf.candidate_evaluations += len(frontier)
            candidates = [
                area_id
                for area_id in frontier
                if _safe_to_add(state, region, area_id)
            ]
            if not candidates:
                break
            choice = (
                rng.choice(candidates)
                if config.pickup == "random"
                else min(candidates, key=region.heterogeneity_delta_add)
            )
            state.assign(choice, region)


# ----------------------------------------------------------------------
# Phase B — swap boundary areas from neighbor regions
# ----------------------------------------------------------------------

def _swap_from_neighbors(state: SolutionState, rng: random.Random) -> None:
    counting = state.constraints.counting
    all_constraints = state.constraints
    for region_id in list(state.regions):
        region = state.regions.get(region_id)
        if region is None:
            continue
        progress = True
        while _violates_lower(region, counting) and progress:
            progress = False
            for donor in state.adjacent_regions(region):
                # The receiver's border index already knows which donor
                # members touch it — no per-member adjacency rescans.
                boundary = state.donor_boundary(donor, region)
                rng.shuffle(boundary)
                for area_id in boundary:
                    state.perf.candidate_evaluations += 1
                    if not _swap_is_valid(
                        state, donor, region, area_id, all_constraints
                    ):
                        continue
                    state.move(area_id, region)
                    progress = True
                    break
                if progress:
                    break


def _swap_is_valid(
    state: SolutionState,
    donor: Region,
    receiver: Region,
    area_id: int,
    constraints,
) -> bool:
    """The paper's swap validation: the donor must remain a single
    connected component and keep satisfying *all* constraints; the
    receiver must stay within the AVG ranges and upper bounds."""
    if len(donor) <= 1:
        return False
    if not donor.satisfies_after_remove(constraints, area_id):
        return False
    if not donor.remains_contiguous_without(area_id):
        return False
    return _safe_to_add(state, receiver, area_id)


# ----------------------------------------------------------------------
# Phase C — merge deficient regions with neighbors
# ----------------------------------------------------------------------

def _merge_deficient(state: SolutionState) -> None:
    counting = state.constraints.counting
    changed = True
    while changed:
        changed = False
        for region_id in list(state.regions):
            region = state.regions.get(region_id)
            if region is None or not _violates_lower(region, counting):
                continue
            partner = _best_merge_partner(state, region, counting)
            if partner is not None:
                state.merge_regions(region, partner)
                changed = True


def _best_merge_partner(
    state: SolutionState, region: Region, counting: Sequence[Constraint]
) -> Region | None:
    """An adjacent region whose union with *region* respects every
    counting upper bound. Deficient partners are preferred (pairing
    two deficient regions costs one region where a merge into a
    satisfied region would strand the other deficiency), then smaller
    partners, to keep the loss of p minimal."""
    candidates = []
    for other in state.adjacent_regions(region):
        if _union_respects_uppers(region, other, counting):
            candidates.append(other)
    if not candidates:
        return None
    return min(
        candidates,
        key=lambda other: (not _violates_lower(other, counting), len(other)),
    )


def _union_respects_uppers(
    region: Region, other: Region, counting: Sequence[Constraint]
) -> bool:
    for c in counting:
        if c.aggregate == "COUNT":
            union_value = float(len(region) + len(other))
        else:
            union_value = region.aggregate(
                "SUM", c.attribute
            ) + other.aggregate("SUM", c.attribute)
        if union_value > c.upper:
            return False
    return True


# ----------------------------------------------------------------------
# Phase D — trim regions above upper bounds
# ----------------------------------------------------------------------

def _trim_oversized(state: SolutionState, rng: random.Random) -> None:
    counting = state.constraints.counting
    keep_satisfied = tuple(state.constraints.avgs) + tuple(
        state.constraints.extrema
    )
    for region_id in list(state.regions):
        region = state.regions.get(region_id)
        if region is None:
            continue
        progress = True
        while _violates_upper(region, counting) and progress:
            progress = False
            # Any member whose removal keeps the region connected is a
            # candidate (a region spanning a whole component has no
            # exterior frontier, so "boundary" means the subgraph's
            # non-articulation members, enforced by the check below).
            candidates = sorted(region.area_ids)
            rng.shuffle(candidates)
            for area_id in candidates:
                state.perf.candidate_evaluations += 1
                if len(region) <= 1:
                    break
                if not region.satisfies_after_remove(keep_satisfied, area_id):
                    continue
                if any(
                    region.value_after_remove(c, area_id) < c.lower
                    for c in counting
                ):
                    continue
                if not region.remains_contiguous_without(area_id):
                    continue
                state.unassign(area_id)
                progress = True
                break


# ----------------------------------------------------------------------
# Phase E — dissolve regions that remain infeasible
# ----------------------------------------------------------------------

def dissolve_infeasible(state: SolutionState) -> None:
    """Remove every region that violates any constraint, returning its
    areas to the unassigned pool (they end up in ``U_0``)."""
    constraints = state.constraints
    for region_id in list(state.regions):
        region = state.regions.get(region_id)
        if region is None:
            continue
        if not region.satisfies_all(constraints):
            state.dissolve_region(region)
