"""Mutable solution state shared by the FaCT phases.

A :class:`SolutionState` tracks, during construction and local search:

- the live :class:`~repro.core.region.Region` objects, keyed by id;
- the area → region assignment (``None`` = currently unassigned);
- the permanently excluded areas (``U_0`` from invalid-area filtering).

It provides the transactional primitives the phases are written in
terms of — create/dissolve regions, assign/unassign areas, merge two
regions — each of which keeps assignment and region bookkeeping
consistent, and a :meth:`to_partition` snapshot.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..core.area import AreaCollection
from ..core.constraints import ConstraintSet
from ..core.partition import Partition
from ..core.region import Region
from ..exceptions import InvalidAreaError

__all__ = ["SolutionState"]


class SolutionState:
    """Live solver state over a collection and a constraint set.

    Parameters
    ----------
    collection:
        The full area collection.
    constraints:
        The query; its attributes determine which aggregates every
        region tracks.
    excluded:
        Areas removed by the feasibility phase — they are reported in
        ``U_0`` and never assigned.
    """

    def __init__(
        self,
        collection: AreaCollection,
        constraints: ConstraintSet,
        excluded: Iterable[int] = (),
    ):
        self.collection = collection
        self.constraints = constraints
        self.tracked = tuple(sorted(constraints.attributes()))
        self.excluded: frozenset[int] = frozenset(excluded)
        for area_id in self.excluded:
            if area_id not in collection:
                raise InvalidAreaError(f"excluded unknown area {area_id}")
        self.regions: dict[int, Region] = {}
        self.assignment: dict[int, int | None] = {
            area_id: None
            for area_id in collection.ids
            if area_id not in self.excluded
        }
        self._unassigned: set[int] = set(self.assignment)
        self._next_region_id = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def unassigned(self) -> frozenset[int]:
        """Snapshot of the currently unassigned (but valid) areas."""
        return frozenset(self._unassigned)

    @property
    def n_unassigned(self) -> int:
        """Count of currently unassigned valid areas."""
        return len(self._unassigned)

    @property
    def p(self) -> int:
        """Current number of regions."""
        return len(self.regions)

    def region_of(self, area_id: int) -> Region | None:
        """The region an area belongs to, or ``None``."""
        region_id = self.assignment.get(area_id)
        if region_id is None:
            return None
        return self.regions[region_id]

    def is_unassigned(self, area_id: int) -> bool:
        """True when the area is valid and not in any region."""
        return area_id in self._unassigned

    def iter_regions(self) -> Iterator[Region]:
        """Iterate over the live regions."""
        return iter(self.regions.values())

    def neighbor_regions(self, area_id: int) -> list[Region]:
        """Distinct regions spatially adjacent to one area."""
        seen: set[int] = set()
        result: list[Region] = []
        for neighbor in self.collection.neighbors(area_id):
            region_id = self.assignment.get(neighbor)
            if region_id is not None and region_id not in seen:
                seen.add(region_id)
                result.append(self.regions[region_id])
        return result

    def adjacent_regions(self, region: Region) -> list[Region]:
        """Distinct regions sharing a boundary with *region*."""
        seen: set[int] = {region.region_id}
        result: list[Region] = []
        for area_id in region.neighboring_areas():
            region_id = self.assignment.get(area_id)
            if region_id is not None and region_id not in seen:
                seen.add(region_id)
                result.append(self.regions[region_id])
        return result

    def unassigned_neighbors(self, region: Region) -> list[int]:
        """Unassigned areas on *region*'s spatial frontier."""
        return [
            area_id
            for area_id in region.neighboring_areas()
            if area_id in self._unassigned
        ]

    # ------------------------------------------------------------------
    # mutation primitives
    # ------------------------------------------------------------------
    def new_region(self, areas: Iterable[int] = ()) -> Region:
        """Create a region from currently-unassigned areas."""
        region_id = self._next_region_id
        self._next_region_id += 1
        region = Region(region_id, self.collection, self.tracked)
        self.regions[region_id] = region
        for area_id in areas:
            self.assign(area_id, region)
        return region

    def assign(self, area_id: int, region: Region) -> None:
        """Move an unassigned area into *region*."""
        if area_id not in self._unassigned:
            raise InvalidAreaError(
                f"area {area_id} is not unassigned (excluded or assigned)"
            )
        region.add_area(area_id)
        self.assignment[area_id] = region.region_id
        self._unassigned.discard(area_id)

    def unassign(self, area_id: int) -> None:
        """Remove an area from its region back to the unassigned pool."""
        region = self.region_of(area_id)
        if region is None:
            raise InvalidAreaError(f"area {area_id} is not assigned")
        region.remove_area(area_id)
        self.assignment[area_id] = None
        self._unassigned.add(area_id)
        if len(region) == 0:
            del self.regions[region.region_id]

    def move(self, area_id: int, target: Region) -> None:
        """Move an assigned area directly into another region."""
        source = self.region_of(area_id)
        if source is None:
            raise InvalidAreaError(f"area {area_id} is not assigned")
        if source.region_id == target.region_id:
            raise InvalidAreaError(
                f"area {area_id} is already in region {target.region_id}"
            )
        source.remove_area(area_id)
        target.add_area(area_id)
        self.assignment[area_id] = target.region_id
        if len(source) == 0:
            del self.regions[source.region_id]

    def merge_regions(self, keep: Region, absorb: Region) -> Region:
        """Merge *absorb* into *keep* and drop the empty region."""
        if keep.region_id == absorb.region_id:
            raise InvalidAreaError("cannot merge a region with itself")
        for area_id in list(absorb.area_ids):
            self.assignment[area_id] = keep.region_id
        keep.merge(absorb)
        del self.regions[absorb.region_id]
        return keep

    def dissolve_region(self, region: Region) -> None:
        """Return every area of *region* to the unassigned pool."""
        for area_id in list(region.area_ids):
            self.unassign(area_id)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def to_partition(self) -> Partition:
        """Freeze the current state into a :class:`Partition`.

        ``U_0`` holds both the feasibility-phase exclusions and the
        still-unassigned areas, per the problem definition.
        """
        return Partition.from_regions(
            list(self.regions.values()),
            unassigned=self._unassigned | self.excluded,
        )

    def total_heterogeneity(self) -> float:
        """``H(P)`` of the current regions."""
        return sum(region.heterogeneity for region in self.regions.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SolutionState(p={self.p}, unassigned={len(self._unassigned)}, "
            f"excluded={len(self.excluded)})"
        )
