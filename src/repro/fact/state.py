"""Mutable solution state shared by the FaCT phases.

A :class:`SolutionState` tracks, during construction and local search:

- the live :class:`~repro.core.region.Region` objects, keyed by id;
- the area → region assignment (``None`` = currently unassigned);
- the permanently excluded areas (``U_0`` from invalid-area filtering).

It provides the transactional primitives the phases are written in
terms of — create/dissolve regions, assign/unassign areas, merge two
regions — each of which keeps assignment and region bookkeeping
consistent, and a :meth:`to_partition` snapshot.

Hot-path indexes
----------------
The phases' inner loops ask, thousands of times per iteration, "which
unassigned areas border this region?", "which regions border this
region?" and "which of a donor's members touch this receiver?". Each
used to be answered by scanning every member's adjacency list —
O(|R| · degree) per query. The state now maintains two incremental
indexes, updated in O(degree) at every mutation primitive:

- ``_border``: per region, the *non-member* areas adjacent to it, each
  with the count of member neighbors backing it (counts make
  decremental updates exact);
- ``_region_adj``: per region, the adjacent regions with the number of
  shared boundary edges.

Every query sorts its result, so answers are deterministic and
identical between the indexed path and the scan fallback (the
reference path used when ``REPRO_DISABLE_HOTPATH_CACHES`` is set — see
:mod:`repro.core.perf`). :meth:`check_indexes` re-derives both indexes
from scratch and asserts equality; the property-test suite calls it
after randomized mutation sequences.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..core import arrays as arrays_mod
from ..core.area import AreaCollection
from ..core.constraints import ConstraintSet
from ..core.partition import Partition
from ..core.perf import PerfCounters, hotpath_caches_enabled
from ..core.region import Region
from ..exceptions import InvalidAreaError

__all__ = ["SolutionState"]


class SolutionState:
    """Live solver state over a collection and a constraint set.

    Parameters
    ----------
    collection:
        The full area collection.
    constraints:
        The query; its attributes determine which aggregates every
        region tracks.
    excluded:
        Areas removed by the feasibility phase — they are reported in
        ``U_0`` and never assigned.
    perf:
        Optional shared :class:`~repro.core.perf.PerfCounters`; one is
        created when omitted. Every region this state creates counts
        into it.
    """

    def __init__(
        self,
        collection: AreaCollection,
        constraints: ConstraintSet,
        excluded: Iterable[int] = (),
        perf: PerfCounters | None = None,
    ):
        self.collection = collection
        self.constraints = constraints
        self.tracked = tuple(sorted(constraints.attributes()))
        self.excluded: frozenset[int] = frozenset(excluded)
        for area_id in self.excluded:
            if area_id not in collection:
                raise InvalidAreaError(f"excluded unknown area {area_id}")
        self.regions: dict[int, Region] = {}
        self.assignment: dict[int, int | None] = {
            area_id: None
            for area_id in collection.ids
            if area_id not in self.excluded
        }
        self._unassigned: set[int] = set(self.assignment)
        self._next_region_id = 0
        self.perf = perf if perf is not None else PerfCounters()
        # Captured once per state: flipping the gate mid-life would
        # desynchronize incrementally maintained structures.
        self._use_indexes = hotpath_caches_enabled()
        # Backend, also captured once: under "numpy" every region this
        # state creates mirrors its mutations into the flat-array state
        # the vectorized Tabu scorer batch-reads. The mirror is written
        # from the same Region call sites that update the scalar
        # aggregates, so both views accumulate bit-identically.
        self.backend = arrays_mod.active_backend()
        self._array_state: arrays_mod.ArrayState | None = None
        if self.backend == "numpy":
            self._array_state = arrays_mod.ArrayState(
                arrays_mod.collection_arrays(collection),
                self.tracked,
                excluded=self.excluded,
            )
        # region id -> {adjacent non-member area -> #member neighbors}
        self._border: dict[int, dict[int, int]] = {}
        # region id -> {adjacent region id -> #shared boundary edges}
        self._region_adj: dict[int, dict[int, int]] = {}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def unassigned(self) -> frozenset[int]:
        """Snapshot of the currently unassigned (but valid) areas."""
        return frozenset(self._unassigned)

    @property
    def n_unassigned(self) -> int:
        """Count of currently unassigned valid areas."""
        return len(self._unassigned)

    @property
    def p(self) -> int:
        """Current number of regions."""
        return len(self.regions)

    @property
    def array_state(self) -> "arrays_mod.ArrayState | None":
        """The flat-array mirror (numpy backend), else ``None``."""
        return self._array_state

    def region_of(self, area_id: int) -> Region | None:
        """The region an area belongs to, or ``None``."""
        region_id = self.assignment.get(area_id)
        if region_id is None:
            return None
        return self.regions[region_id]

    def is_unassigned(self, area_id: int) -> bool:
        """True when the area is valid and not in any region."""
        return area_id in self._unassigned

    def iter_regions(self) -> Iterator[Region]:
        """Iterate over the live regions."""
        return iter(self.regions.values())

    def neighbor_regions(self, area_id: int) -> list[Region]:
        """Distinct regions spatially adjacent to one area, in region-id
        order."""
        region_ids = {
            region_id
            for neighbor in self.collection.neighbors(area_id)
            if (region_id := self.assignment.get(neighbor)) is not None
        }
        return [self.regions[region_id] for region_id in sorted(region_ids)]

    def adjacent_regions(self, region: Region) -> list[Region]:
        """Distinct regions sharing a boundary with *region*, in
        region-id order (served by the adjacency index)."""
        self.perf.adjacency_queries += 1
        if self._use_indexes:
            region_ids = self._region_adj.get(region.region_id, {})
            return [self.regions[rid] for rid in sorted(region_ids)]
        seen: set[int] = {region.region_id}
        for area_id in region.neighboring_areas():
            region_id = self.assignment.get(area_id)
            if region_id is not None:
                seen.add(region_id)
        seen.discard(region.region_id)
        return [self.regions[rid] for rid in sorted(seen)]

    def unassigned_neighbors(self, region: Region) -> list[int]:
        """Unassigned areas on *region*'s spatial frontier, in area-id
        order (served by the frontier index)."""
        self.perf.frontier_queries += 1
        if self._use_indexes:
            border = self._border.get(region.region_id, {})
            return sorted(a for a in border if a in self._unassigned)
        return sorted(
            area_id
            for area_id in region.neighboring_areas()
            if area_id in self._unassigned
        )

    def donor_boundary(self, donor: Region, receiver: Region) -> list[int]:
        """Members of *donor* spatially adjacent to *receiver*, in
        area-id order — the candidate pool of a Step-3 swap, read off
        the receiver's border index instead of rescanning every donor
        member."""
        self.perf.frontier_queries += 1
        donor_id = donor.region_id
        if self._use_indexes:
            border = self._border.get(receiver.region_id, {})
            return sorted(
                a for a in border if self.assignment.get(a) == donor_id
            )
        return sorted(
            area_id for area_id in donor.area_ids if receiver.touches(area_id)
        )

    # ------------------------------------------------------------------
    # index maintenance (all O(degree of the touched area))
    # ------------------------------------------------------------------
    def _index_new_region(self, region_id: int) -> None:
        if not self._use_indexes:
            return
        self._border[region_id] = {}
        self._region_adj[region_id] = {}

    def _index_drop_region(self, region_id: int) -> None:
        if not self._use_indexes:
            return
        self._border.pop(region_id, None)
        for other_id in self._region_adj.pop(region_id, {}):
            self._region_adj[other_id].pop(region_id, None)

    def _index_add_member(self, region_id: int, area_id: int) -> None:
        """Record that *area_id* just became a member of *region_id*.

        Must run after both the region's membership and
        ``assignment[area_id]`` are updated.
        """
        if not self._use_indexes:
            return
        self.perf.index_updates += 1
        border = self._border[region_id]
        adjacency = self._region_adj[region_id]
        border.pop(area_id, None)  # now internal
        for neighbor in self.collection.neighbors(area_id):
            neighbor_region = self.assignment.get(neighbor)
            if neighbor_region == region_id:
                continue  # internal edge
            border[neighbor] = border.get(neighbor, 0) + 1
            if neighbor_region is not None:
                adjacency[neighbor_region] = (
                    adjacency.get(neighbor_region, 0) + 1
                )
                other = self._region_adj[neighbor_region]
                other[region_id] = other.get(region_id, 0) + 1

    def _index_remove_member(self, region_id: int, area_id: int) -> None:
        """Record that *area_id* just left *region_id*.

        Must run after the region's membership and
        ``assignment[area_id]`` are updated (the area's own assignment
        is never consulted, only its neighbors').
        """
        if not self._use_indexes:
            return
        self.perf.index_updates += 1
        border = self._border[region_id]
        adjacency = self._region_adj[region_id]
        member_edges = 0
        for neighbor in self.collection.neighbors(area_id):
            neighbor_region = self.assignment.get(neighbor)
            if neighbor_region == region_id:
                member_edges += 1
                continue
            count = border.get(neighbor, 0) - 1
            if count > 0:
                border[neighbor] = count
            else:
                border.pop(neighbor, None)
            if neighbor_region is not None:
                self._decrement_adjacency(adjacency, neighbor_region)
                self._decrement_adjacency(
                    self._region_adj[neighbor_region], region_id
                )
        if member_edges:
            border[area_id] = member_edges

    @staticmethod
    def _decrement_adjacency(adjacency: dict[int, int], key: int) -> None:
        count = adjacency.get(key, 0) - 1
        if count > 0:
            adjacency[key] = count
        else:
            adjacency.pop(key, None)

    def check_indexes(self) -> None:
        """Assert the indexes and the array mirror match rederivations.

        O(n · degree) — a test/debug aid, never called on hot paths.
        Raises ``AssertionError`` on any divergence. Under the numpy
        backend this also validates the flat-array state (labels
        vector vs region membership, aggregate vectors vs recomputed
        sums), so backend drift is caught at the first divergent
        mutation instead of at certification.
        """
        self._check_array_state()
        if not self._use_indexes:
            return
        neighbors = self.collection.neighbors
        for region_id, region in self.regions.items():
            members = region.area_ids
            expected_border: dict[int, int] = {}
            expected_adjacency: dict[int, int] = {}
            for member in members:
                for neighbor in neighbors(member):
                    if neighbor in members:
                        continue
                    expected_border[neighbor] = (
                        expected_border.get(neighbor, 0) + 1
                    )
                    other = self.assignment.get(neighbor)
                    if other is not None:
                        expected_adjacency[other] = (
                            expected_adjacency.get(other, 0) + 1
                        )
            assert self._border.get(region_id) == expected_border, (
                f"border index diverged for region {region_id}: "
                f"{self._border.get(region_id)} != {expected_border}"
            )
            assert self._region_adj.get(region_id) == expected_adjacency, (
                f"adjacency index diverged for region {region_id}: "
                f"{self._region_adj.get(region_id)} != {expected_adjacency}"
            )
        assert set(self._border) == set(self.regions), (
            "border index tracks dead regions: "
            f"{set(self._border) ^ set(self.regions)}"
        )
        assert set(self._region_adj) == set(self.regions), (
            "adjacency index tracks dead regions: "
            f"{set(self._region_adj) ^ set(self.regions)}"
        )

    def _check_array_state(self) -> None:
        """Assert the array mirror matches the object graph exactly."""
        astate = self._array_state
        if astate is None:
            return
        import math

        arrays = astate.arrays
        for area_id, position in arrays.index.items():
            label = int(astate.labels[position])
            if area_id in self.excluded:
                expected = arrays_mod.EXCLUDED
            else:
                assigned = self.assignment.get(area_id)
                expected = (
                    arrays_mod.UNASSIGNED if assigned is None else assigned
                )
            assert label == expected, (
                f"label vector diverged for area {area_id}: "
                f"{label} != {expected}"
            )
        live = set(self.regions)
        for region_id in range(len(astate.region_count)):
            if region_id in live:
                continue
            assert int(astate.region_count[region_id]) == 0, (
                f"count vector tracks dead region {region_id}: "
                f"{int(astate.region_count[region_id])}"
            )
            for name in astate.tracked:
                assert float(astate.region_sums[name][region_id]) == 0.0, (
                    f"sum vector {name!r} tracks dead region {region_id}"
                )
        for region_id, region in self.regions.items():
            count = int(astate.region_count[region_id])
            assert count == len(region), (
                f"count vector diverged for region {region_id}: "
                f"{count} != {len(region)}"
            )
            for name in astate.tracked:
                mirrored = float(astate.region_sums[name][region_id])
                maintained = region.aggregate("SUM", name)
                # Same call sites, same accumulation order: the mirror
                # must equal the scalar aggregate bit for bit.
                assert mirrored == maintained, (
                    f"sum vector {name!r} diverged for region "
                    f"{region_id}: {mirrored!r} != {maintained!r}"
                )
                recomputed = sum(
                    self.collection.attribute(area_id, name)
                    for area_id in sorted(region.area_ids)
                )
                assert math.isclose(
                    mirrored, recomputed, rel_tol=1e-9, abs_tol=1e-6
                ), (
                    f"sum vector {name!r} drifted from recomputed sum "
                    f"for region {region_id}: {mirrored!r} vs "
                    f"{recomputed!r}"
                )

    # ------------------------------------------------------------------
    # construction from snapshots
    # ------------------------------------------------------------------
    @classmethod
    def from_labels(
        cls,
        collection: AreaCollection,
        constraints: ConstraintSet,
        labels: dict[int, int],
        excluded: Iterable[int] = (),
        perf: PerfCounters | None = None,
    ) -> "SolutionState":
        """Rebuild a live state from an area → region-label snapshot.

        The rebuild is **canonical**: regions are renumbered
        ``0..p-1`` ordered by their smallest member area id, and each
        region's areas are inserted in ascending id order. Two
        snapshots describing the same partition under different label
        values therefore rebuild into bit-identical states — every
        incrementally accumulated float (aggregates, heterogeneity,
        objective sums) sees the same insertion sequence. This is what
        makes solver results invariant to *where* a partition was
        produced (serial pass, worker process, portfolio member):
        downstream tie-breaking on region ids sees the same ids
        everywhere.

        Labels that are ``None`` or negative mean "unassigned".
        """
        state = cls(collection, constraints, excluded=excluded, perf=perf)
        groups: dict[int, list[int]] = {}
        for area_id in sorted(labels):
            label = labels[area_id]
            if label is None or label < 0:
                continue
            groups.setdefault(label, []).append(area_id)
        for label in sorted(groups, key=lambda key: groups[key][0]):
            state.new_region(groups[label])
        return state

    # ------------------------------------------------------------------
    # mutation primitives
    # ------------------------------------------------------------------
    def new_region(self, areas: Iterable[int] = ()) -> Region:
        """Create a region from currently-unassigned areas."""
        region_id = self._next_region_id
        self._next_region_id += 1
        region = Region(
            region_id,
            self.collection,
            self.tracked,
            perf=self.perf,
            array_state=self._array_state,
        )
        self.regions[region_id] = region
        self._index_new_region(region_id)
        for area_id in areas:
            self.assign(area_id, region)
        return region

    def assign(self, area_id: int, region: Region) -> None:
        """Move an unassigned area into *region*."""
        if area_id not in self._unassigned:
            raise InvalidAreaError(
                f"area {area_id} is not unassigned (excluded or assigned)"
            )
        region.add_area(area_id)
        self.assignment[area_id] = region.region_id
        self._unassigned.discard(area_id)
        self._index_add_member(region.region_id, area_id)

    def unassign(self, area_id: int) -> None:
        """Remove an area from its region back to the unassigned pool."""
        region = self.region_of(area_id)
        if region is None:
            raise InvalidAreaError(f"area {area_id} is not assigned")
        region.remove_area(area_id)
        self.assignment[area_id] = None
        self._unassigned.add(area_id)
        self._index_remove_member(region.region_id, area_id)
        if len(region) == 0:
            del self.regions[region.region_id]
            self._index_drop_region(region.region_id)

    def move(self, area_id: int, target: Region) -> None:
        """Move an assigned area directly into another region."""
        source = self.region_of(area_id)
        if source is None:
            raise InvalidAreaError(f"area {area_id} is not assigned")
        if source.region_id == target.region_id:
            raise InvalidAreaError(
                f"area {area_id} is already in region {target.region_id}"
            )
        source.remove_area(area_id)
        target.add_area(area_id)
        self.assignment[area_id] = target.region_id
        self._index_remove_member(source.region_id, area_id)
        self._index_add_member(target.region_id, area_id)
        if len(source) == 0:
            del self.regions[source.region_id]
            self._index_drop_region(source.region_id)

    def merge_regions(self, keep: Region, absorb: Region) -> Region:
        """Merge *absorb* into *keep* and drop the empty region."""
        if keep.region_id == absorb.region_id:
            raise InvalidAreaError("cannot merge a region with itself")
        for area_id in list(absorb.area_ids):
            self.assignment[area_id] = keep.region_id
        keep.merge(absorb)
        del self.regions[absorb.region_id]
        self._index_merge_regions(keep.region_id, absorb.region_id)
        return keep

    def _index_merge_regions(self, keep_id: int, absorb_id: int) -> None:
        """Fold *absorb*'s index entries into *keep*'s in O(border +
        adjacent regions) — no per-area rederivation."""
        if not self._use_indexes:
            return
        self.perf.index_updates += 1
        # Border: sum the member-neighbor counts, then drop entries
        # that became internal (absorb's members adjacent to keep and
        # vice versa — all now assigned to keep_id).
        merged: dict[int, int] = {}
        for source in (self._border[keep_id], self._border.pop(absorb_id)):
            for area_id, count in source.items():
                if self.assignment.get(area_id) == keep_id:
                    continue
                merged[area_id] = merged.get(area_id, 0) + count
        self._border[keep_id] = merged
        # Region adjacency: redirect absorb's edges onto keep.
        keep_adj = self._region_adj[keep_id]
        keep_adj.pop(absorb_id, None)
        for other_id, count in self._region_adj.pop(absorb_id).items():
            if other_id == keep_id:
                continue
            keep_adj[other_id] = keep_adj.get(other_id, 0) + count
            other = self._region_adj[other_id]
            other.pop(absorb_id, None)
            other[keep_id] = other.get(keep_id, 0) + count

    def dissolve_region(self, region: Region) -> None:
        """Return every area of *region* to the unassigned pool."""
        for area_id in list(region.area_ids):
            self.unassign(area_id)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def to_partition(self) -> Partition:
        """Freeze the current state into a :class:`Partition`.

        ``U_0`` holds both the feasibility-phase exclusions and the
        still-unassigned areas, per the problem definition.
        """
        return Partition.from_regions(
            list(self.regions.values()),
            unassigned=self._unassigned | self.excluded,
        )

    def total_heterogeneity(self) -> float:
        """``H(P)`` of the current regions."""
        return sum(region.heterogeneity for region in self.regions.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SolutionState(p={self.p}, unassigned={len(self._unassigned)}, "
            f"excluded={len(self.excluded)})"
        )
