"""Crash-recoverable solves: the atomic solve-checkpoint ledger.

A :class:`SolveLedger` persists the progress of one :meth:`FaCT.solve`
call to a versioned JSON file so a killed process can resume and finish
**bit-identically** to an uninterrupted run.

Why unit-granular replay works
------------------------------
The solver's parallel decomposition already forces every unit of work —
one construction pass, one Tabu portfolio member — to be a pure
function of its derived seed and inputs (that is what makes results
invariant to ``n_jobs``). The ledger exploits the same property for
durability: instead of snapshotting raw RNG state mid-stream, it
records each *completed* unit's result keyed by its coordinates —

- ``construction/{attempt}/{pass}`` → the pass result (score key,
  labels, scores) of retry attempt *attempt*, pass *pass*;
- ``tabu/{member}`` → portfolio member *member*'s outcome;

and on resume replays recorded units verbatim while recomputing the
rest. A replayed unit is byte-for-byte what the unit would produce if
re-run (JSON round-trips Python floats exactly — ``json.dumps`` emits
``repr`` shortest-round-trip forms), so the reduction downstream sees
identical inputs in identical order and the final partition matches
the uninterrupted run for any kill point and any worker count.
Interrupted (partially executed) units are deliberately *not*
recorded: the uninterrupted reference run completes them, so a resumed
run must recompute them in full.

Durability
----------
Every record triggers a whole-file rewrite through
:func:`repro.runtime.atomic.atomic_write_text` (same-directory temp
file + ``os.replace``), so the file on disk is always a complete,
parseable snapshot — a crash during the write leaves the previous
snapshot intact. Each write is announced at the ``checkpoint.write``
fault checkpoint; an injected ``fail`` there simulates dying exactly
at the snapshot boundary.

The file also carries a **fingerprint** of the problem (seed, phase
shape, constraint strings, dataset size). Resuming against a different
problem raises :class:`repro.exceptions.CheckpointError` instead of
silently splicing mismatched results, and the consumed wall-clock is
stored so a resumed deadline run only gets the time the original had
left.
"""

from __future__ import annotations

import json
import os

from ..core.perf import PerfCounters
from ..exceptions import CheckpointError
from ..obs.telemetry import DISABLED
from ..runtime import Budget, Interrupted, RunStatus
from ..runtime.atomic import atomic_write_text

__all__ = ["SolveLedger"]

_FORMAT = "repro-solve-checkpoint/1"


def _fingerprint(config, constraints, collection) -> dict:
    """The identity of one solve, as far as replay safety is concerned.

    Everything a recorded unit's result depends on (beyond its own
    coordinates): the seed scheme, the phase shape and the problem
    itself. Constraints compare by their canonical string forms.
    """
    return {
        "rng_seed": config.rng_seed,
        "construction_iterations": config.construction_iterations,
        "construction_retry_attempts": config.construction_retry_attempts,
        "tabu_portfolio": config.tabu_portfolio,
        "merge_limit": config.merge_limit,
        "pickup": config.pickup,
        "constraints": sorted(str(c) for c in constraints),
        "n_areas": len(collection),
    }


class SolveLedger:
    """Checkpoint file for one solve; records and replays work units.

    Create one with :meth:`fresh` (new solve) or :meth:`load` (resume).
    The ledger accumulates its own :class:`PerfCounters`
    (``checkpoint_writes`` / ``checkpoint_replays``) in
    :attr:`counters`; the solver merges them into the solution's perf.
    """

    def __init__(self, path, fingerprint: dict, units: dict | None = None,
                 consumed_seconds: float = 0.0,
                 keep_on_complete: bool = False):
        self.path = os.fspath(path)
        self.fingerprint = fingerprint
        self.units: dict[str, object] = dict(units or {})
        self.consumed_seconds = float(consumed_seconds)
        # Retention: with keep_on_complete the file survives a COMPLETE
        # solve (the service archives job checkpoints for audit); the
        # default deletes it so a finished run cannot be resumed into a
        # stale answer.
        self.keep_on_complete = bool(keep_on_complete)
        self.counters = PerfCounters()
        # The solver assigns its SolveTelemetry so snapshot writes are
        # traced (``checkpoint.write`` spans); defaults to the no-op.
        self.telemetry = DISABLED

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def fresh(cls, path, config, constraints, collection,
              keep_on_complete: bool = False) -> "SolveLedger":
        """Start a new ledger for this solve (any stale file at *path*
        is superseded by the first write)."""
        return cls(
            path,
            _fingerprint(config, constraints, collection),
            keep_on_complete=keep_on_complete,
        )

    @classmethod
    def load(cls, path, config, constraints, collection,
             keep_on_complete: bool = False) -> "SolveLedger":
        """Load a ledger to resume from; validates format and
        fingerprint.

        Raises :class:`~repro.exceptions.CheckpointError` when the file
        is missing, unparseable, of an unknown version, or written for
        a different problem.
        """
        path = os.fspath(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise CheckpointError(
                f"checkpoint file {path!r} does not exist"
            ) from None
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(
                f"checkpoint file {path!r} is unreadable: {error}"
            ) from error
        if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
            raise CheckpointError(
                f"checkpoint file {path!r} has unsupported format "
                f"{payload.get('format') if isinstance(payload, dict) else None!r}"
                f" (expected {_FORMAT!r})"
            )
        expected = _fingerprint(config, constraints, collection)
        found = payload.get("fingerprint")
        if found != expected:
            # Name both sides of every mismatched key: "the file says
            # rng_seed=5, this solve says rng_seed=6" is actionable,
            # a bare list of key names is not.
            mismatched = ", ".join(
                f"{key}: checkpoint has "
                f"{(found or {}).get(key, '<missing>')!r}, resuming solve "
                f"expects {expected.get(key, '<missing>')!r}"
                for key in sorted(set(expected) | set(found or {}))
                if (found or {}).get(key) != expected.get(key)
            )
            raise CheckpointError(
                f"checkpoint file {path!r} was written for a different "
                f"problem ({mismatched})"
            )
        return cls(
            path,
            expected,
            units=payload.get("units", {}),
            consumed_seconds=float(payload.get("consumed_seconds", 0.0)),
            keep_on_complete=keep_on_complete,
        )

    # ------------------------------------------------------------------
    # construction passes
    # ------------------------------------------------------------------
    @staticmethod
    def _pass_key(attempt: int, index: int) -> str:
        return f"construction/{attempt}/{index}"

    def lookup_pass(self, attempt: int, index: int):
        """Replay a recorded construction pass, or ``None``.

        Returns the pass-result tuple ``(score_key, labels,
        (p, n_unassigned), None, PerfCounters(), [])`` exactly as
        :func:`repro.fact.pool.construction_pass_task` would. Replayed
        units carry fresh (empty) perf counters and no spans —
        hot-path counters and telemetry are diagnostics, not part of
        the bit-identity contract, which covers the partition.
        """
        stored = self.units.get(self._pass_key(attempt, index))
        if stored is None:
            return None
        score_key, labels, scores = stored
        self.counters.checkpoint_replays += 1
        return (
            tuple(score_key),
            {int(area_id): label for area_id, label in labels.items()},
            tuple(scores),
            None,
            PerfCounters(),
            [],
        )

    def record_pass(self, attempt: int, index: int, result,
                    budget: Budget | None = None) -> None:
        """Record one *completed* construction pass and snapshot the
        file. Interrupted passes (``result[3] is not None``) are
        ignored — see the module docstring."""
        score_key, labels, scores, status = result[:4]
        if status is not None:
            return
        self.units[self._pass_key(attempt, index)] = [
            list(score_key),
            labels,
            list(scores),
        ]
        self._snapshot(budget)

    # ------------------------------------------------------------------
    # tabu portfolio members
    # ------------------------------------------------------------------
    @staticmethod
    def _member_key(member: int) -> str:
        return f"tabu/{member}"

    def lookup_member(self, member: int):
        """Replay a recorded portfolio member outcome, or ``None``."""
        stored = self.units.get(self._member_key(member))
        if stored is None:
            return None
        score, labels, stats = stored
        self.counters.checkpoint_replays += 1
        stats = dict(stats)
        stats["status"] = RunStatus.COMPLETE
        return (
            score,
            {int(area_id): label for area_id, label in labels.items()},
            stats,
            PerfCounters(),
            [],
        )

    def record_member(self, member: int, outcome,
                      budget: Budget | None = None) -> None:
        """Record one *completed* portfolio member and snapshot the
        file (interrupted members are recomputed on resume)."""
        score, labels, stats = outcome[:3]
        if stats.get("status") is not RunStatus.COMPLETE:
            return
        stored_stats = {
            key: value for key, value in stats.items() if key != "status"
        }
        self.units[self._member_key(member)] = [score, labels, stored_stats]
        self._snapshot(budget)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _snapshot(self, budget: Budget | None) -> None:
        """Atomically rewrite the checkpoint file.

        The ``checkpoint.write`` fault point fires first — a ``fail``
        fault there aborts *before* the write, simulating a crash at
        the snapshot boundary; an interruption signal is noted but the
        write still happens (the unit is already complete, and losing
        it would force the resumed run to redo finished work).
        """
        consumed = self.consumed_seconds
        if budget is not None:
            consumed = max(consumed, budget.elapsed())
            try:
                budget.checkpoint("checkpoint.write")
            except Interrupted:
                pass  # observed by the caller at its next checkpoint
        payload = {
            "format": _FORMAT,
            "fingerprint": self.fingerprint,
            "consumed_seconds": consumed,
            "units": self.units,
        }
        with self.telemetry.tracer.span(
            "checkpoint.write", units=len(self.units)
        ):
            atomic_write_text(self.path, json.dumps(payload, sort_keys=True))
        self.consumed_seconds = consumed
        self.counters.checkpoint_writes += 1

    def delete(self) -> None:
        """Remove the checkpoint file (called after a COMPLETE solve —
        a finished run must not be resumable into a stale answer)."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass
