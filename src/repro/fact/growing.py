"""FaCT Step 2 — Region Growing (Section V-B, Algorithm 1).

Grows regions that satisfy the AVG (centrality) constraints without
violating the extrema constraints, in three substeps:

- **Substep 2.1** — seed areas whose value lies inside the AVG range
  become singleton regions (maximizing the region count); seed areas
  below/above the range are grown into valid regions by repeatedly
  absorbing unassigned neighbors from the *opposite* extreme, which
  pulls the running average toward the range (Algorithm 1). A seed
  that cannot reach the range reverts to unassigned.
- **Substep 2.2** — remaining unassigned areas are assigned in two
  rounds. Round 1 adds areas to adjacent regions whenever the region
  stays valid, repeating passes until a fixpoint ("the enclave
  assignment process continues for multiple iterations until no
  further update can be made"). Round 2 handles stubborn areas by
  merging an adjacent region with one of *its* neighbor regions so the
  combined region can absorb the area; the number of merge trials per
  area is capped by ``FaCTConfig.merge_limit`` to prevent oversized
  regions.
- **Substep 2.3** — regions grown from a single extrema constraint's
  seed may not satisfy the *other* extrema constraints, so deficient
  regions are merged with adjacent regions until every region
  satisfies all MIN/MAX constraints. (Merging cannot break AVG: the
  average of a union lies between the two averages. Merging cannot
  break extrema either: invalid areas were filtered, so a union
  satisfies an extrema constraint iff either part does.)

With no AVG constraint, every seed becomes a singleton region and
Round 1 sweeps all remaining areas into adjacent regions (Section
V-D).
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.constraints import Constraint, ConstraintSet
from ..core.perf import hotpath_caches_enabled
from ..core.region import Region
from ..obs.spans import NULL_TRACER
from .config import FaCTConfig, PickupCriterion
from .seeding import SeedingResult
from .state import SolutionState

__all__ = ["grow_regions"]

_CLASS_AVG = "avg"
_CLASS_LOW = "low"
_CLASS_HIGH = "high"
_CLASS_BY_CODE = (_CLASS_AVG, _CLASS_LOW, _CLASS_HIGH)

# Below this many candidates the numpy gather's fixed overhead beats
# the scalar loop it replaces (same calibration story as
# ``repro.fact.tabu._VECTOR_MIN_DONOR``).
_VECTOR_MIN_BATCH = 16


def grow_regions(
    state: SolutionState,
    seeding: SeedingResult,
    config: FaCTConfig,
    rng: random.Random,
    budget=None,
    tracer=None,
) -> None:
    """Run Step 2 over *state* (all areas initially unassigned).

    *budget* is an optional :class:`repro.runtime.Budget` checked at
    every seed (Substep 2.1) and every enclave sweep (Substep 2.2); an
    exhausted budget raises :class:`repro.runtime.Interrupted`, leaving
    the state to the caller, which dissolves any half-grown (invalid)
    regions before using it.

    *tracer* is an optional :class:`repro.obs.Tracer`; each substep
    becomes a span (``grow`` / ``enclave`` / ``extrema``) carrying the
    state shape it left behind — the same numbers
    :func:`repro.fact.trace.trace_solve` snapshots per step.
    """
    if tracer is None:
        tracer = NULL_TRACER
    avgs = state.constraints.avgs
    classes = _AvgClasses(state, avgs)
    with tracer.span("grow") as span:
        _initialize_from_seeds(state, seeding, classes, config, rng, budget)
        _set_state_attrs(span, state)
    with tracer.span("enclave") as span:
        _assign_enclaves(state, classes, config, rng, budget)
        _set_state_attrs(span, state)
    with tracer.span("extrema") as span:
        _combine_for_extrema(state)
        _set_state_attrs(span, state)


def _set_state_attrs(span, state: SolutionState) -> None:
    """Attach the partition shape to a substep span (recording only).

    ``total_heterogeneity`` walks every region, so it is additionally
    gated on the span's verbosity: the default *detailed* tracer
    (verbosity 2) records it, a *shape-only* tracer (verbosity 1, e.g.
    ``REPRO_TRACE_VERBOSITY=1``) keeps the cheap partition counts and
    skips the objective sweep."""
    if span.recording:
        span.set(p=state.p, n_unassigned=state.n_unassigned)
        if span.verbosity >= 2:
            span.set(heterogeneity=state.total_heterogeneity())


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------

def _classify_area(
    state: SolutionState, area_id: int, avgs: Sequence[Constraint]
) -> str:
    """Classify one area against the AVG constraints.

    ``avg``: inside every AVG range (safe to add anywhere); ``low``/
    ``high``: outside the first violated constraint's range, on the
    named side. With no AVG constraints every area is ``avg``.
    """
    attributes = state.collection.area(area_id).attributes
    for c in avgs:
        value = attributes[c.attribute]
        if value < c.lower:
            return _CLASS_LOW
        if value > c.upper:
            return _CLASS_HIGH
    return _CLASS_AVG


def _batch_arrays(state: SolutionState):
    """The flat-array mirror when batch construction is allowed.

    Mirrors the Tabu move pool's dispatch: the numpy backend must be
    resolved (``FaCTConfig.backend`` through ``state.backend``), the
    mirror built, and the hot-path cache gate on — the uncached
    reference path stays the scalar loop. Returns ``None`` otherwise.
    """
    astate = state.array_state
    if (
        astate is None
        or state.backend != "numpy"
        or not hotpath_caches_enabled()
    ):
        return None
    return astate.arrays


class _AvgClasses:
    """Area → AVG-range class, batch-precomputed on the numpy backend.

    An area's class depends only on its own attributes and the
    constraint bounds — never on solver state — so the vector path
    classifies the whole collection once up front: one comparison
    sweep per AVG constraint over the attribute columns, with an
    *undecided* mask replicating the scalar loop's
    first-violated-constraint ordering (a later constraint never
    overrides an earlier verdict). Lookups are then O(1). The scalar
    path defers to :func:`_classify_area` per query; both paths
    compare the same float64 values, so every verdict is identical.
    """

    __slots__ = ("_state", "_avgs", "_codes", "_index")

    def __init__(self, state: SolutionState, avgs: Sequence[Constraint]):
        self._state = state
        self._avgs = avgs
        self._codes = None
        self._index = None
        arrays = _batch_arrays(state)
        if arrays is None or not avgs:
            return
        np = arrays.np
        n = len(arrays.index)
        codes = np.zeros(n, dtype=np.int8)
        undecided = np.ones(n, dtype=bool)
        for c in avgs:
            column = arrays.attributes[c.attribute]
            low = undecided & (column < c.lower)
            # ``& ~low`` mirrors the scalar elif: below-range wins when
            # a degenerate bound pair admits both verdicts.
            high = undecided & (column > c.upper) & ~low
            codes[low] = 1
            codes[high] = 2
            undecided &= ~(low | high)
            if not undecided.any():
                break
        self._codes = codes
        self._index = arrays.index

    @property
    def avgs(self) -> Sequence[Constraint]:
        return self._avgs

    def classify(self, area_id: int) -> str:
        if self._codes is None:
            return _classify_area(self._state, area_id, self._avgs)
        return _CLASS_BY_CODE[self._codes[self._index[area_id]]]


def _pick(
    candidates: list, config: FaCTConfig, rng: random.Random, key=None
):
    """Choose one candidate per the configured pickup criterion."""
    if len(candidates) == 1:
        return candidates[0]
    if config.pickup == PickupCriterion.RANDOM or key is None:
        return rng.choice(candidates)
    return min(candidates, key=key)


# ----------------------------------------------------------------------
# Substep 2.1 — region initialization from seeds
# ----------------------------------------------------------------------

def _initialize_from_seeds(
    state: SolutionState,
    seeding: SeedingResult,
    classes: _AvgClasses,
    config: FaCTConfig,
    rng: random.Random,
    budget=None,
) -> None:
    # Sorted before the shuffle: the seeding result crosses process
    # boundaries on the parallel path, and a pickle round trip may
    # reorder frozenset iteration — the shuffle must start from the
    # same sequence everywhere for pass results to be reproducible.
    seeds = [a for a in sorted(seeding.seeds) if state.is_unassigned(a)]
    rng.shuffle(seeds)
    off_range: list[int] = []
    for area_id in seeds:
        if budget is not None:
            budget.checkpoint("construction.grow.seed")
        if classes.classify(area_id) == _CLASS_AVG:
            # In-range seeds each become their own region, maximizing p.
            state.new_region([area_id])
        else:
            off_range.append(area_id)
    _merge_off_range_seeds(state, off_range, classes.avgs, config, rng, budget)


def _merge_off_range_seeds(
    state: SolutionState,
    off_range: list[int],
    avgs: Sequence[Constraint],
    config: FaCTConfig,
    rng: random.Random,
    budget=None,
) -> None:
    """Algorithm 1 — grow each off-range seed into a valid region by
    absorbing unassigned opposite-extreme neighbors."""
    arrays = _batch_arrays(state)
    for seed_id in off_range:
        if budget is not None:
            budget.checkpoint("construction.grow.seed")
        if not state.is_unassigned(seed_id):
            continue
        region = state.new_region([seed_id])
        while True:
            violated = _first_violated_avg(region, avgs)
            if violated is None:
                break  # region satisfies every AVG constraint — commit
            candidates = _opposite_extreme_neighbors(
                state, region, violated, arrays
            )
            if not candidates:
                state.dissolve_region(region)
                break
            choice = _pick_growth_area(region, candidates, config, rng, arrays)
            state.assign(choice, region)


def _pick_growth_area(
    region: Region,
    candidates: list[int],
    config: FaCTConfig,
    rng: random.Random,
    arrays,
):
    """:func:`_pick` for area candidates priced against one region.

    Under BEST pickup the numpy path prices the whole candidate batch
    in one ``searchsorted`` sweep off the region's maintained
    sorted/prefix structure — the same closed form (and the same
    float64 operation order) as the scalar
    ``Region.heterogeneity_delta_add``, so the argmin picks the same
    area ``min`` would (both take the first minimum). RANDOM pickup
    consumes ``rng.choice`` on the identical candidate list either
    way.
    """
    if len(candidates) == 1:
        return candidates[0]
    if config.pickup == PickupCriterion.RANDOM:
        return rng.choice(candidates)
    if arrays is not None and len(candidates) >= _VECTOR_MIN_BATCH:
        np = arrays.np
        d = arrays.dissimilarity[arrays.positions(candidates)]
        values, prefix = region._struct_arrays(np)
        k = values.searchsorted(d, side="left")
        below_sum = prefix[k]
        above_sum = prefix[-1] - below_sum
        deltas = (d * k - below_sum) + (above_sum - d * (len(values) - k))
        perf = region.perf
        if perf is not None:
            perf.delta_fastpath += len(candidates)
        return candidates[int(deltas.argmin())]
    return min(candidates, key=lambda a: region.heterogeneity_delta_add(a))


def _first_violated_avg(
    region: Region, avgs: Sequence[Constraint]
) -> Constraint | None:
    for c in avgs:
        if not region.satisfies(c):
            return c
    return None


def _opposite_extreme_neighbors(
    state: SolutionState,
    region: Region,
    violated: Constraint,
    arrays=None,
) -> list[int]:
    """Unassigned neighbors whose value lies beyond the *opposite*
    bound of the violated AVG constraint (Algorithm 1, line 18).

    The numpy path masks one attribute gather over the (sorted)
    frontier instead of looping; filtering preserves the frontier
    order, and both paths compare the same float64 values, so the
    candidate list — and with it RNG consumption — is identical.
    """
    running_average = region.constraint_value(violated)
    below = running_average < violated.lower
    frontier = state.unassigned_neighbors(region)
    if arrays is not None and len(frontier) >= _VECTOR_MIN_BATCH:
        np = arrays.np
        values = arrays.attributes[violated.attribute][
            arrays.positions(frontier)
        ]
        mask = values > violated.upper if below else values < violated.lower
        return [frontier[i] for i in np.nonzero(mask)[0].tolist()]
    result = []
    for area_id in frontier:
        value = state.collection.attribute(area_id, violated.attribute)
        if below and value > violated.upper:
            result.append(area_id)
        elif not below and value < violated.lower:
            result.append(area_id)
    return result


# ----------------------------------------------------------------------
# Substep 2.2 — enclave assignment (two rounds, to a fixpoint)
# ----------------------------------------------------------------------

def _assign_enclaves(
    state: SolutionState,
    classes: _AvgClasses,
    config: FaCTConfig,
    rng: random.Random,
    budget=None,
) -> None:
    avgs = classes.avgs
    while True:
        _assignment_round(state, classes, config, rng, budget)
        if not avgs:
            return  # round 2 exists only to rescue AVG-blocked areas
        if not _merging_round(state, avgs, config, rng):
            return


def _assignment_round(
    state: SolutionState,
    classes: _AvgClasses,
    config: FaCTConfig,
    rng: random.Random,
    budget=None,
) -> None:
    """Round 1: sweep unassigned areas into adjacent regions until no
    pass makes an update."""
    avgs = classes.avgs
    changed = True
    while changed:
        if budget is not None:
            budget.checkpoint("construction.grow.enclave")
        changed = False
        pending = list(state.unassigned)
        rng.shuffle(pending)
        for area_id in pending:
            if not state.is_unassigned(area_id):
                continue
            neighbor_regions = state.neighbor_regions(area_id)
            if not neighbor_regions:
                continue
            if classes.classify(area_id) == _CLASS_AVG:
                candidates = neighbor_regions
            else:
                candidates = [
                    region
                    for region in neighbor_regions
                    if region.satisfies_after_add(avgs, area_id)
                ]
            if not candidates:
                continue
            target = _pick(
                candidates,
                config,
                rng,
                key=lambda r: r.heterogeneity_delta_add(area_id),
            )
            state.assign(area_id, target)
            changed = True


def _merging_round(
    state: SolutionState,
    avgs: Sequence[Constraint],
    config: FaCTConfig,
    rng: random.Random,
) -> bool:
    """Round 2: rescue remaining areas by merging adjacent regions.

    For an unassigned area ``a`` and an adjacent region ``R``, try
    merging ``R`` with one of R's neighbor regions so the union (plus
    ``a``) satisfies the AVG constraints. Each tested merge counts one
    trial against ``config.merge_limit``. Returns True when anything
    was assigned (the caller then re-runs Round 1, since a new
    assignment can unlock further ones).
    """
    changed = False
    pending = list(state.unassigned)
    rng.shuffle(pending)
    for area_id in pending:
        if not state.is_unassigned(area_id):
            continue
        trials = 0
        placed = False
        for region in state.neighbor_regions(area_id):
            if placed or trials >= config.merge_limit:
                break
            for other in state.adjacent_regions(region):
                if trials >= config.merge_limit:
                    break
                trials += 1
                if _union_with_area_satisfies(region, other, area_id, avgs):
                    merged = state.merge_regions(region, other)
                    state.assign(area_id, merged)
                    changed = True
                    placed = True
                    break
    return changed


def _union_with_area_satisfies(
    region: Region,
    other: Region,
    area_id: int,
    avgs: Sequence[Constraint],
) -> bool:
    """Would ``region ∪ other ∪ {area}`` satisfy every AVG constraint?

    Computed arithmetically from the two regions' maintained sums, so
    the trial costs O(#AVG constraints) and no region is mutated.
    """
    collection = region.collection
    combined_count = len(region) + len(other) + 1
    for c in avgs:
        attribute = c.attribute
        combined_sum = (
            region.aggregate("SUM", attribute)
            + other.aggregate("SUM", attribute)
            + collection.attribute(area_id, attribute)
        )
        if not c.contains(combined_sum / combined_count):
            return False
    return True


# ----------------------------------------------------------------------
# Substep 2.3 — combine regions to satisfy all extrema constraints
# ----------------------------------------------------------------------

def _combine_for_extrema(state: SolutionState) -> None:
    """Merge regions until every region satisfies all MIN/MAX
    constraints, where possible.

    A union satisfies an extrema constraint iff either part does (all
    invalid areas were filtered out beforehand), so a deficient region
    merges with any adjacent region that covers its missing
    constraints — including another deficient region covering the
    complementary subset. Regions that cannot be repaired are left for
    the finalization pass to dissolve.
    """
    extrema = state.constraints.extrema
    if not extrema:
        return
    changed = True
    while changed:
        changed = False
        for region_id in list(state.regions):
            region = state.regions.get(region_id)
            if region is None:
                continue  # absorbed by an earlier merge this sweep
            missing = [c for c in extrema if not region.satisfies(c)]
            if not missing:
                continue
            for other in state.adjacent_regions(region):
                if all(other.satisfies(c) for c in missing):
                    state.merge_regions(region, other)
                    changed = True
                    break
