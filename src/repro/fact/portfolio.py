"""Portfolio-parallel Tabu search (Phase 3 at ``tabu_portfolio > 1``).

A *portfolio* runs several independently seeded Tabu searches and
keeps the best final partition — the classic algorithm-portfolio
recipe for a stochastic local search whose outcome depends on its
starting point. The members diversify along two axes:

- **starting point**: member *i* starts from construction pass
  ``ranked_labels[i % len(ranked_labels)]`` — the winning pass first,
  then the runner-up passes that tied it on ``(p, n_unassigned)``;
- **perturbation**: every member except member 0 applies a few seeded
  random admissible moves (made tabu) before its descent, so members
  sharing a starting pass still explore different basins.

Member 0 is the plain deterministic search from the winning pass, so
the portfolio's answer is never worse than the single-search answer
for the same construction. The reduction is ``min`` over
``(final_score, member_index)`` — bit-deterministic, which together
with the canonical per-member state rebuild
(:meth:`~repro.fact.state.SolutionState.from_labels`) makes the
portfolio result identical whether members run serially
(``n_jobs == 1``) or on the worker pool.
"""

from __future__ import annotations

import time

from ..obs.telemetry import DISABLED
from ..runtime import Budget, Interrupted, RunStatus
from .config import FaCTConfig
from .pool import portfolio_member_task
from .state import SolutionState
from .tabu import TabuResult, tabu_improve

__all__ = ["improve_portfolio"]

# Perturbation kicks applied by members 1..k-1 before their descent.
# A handful is enough to leave the starting basin; each kick's reverse
# move is tabu, so a member cannot immediately undo its diversification.
_PERTURBATION_KICKS = 3

# Parent-side poll interval while waiting on member futures.
_POLL_SECONDS = 0.05


def improve_portfolio(
    state: SolutionState,
    config: FaCTConfig,
    objective=None,
    budget: Budget | None = None,
    pool=None,
    ranked_labels=None,
    ledger=None,
    runtime_perf=None,
    telemetry=None,
) -> TabuResult:
    """Run a ``config.tabu_portfolio``-member Tabu portfolio.

    *state* is the canonical construction state (member 0's starting
    point); *ranked_labels* the construction passes eligible as
    starting points (defaults to just *state*'s own labels). With
    ``tabu_portfolio == 1`` this is exactly :func:`tabu_improve` on
    *state*. Members run on *pool* (a
    :class:`~repro.fact.pool.SolverPool`) when given and
    ``config.n_jobs > 1``, serially in-process otherwise — with
    bit-identical results.

    The winning member's search statistics are returned; its
    ``heterogeneity_before`` is always member 0's (the winning
    construction pass), so :attr:`TabuResult.improvement` measures
    against the partition the serial solver would have started from.
    Per-member wall-clock lands in ``state.perf.timings`` under
    ``tabu.member<i>``, and each member's hot-path counters are merged
    into ``state.perf``.

    *ledger* (a :class:`~repro.fact.checkpointing.SolveLedger`)
    replays members recorded by an earlier killed run and records
    freshly completed ones; *runtime_perf* collects the parallel
    path's worker-fault counters.

    *telemetry* is an optional :class:`repro.obs.SolveTelemetry`: the
    whole phase becomes one ``tabu`` span with a ``member`` span per
    portfolio member (worker-side children stitched in).
    """
    telemetry = telemetry if telemetry is not None else DISABLED
    members = config.tabu_portfolio
    if members <= 1:
        with telemetry.tracer.span("tabu", members=1):
            return tabu_improve(
                state,
                config,
                objective=objective,
                budget=budget,
                tracer=telemetry.tracer,
                telemetry=telemetry,
            )

    with telemetry.tracer.span("tabu", members=members) as tabu_span:
        started = time.perf_counter()
        base_labels = _labels_of(state)
        starts = list(ranked_labels) if ranked_labels else [base_labels]
        detached = objective.detached() if objective is not None else None
        specs = [
            (
                starts[index % len(starts)],
                index,
                config.derived_tabu_seed(index),
                0 if index == 0 else _PERTURBATION_KICKS,
                detached,
            )
            for index in range(members)
        ]

        if pool is not None and config.n_jobs > 1:
            outcomes, status = _run_members_parallel(
                specs, budget, pool, config, ledger, runtime_perf, telemetry
            )
        else:
            outcomes, status = _run_members_serial(
                specs, budget, pool, config, state, ledger, telemetry
            )
        for outcome in outcomes:
            # Member-index order, so the event log is deterministic
            # regardless of worker completion order.
            telemetry.adopt_spans(outcome[4])

        perf = state.perf
        baseline_h = state.total_heterogeneity()
        if not outcomes:
            # Interrupted before any member finished: the construction
            # partition itself is the best available answer.
            return TabuResult(
                partition=state.to_partition(),
                heterogeneity_before=baseline_h,
                heterogeneity_after=baseline_h,
                elapsed_seconds=time.perf_counter() - started,
                status=status or RunStatus.COMPLETE,
            )

        for outcome in outcomes:
            stats, member_perf = outcome[2], outcome[3]
            perf.merge(member_perf)
            perf.record_seconds(
                f"tabu.member{stats['member']}", stats["elapsed_seconds"]
            )
        best = min(outcomes, key=lambda item: (item[0], item[2]["member"]))
        best_score, best_labels, best_stats = best[0], best[1], best[2]

        before = next(
            (
                outcome[2]["heterogeneity_before"]
                for outcome in outcomes
                if outcome[2]["member"] == 0
            ),
            baseline_h,
        )
        if status is None:
            member_status = best_stats["status"]
            if member_status is not RunStatus.COMPLETE:
                status = member_status
        if tabu_span.recording:
            tabu_span.set(
                best_member=best_stats["member"],
                heterogeneity_after=best_score,
                iterations=best_stats["iterations"],
            )
        return TabuResult(
            partition=_partition_from_labels(best_labels),
            heterogeneity_before=before,
            heterogeneity_after=best_score,
            iterations=best_stats["iterations"],
            moves_applied=best_stats["moves_applied"],
            elapsed_seconds=time.perf_counter() - started,
            status=status or RunStatus.COMPLETE,
        )


def _labels_of(state: SolutionState) -> dict[int, int]:
    return {
        area_id: region_id
        for area_id, region_id in state.assignment.items()
        if region_id is not None
    }


def _partition_from_labels(labels: dict[int, int]):
    from ..core.partition import Partition

    return Partition.from_labels(labels)


def _run_members_serial(
    specs, budget, pool, config, state, ledger=None, telemetry=DISABLED
):
    """Run the members one after another in-process.

    Uses the pool's ``run_local`` when a pool exists (so the exact
    same task function executes either way); without one, installs an
    equivalent context from *state* directly. Ledger-recorded members
    are replayed; freshly completed ones are recorded.
    """
    from .pool import SolverPool

    if pool is None:
        pool = SolverPool(
            state.collection,
            state.constraints,
            state.excluded,
            config,
            max_workers=1,
        )
    span_context = telemetry.span_context()
    outcomes = []
    status = None
    for spec in specs:
        if budget is not None:
            status = budget.status()
            if status is not None:
                break
        member_index = spec[1]
        outcome = (
            ledger.lookup_member(member_index) if ledger is not None else None
        )
        if outcome is None:
            outcome = pool.run_local(
                portfolio_member_task, *spec, None, budget, span_context
            )
            if ledger is not None:
                ledger.record_member(member_index, outcome, budget)
        else:
            telemetry.event(
                "checkpoint.replay", phase="tabu", member=member_index
            )
        if budget is not None:
            try:
                budget.checkpoint("pool.result")
            except Interrupted:
                pass  # observed at the next member's status check
        outcomes.append(outcome)
        telemetry.progress(
            "tabu", done=len(outcomes), total=len(specs), member=member_index
        )
    return outcomes, status


def _run_members_parallel(
    specs, budget, pool, config, ledger=None, runtime_perf=None,
    telemetry=DISABLED,
):
    """Fan the members out over the worker pool.

    Collection is fault-tolerant
    (:meth:`~repro.fact.pool.SolverPool.collect_resilient`): a crashed
    or poisoned member retries on surviving workers or degrades to
    in-process execution; workers enforce the remaining deadline
    locally. Ledger-recorded members are replayed without being
    submitted.
    """
    replayed: dict[int, tuple] = {}
    to_run: list[tuple] = []
    for spec in specs:
        outcome = ledger.lookup_member(spec[1]) if ledger is not None else None
        if outcome is not None:
            replayed[spec[1]] = outcome
            telemetry.event(
                "checkpoint.replay", phase="tabu", member=spec[1]
            )
        else:
            to_run.append(spec)

    span_context = telemetry.span_context()
    deadline_remaining = budget.remaining() if budget is not None else None
    submit_args = [
        spec + (deadline_remaining, None, span_context) for spec in to_run
    ]
    local_args = [spec + (None, budget, span_context) for spec in to_run]

    completed = {"count": len(replayed)}
    if replayed:
        telemetry.progress(
            "tabu", done=completed["count"], total=len(specs)
        )

    def _record(position: int, outcome) -> None:
        if ledger is not None:
            ledger.record_member(to_run[position][1], outcome, budget)
        completed["count"] += 1
        telemetry.progress(
            "tabu",
            done=completed["count"],
            total=len(specs),
            member=to_run[position][1],
        )

    collected, status = pool.collect_resilient(
        portfolio_member_task,
        submit_args,
        local_args,
        budget=budget,
        perf=runtime_perf,
        retry_policy=config.pool_retry_policy(),
        task_deadline=config.worker_task_deadline_seconds,
        on_result=_record,
        poll_seconds=_POLL_SECONDS,
        telemetry=telemetry,
    )

    outcome_by_member = dict(replayed)
    for position, outcome in collected.items():
        outcome_by_member[to_run[position][1]] = outcome
    # Member-index order == submission order.
    outcomes = [outcome_by_member[m] for m in sorted(outcome_by_member)]
    return outcomes, status
