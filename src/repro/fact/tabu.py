"""FaCT Phase 3 — Tabu-search local optimization (Section V-C).

Starting from the construction phase's feasible partition, repeatedly
moves boundary areas between adjacent regions to minimize the overall
heterogeneity ``H(P)`` without ever violating a constraint or breaking
contiguity, and without changing ``p`` (donor regions never empty).

Classic Tabu mechanics (Glover & Laguna):

- each iteration executes the **best admissible move**, even when it
  worsens ``H`` (to escape local optima);
- the reverse of an executed move — (area, donor region) — is *tabu*
  for ``tabu_tenure`` iterations;
- **aspiration**: a tabu move is admissible anyway when it would beat
  the best heterogeneity seen so far;
- the search stops after ``tabu_max_no_improve`` consecutive
  iterations without improving the best ``H`` (paper default: the
  dataset size), or when no admissible move exists.

The candidate-move pool is maintained incrementally: after a move,
only regions whose state changed (donor, receiver) have their incident
moves re-derived, mirroring the paper's "update the valid moves …
in the region updated by the previous move".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.partition import Partition
from ..core.region import Region
from ..runtime import Interrupted, RunStatus
from .config import FaCTConfig
from .state import SolutionState

__all__ = ["TabuResult", "tabu_improve"]


@dataclass
class TabuResult:
    """Outcome of the local-search phase.

    ``improvement`` is the paper's measure: ``|H_before - H_after| /
    H_before`` (0 when the construction heterogeneity was already 0).
    ``status`` is ``COMPLETE`` when the search reached its natural
    stopping condition, or the interruption status when a budget
    deadline/cancel cut it short — the returned partition is then the
    best one seen before the interruption (always constraint-valid;
    the search never stores an invalid snapshot).
    """

    partition: Partition
    heterogeneity_before: float
    heterogeneity_after: float
    iterations: int = 0
    moves_applied: int = 0
    elapsed_seconds: float = 0.0
    status: RunStatus = RunStatus.COMPLETE

    @property
    def improvement(self) -> float:
        """Relative heterogeneity improvement achieved by the search."""
        if self.heterogeneity_before == 0:
            return 0.0
        return (
            abs(self.heterogeneity_before - self.heterogeneity_after)
            / self.heterogeneity_before
        )


# A move is "take `area` out of region `donor_id` into region
# `receiver_id`"; its key omits the donor because an area belongs to
# exactly one region at a time.
_MoveKey = tuple[int, int]  # (area_id, receiver_region_id)


def tabu_improve(
    state: SolutionState,
    config: FaCTConfig,
    objective=None,
    budget=None,
) -> TabuResult:
    """Run Tabu search on *state* in place and return the best result.

    Parameters
    ----------
    objective:
        An :class:`repro.fact.objectives.Objective`; defaults to the
        paper's heterogeneity ``H(P)``. When a custom objective is
        used, the ``heterogeneity_before/after`` fields of the result
        carry *that objective's* scores.
    budget:
        Optional :class:`repro.runtime.Budget` checked at the top of
        every iteration; on deadline/cancel the search stops and
        returns the best snapshot so far with the interruption status.
    """
    import time

    from .objectives import HeterogeneityObjective

    started = time.perf_counter()
    n = len(state.collection)
    patience = config.resolved_tabu_patience(n)
    iteration_cap = config.resolved_tabu_cap(n)

    if objective is None:
        objective = HeterogeneityObjective()
    objective.attach(state)
    current_h = objective.total()
    initial_h = current_h
    best_h = current_h
    best_labels = _snapshot_labels(state)

    pool = _MovePool(state, objective)
    tabu_until: dict[_MoveKey, int] = {}
    iterations = 0
    moves_applied = 0
    no_improve = 0
    status = RunStatus.COMPLETE

    while iterations < iteration_cap and no_improve < patience:
        if budget is not None:
            try:
                budget.checkpoint("tabu.iteration")
            except Interrupted as signal:
                status = signal.status
                break
        iterations += 1
        chosen = pool.best_admissible(iterations, tabu_until, current_h, best_h)
        if chosen is None:
            break
        delta, area_id, donor_id, receiver_id = chosen
        receiver = state.regions[receiver_id]
        state.move(area_id, receiver)
        current_h += delta
        moves_applied += 1
        # Forbid the reverse move for `tenure` iterations.
        tabu_until[(area_id, donor_id)] = iterations + config.tabu_tenure
        objective.apply_move(donor_id, receiver_id, area_id)
        pool.after_move(area_id, donor_id, receiver_id)
        if current_h < best_h - 1e-9:
            best_h = current_h
            best_labels = _snapshot_labels(state)
            no_improve = 0
        else:
            no_improve += 1

    return TabuResult(
        partition=Partition.from_labels(best_labels),
        heterogeneity_before=initial_h,
        heterogeneity_after=best_h,
        iterations=iterations,
        moves_applied=moves_applied,
        elapsed_seconds=time.perf_counter() - started,
        status=status,
    )


def _snapshot_labels(state: SolutionState) -> dict[int, int]:
    """Labels of the current assignment (excluded areas included as
    unassigned so the Partition covers the whole collection)."""
    labels: dict[int, int] = {}
    for area_id in state.collection.ids:
        region_id = state.assignment.get(area_id)
        labels[area_id] = -1 if region_id is None else region_id
    return labels


class _MovePool:
    """Incrementally maintained pool of valid moves.

    Moves are grouped by donor region. After an executed move only the
    regions whose *structure* changed are fully re-derived: the donor,
    the receiver, and regions containing a neighbor of the moved area
    (those are the only places where moves can appear or disappear).
    Cached entries elsewhere can still carry stale receiver-side
    deltas — :meth:`best_admissible` therefore re-validates its chosen
    move against live region state before returning it, correcting or
    evicting stale entries on the spot.
    """

    def __init__(self, state: SolutionState, objective):
        self._state = state
        self._objective = objective
        self._moves_by_donor: dict[int, dict[_MoveKey, float]] = {}
        self._dirty: set[int] = set(state.regions)

    def mark_dirty(self, region_id: int) -> None:
        """Schedule one region's donated moves for re-derivation."""
        self._dirty.add(region_id)

    def after_move(self, area_id: int, donor_id: int, receiver_id: int) -> None:
        """Record the structural consequences of an executed move."""
        self._dirty.add(donor_id)
        self._dirty.add(receiver_id)
        assignment = self._state.assignment
        for neighbor in self._state.collection.neighbors(area_id):
            neighbor_region = assignment.get(neighbor)
            if neighbor_region is not None:
                self._dirty.add(neighbor_region)

    def _refresh(self) -> None:
        for region_id in self._dirty:
            region = self._state.regions.get(region_id)
            if region is None:
                self._moves_by_donor.pop(region_id, None)
                continue
            self._moves_by_donor[region_id] = self._derive_moves(region)
        self._dirty.clear()

    def _derive_moves(self, donor: Region) -> dict[_MoveKey, float]:
        """All valid moves donating one of *donor*'s boundary areas to
        an adjacent region, with their heterogeneity deltas."""
        state = self._state
        constraints = state.constraints
        moves: dict[_MoveKey, float] = {}
        if len(donor) <= 1:
            return moves
        collection = state.collection
        perf = state.perf
        # The region's contiguity oracle answers "who may leave?" for
        # every member at once (one cached Hopcroft–Tarjan pass instead
        # of a per-area BFS) — and the same cache then serves the O(1)
        # re-validation in _live_delta.
        removable = donor.removable_areas()
        for area_id in sorted(donor.area_ids):
            if area_id not in removable:
                continue
            receiver_ids = {
                state.assignment[neighbor]
                for neighbor in collection.neighbors(area_id)
                if state.assignment.get(neighbor) is not None
            }
            receiver_ids.discard(donor.region_id)
            if not receiver_ids:
                continue
            if not donor.satisfies_after_remove(constraints, area_id):
                continue
            for receiver_id in sorted(receiver_ids):
                perf.candidate_evaluations += 1
                receiver = state.regions[receiver_id]
                if not receiver.satisfies_after_add(constraints, area_id):
                    continue
                moves[(area_id, receiver_id)] = self._objective.delta_move(
                    donor, receiver, area_id
                )
        return moves

    def _scan(
        self,
        iteration: int,
        tabu_until: dict[_MoveKey, int],
        current_h: float,
        best_h: float,
    ) -> tuple[float, int, int, int] | None:
        best: tuple[float, int, int, int] | None = None
        for donor_id, moves in self._moves_by_donor.items():
            for (area_id, receiver_id), delta in moves.items():
                if tabu_until.get((area_id, receiver_id), 0) >= iteration:
                    # Aspiration: accept a tabu move that beats best_h.
                    if current_h + delta >= best_h - 1e-9:
                        continue
                if best is None or delta < best[0]:
                    best = (delta, area_id, donor_id, receiver_id)
        return best

    def _live_delta(
        self, area_id: int, donor_id: int, receiver_id: int
    ) -> float | None:
        """Re-evaluate one cached move against live region state.

        Returns the accurate delta, or ``None`` when the move is no
        longer valid."""
        state = self._state
        donor = state.regions.get(donor_id)
        receiver = state.regions.get(receiver_id)
        if donor is None or receiver is None or area_id not in donor:
            return None
        if len(donor) <= 1:
            return None
        if not receiver.touches(area_id):
            return None
        constraints = state.constraints
        if not donor.satisfies_after_remove(constraints, area_id):
            return None
        if not receiver.satisfies_after_add(constraints, area_id):
            return None
        if not donor.remains_contiguous_without(area_id):
            return None
        return self._objective.delta_move(donor, receiver, area_id)

    def best_admissible(
        self,
        iteration: int,
        tabu_until: dict[_MoveKey, int],
        current_h: float,
        best_h: float,
    ) -> tuple[float, int, int, int] | None:
        """The lowest-delta admissible move as
        ``(delta, area, donor, receiver)``, or ``None``.

        Chosen moves are re-validated against live state: a stale
        entry is corrected (or evicted) and the scan repeats, so the
        returned move is always executable with an exact delta.
        """
        self._refresh()
        while True:
            candidate = self._scan(iteration, tabu_until, current_h, best_h)
            if candidate is None:
                return None
            cached_delta, area_id, donor_id, receiver_id = candidate
            live = self._live_delta(area_id, donor_id, receiver_id)
            key = (area_id, receiver_id)
            donor_moves = self._moves_by_donor.get(donor_id, {})
            if live is None:
                donor_moves.pop(key, None)
                continue
            if abs(live - cached_delta) > 1e-9:
                donor_moves[key] = live
                continue
            return (live, area_id, donor_id, receiver_id)
