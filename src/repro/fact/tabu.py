"""FaCT Phase 3 — Tabu-search local optimization (Section V-C).

Starting from the construction phase's feasible partition, repeatedly
moves boundary areas between adjacent regions to minimize the overall
heterogeneity ``H(P)`` without ever violating a constraint or breaking
contiguity, and without changing ``p`` (donor regions never empty).

Classic Tabu mechanics (Glover & Laguna):

- each iteration executes the **best admissible move**, even when it
  worsens ``H`` (to escape local optima);
- the reverse of an executed move — (area, donor region) — is *tabu*
  for ``tabu_tenure`` iterations;
- **aspiration**: a tabu move is admissible anyway when it would beat
  the best heterogeneity seen so far;
- the search stops after ``tabu_max_no_improve`` consecutive
  iterations without improving the best ``H`` (paper default: the
  dataset size), or when no admissible move exists.

The candidate-move pool is maintained incrementally: after a move,
only regions whose state changed (donor, receiver) have their incident
moves re-derived, mirroring the paper's "update the valid moves …
in the region updated by the previous move". On top of the pool sits a
**lazy min-heap index**: every derived move is pushed once, entries are
invalidated by a per-donor generation stamp instead of being searched
for, and the per-iteration "best admissible move" query pops a handful
of entries instead of scanning the entire pool — O(log m) amortized
versus O(m) per iteration. With the hot-path cache gate off
(:func:`repro.core.perf.hotpath_caches_enabled`) the pool falls back
to the exhaustive reference scan; both paths order candidates by the
same total key ``(delta, area, receiver, donor)``, so the chosen
trajectory is identical.

For the portfolio parallelism of :mod:`repro.fact.portfolio`, the
search accepts an optional seeded RNG plus a perturbation count:
``perturbation_moves`` random admissible moves are applied (and made
tabu) before the deterministic descent starts, diversifying the
portfolio members' starting points. The best snapshot is taken *before*
the kicks, so a member never returns something worse than its input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from random import Random

from ..core.aggregates import Aggregate
from ..core.partition import Partition
from ..obs.spans import NULL_TRACER
from ..core.perf import hotpath_caches_enabled
from ..core.region import Region
from ..runtime import Interrupted, RunStatus
from .config import FaCTConfig
from .state import SolutionState

__all__ = ["TabuResult", "tabu_improve"]


@dataclass
class TabuResult:
    """Outcome of the local-search phase.

    ``improvement`` is the paper's measure: ``|H_before - H_after| /
    H_before`` (0 when the construction heterogeneity was already 0).
    ``status`` is ``COMPLETE`` when the search reached its natural
    stopping condition, or the interruption status when a budget
    deadline/cancel cut it short — the returned partition is then the
    best one seen before the interruption (always constraint-valid;
    the search never stores an invalid snapshot).
    """

    partition: Partition
    heterogeneity_before: float
    heterogeneity_after: float
    iterations: int = 0
    moves_applied: int = 0
    elapsed_seconds: float = 0.0
    status: RunStatus = RunStatus.COMPLETE

    @property
    def improvement(self) -> float:
        """Relative heterogeneity improvement achieved by the search."""
        if self.heterogeneity_before == 0:
            return 0.0
        return (
            abs(self.heterogeneity_before - self.heterogeneity_after)
            / self.heterogeneity_before
        )


# A move is "take `area` out of region `donor_id` into region
# `receiver_id`"; its key omits the donor because an area belongs to
# exactly one region at a time.
_MoveKey = tuple[int, int]  # (area_id, receiver_region_id)

# The vectorized move scorer packs one (candidate, receiver) pair into
# a single int64 — candidate ordinal in the high bits, receiver region
# id in the low 31 (region ids are solve-local counters, nowhere near
# 2**31). Sorted codes decode to the scalar loop's (area asc, receiver
# asc) visit order.
_PAIR_SHIFT = 31
_PAIR_MASK = (1 << _PAIR_SHIFT) - 1
_NEG_INF = float("-inf")
_POS_INF = float("inf")

# Donors smaller than this take the scalar derive even under the numpy
# backend: the vector path pays a fixed per-derive cost (CSR gather,
# pair dedup, kernel dispatch) that only amortizes once the donor
# boundary yields a few dozen candidate pairs. Both paths are
# bit-identical by contract, so this is purely a dispatch heuristic —
# small-region workloads (many tiny regions) run at scalar speed, the
# scaling benchmark's 250+-area regions always vectorize. Tests
# monkeypatch this to 0 to force the vector path on small fixtures.
_VECTOR_MIN_DONOR = 32

# In-search progress cadence: offer a `progress` event every this many
# iterations (the telemetry layer applies its own wall-clock bound on
# top, so short iterations cannot flood the event log).
_PROGRESS_ITERATIONS = 64


def tabu_improve(
    state: SolutionState,
    config: FaCTConfig,
    objective=None,
    budget=None,
    rng: Random | None = None,
    perturbation_moves: int = 0,
    tracer=None,
    telemetry=None,
) -> TabuResult:
    """Run Tabu search on *state* in place and return the best result.

    Parameters
    ----------
    objective:
        An :class:`repro.fact.objectives.Objective`; defaults to the
        paper's heterogeneity ``H(P)``. When a custom objective is
        used, the ``heterogeneity_before/after`` fields of the result
        carry *that objective's* scores.
    budget:
        Optional :class:`repro.runtime.Budget` checked at the top of
        every iteration; on deadline/cancel the search stops and
        returns the best snapshot so far with the interruption status.
    rng, perturbation_moves:
        Portfolio diversification: apply this many random admissible
        moves (chosen by *rng*, each made tabu) before the
        deterministic search starts. The best-seen snapshot is taken
        before the kicks, so the result is never worse than the input
        partition. ``perturbation_moves > 0`` requires an *rng*.
    tracer:
        Optional :class:`repro.obs.Tracer`; the search becomes one
        ``search`` span carrying iteration/score attributes.
    telemetry:
        Optional :class:`repro.obs.SolveTelemetry`; the search emits
        in-loop ``progress`` events (iterations against the iteration
        cap) every :data:`_PROGRESS_ITERATIONS` iterations, further
        rate-bounded by the telemetry layer. Emission is
        write-only — it never feeds back into move selection — so
        partitions stay bit-identical with telemetry on or off.
    """
    import time

    from .objectives import HeterogeneityObjective

    if tracer is None:
        tracer = NULL_TRACER
    emit_progress = telemetry is not None and getattr(
        telemetry, "enabled", False
    )
    with tracer.span("search") as search_span:
        started = time.perf_counter()
        n = len(state.collection)
        patience = config.resolved_tabu_patience(n)
        iteration_cap = config.resolved_tabu_cap(n)

        if objective is None:
            objective = HeterogeneityObjective()
        objective.attach(state)
        current_h = objective.total()
        initial_h = current_h
        best_h = current_h

        # Labels are maintained incrementally (O(1) per move) so a new-best
        # snapshot is one C-level dict copy instead of a Python pass over
        # the whole collection.
        labels = _initial_labels(state)
        best_labels = dict(labels)

        pool = _MovePool(state, objective)
        tabu_until: dict[_MoveKey, int] = {}
        iterations = 0
        moves_applied = 0
        no_improve = 0
        status = RunStatus.COMPLETE

        for _ in range(perturbation_moves):
            kick = pool.random_admissible(rng)
            if kick is None:
                break
            delta, area_id, donor_id, receiver_id = kick
            state.move(area_id, state.regions[receiver_id])
            labels[area_id] = receiver_id
            current_h += delta
            moves_applied += 1
            # The undo of a kick is tabu through the first `tenure`
            # iterations of the main loop (which counts from 1).
            tabu_until[(area_id, donor_id)] = config.tabu_tenure
            objective.apply_move(donor_id, receiver_id, area_id)
            pool.after_move(area_id, donor_id, receiver_id)

        while iterations < iteration_cap and no_improve < patience:
            if budget is not None:
                try:
                    budget.checkpoint("tabu.iteration")
                except Interrupted as signal:
                    status = signal.status
                    break
            iterations += 1
            chosen = pool.best_admissible(iterations, tabu_until, current_h, best_h)
            if chosen is None:
                break
            delta, area_id, donor_id, receiver_id = chosen
            receiver = state.regions[receiver_id]
            state.move(area_id, receiver)
            labels[area_id] = receiver_id
            current_h += delta
            moves_applied += 1
            # Forbid the reverse move for `tenure` iterations.
            tabu_until[(area_id, donor_id)] = iterations + config.tabu_tenure
            objective.apply_move(donor_id, receiver_id, area_id)
            pool.after_move(area_id, donor_id, receiver_id)
            if current_h < best_h - 1e-9:
                best_h = current_h
                best_labels = dict(labels)
                no_improve = 0
            else:
                no_improve += 1
            if emit_progress and iterations % _PROGRESS_ITERATIONS == 0:
                telemetry.progress(
                    "tabu.search",
                    done=iterations,
                    total=iteration_cap,
                    no_improve=no_improve,
                    patience=patience,
                )

        result = TabuResult(
            partition=Partition.from_labels(best_labels),
            heterogeneity_before=initial_h,
            heterogeneity_after=best_h,
            iterations=iterations,
            moves_applied=moves_applied,
            elapsed_seconds=time.perf_counter() - started,
            status=status,
        )
        if search_span.recording:
            search_span.set(
                iterations=iterations,
                moves_applied=moves_applied,
                heterogeneity_before=initial_h,
                heterogeneity_after=best_h,
                status=status.value,
            )
        return result


def _initial_labels(state: SolutionState) -> dict[int, int]:
    """Labels of the current assignment (excluded areas included as
    unassigned so the Partition covers the whole collection)."""
    labels: dict[int, int] = {}
    assignment = state.assignment
    for area_id in state.collection.ids:
        region_id = assignment.get(area_id)
        labels[area_id] = -1 if region_id is None else region_id
    return labels


class _MovePool:
    """Incrementally maintained pool of valid moves with a heap index.

    Moves are grouped by donor region. After an executed move only the
    regions whose *structure* changed are fully re-derived: the donor,
    the receiver, and regions containing a neighbor of the moved area
    (those are the only places where moves can appear or disappear).
    Cached entries elsewhere can still carry stale receiver-side
    deltas — :meth:`best_admissible` therefore re-validates its chosen
    move against live region state before returning it, correcting or
    evicting stale entries on the spot.

    The heap index holds one entry per derived move, keyed
    ``(delta, area, receiver, donor, stamp)``. Entries are never
    removed eagerly: a per-donor generation stamp (bumped whenever the
    donor's moves are re-derived) and an exact match against the
    donor's current cached delta decide validity at pop time. Entries
    popped but still valid (tabu-skipped, or the chosen move itself)
    are pushed back, so the heap always covers the live pool.
    """

    def __init__(self, state: SolutionState, objective):
        from .objectives import HeterogeneityObjective

        self._state = state
        self._objective = objective
        self._moves_by_donor: dict[int, dict[_MoveKey, float]] = {}
        self._dirty: set[int] = set(state.regions)
        # Captured once per pool: flipping the gate mid-search would
        # desynchronize the heap from the pool.
        self._indexed = hotpath_caches_enabled()
        # Batch candidate scoring off the flat-array mirror: only for
        # the paper objective (whose deltas close over the maintained
        # sorted/prefix structure) and only with the caches on — the
        # uncached reference path stays the scalar oracle. Both paths
        # produce identical move dicts in identical insertion order.
        self._vector = (
            self._indexed
            and state.backend == "numpy"
            and state.array_state is not None
            and type(objective) is HeterogeneityObjective
        )
        self._heap: list[tuple[float, int, int, int, int]] = []
        self._stamp: dict[int, int] = {}
        # Donor-side derive cache, keyed by the donor's membership
        # version: after a move, regions adjacent to the moved area are
        # re-derived even though their *own* membership is unchanged
        # (only their neighborhood changed), so everything that depends
        # solely on donor membership — candidate order, CSR gather
        # geometry, donor-side feasibility and removal deltas —
        # survives verbatim. Region ids are never reused, so the
        # (id → version) key cannot alias across dissolve/new cycles.
        self._donor_cache: dict[int, tuple[int, tuple | None]] = {}

    def mark_dirty(self, region_id: int) -> None:
        """Schedule one region's donated moves for re-derivation."""
        self._dirty.add(region_id)

    def after_move(self, area_id: int, donor_id: int, receiver_id: int) -> None:
        """Record the structural consequences of an executed move."""
        self._dirty.add(donor_id)
        self._dirty.add(receiver_id)
        assignment = self._state.assignment
        for neighbor in self._state.collection.neighbors(area_id):
            neighbor_region = assignment.get(neighbor)
            if neighbor_region is not None:
                self._dirty.add(neighbor_region)

    def _refresh(self) -> None:
        heap = self._heap
        for region_id in self._dirty:
            self._stamp[region_id] = stamp = self._stamp.get(region_id, 0) + 1
            region = self._state.regions.get(region_id)
            if region is None:
                self._moves_by_donor.pop(region_id, None)
                self._donor_cache.pop(region_id, None)
                continue
            moves = self._derive_moves(region)
            self._moves_by_donor[region_id] = moves
            if self._indexed:
                for (area_id, receiver_id), delta in moves.items():
                    heappush(
                        heap, (delta, area_id, receiver_id, region_id, stamp)
                    )
        self._dirty.clear()

    def _derive_moves(self, donor: Region) -> dict[_MoveKey, float]:
        """All valid moves donating one of *donor*'s boundary areas to
        an adjacent region, with their heterogeneity deltas.

        Dispatches to the numpy batch scorer when the backend allows
        and the donor is large enough to amortize the vector path's
        fixed overhead (``_VECTOR_MIN_DONOR``); the scalar loop is the
        reference path. Identical output either way — same keys, same
        deltas (bit for bit), same insertion order — so the heap index
        and the tabu trajectory cannot tell the backends apart.
        """
        if self._vector and len(donor) >= _VECTOR_MIN_DONOR:
            return self._derive_moves_vector(donor)
        return self._derive_moves_scalar(donor)

    def _derive_moves_scalar(self, donor: Region) -> dict[_MoveKey, float]:
        state = self._state
        constraints = state.constraints
        moves: dict[_MoveKey, float] = {}
        if len(donor) <= 1:
            return moves
        collection = state.collection
        assignment = state.assignment
        regions = state.regions
        perf = state.perf
        objective = self._objective
        # The region's contiguity oracle answers "who may leave?" for
        # every member at once (one cached Hopcroft–Tarjan pass instead
        # of a per-area BFS) — and the same cache then serves the O(1)
        # re-validation in _live_delta.
        removable = donor.removable_areas()
        donor_id = donor.region_id
        for area_id in sorted(donor.area_ids):
            if area_id not in removable:
                continue
            receiver_ids = {
                assignment[neighbor]
                for neighbor in collection.neighbors(area_id)
                if assignment.get(neighbor) is not None
            }
            receiver_ids.discard(donor_id)
            if not receiver_ids:
                continue
            if not donor.satisfies_after_remove(constraints, area_id):
                continue
            for receiver_id in sorted(receiver_ids):
                perf.candidate_evaluations += 1
                receiver = regions[receiver_id]
                if not receiver.satisfies_after_add(constraints, area_id):
                    continue
                moves[(area_id, receiver_id)] = objective.delta_move(
                    donor, receiver, area_id
                )
        return moves

    def _derive_moves_vector(self, donor: Region) -> dict[_MoveKey, float]:
        """Batch counterpart of :meth:`_derive_moves_scalar`.

        One CSR gather discovers every (candidate, receiver) pair of
        the donor boundary at once; constraint verdicts and
        heterogeneity deltas are then evaluated as elementwise float64
        vector arithmetic. Each step replays the exact scalar
        computation (``searchsorted`` == ``bisect_left``, the same
        closed-form ``rank·d − prefix[rank]`` pricing off the same
        maintained prefix lists, IEEE-identical elementwise ops), so
        the resulting move dict is bit-identical to the scalar one.
        """
        state = self._state
        moves: dict[_MoveKey, float] = {}
        if len(donor) <= 1:
            return moves
        astate = state.array_state
        arrays = astate.arrays
        np = arrays.np
        perf = state.perf
        perf.vector_derives += 1
        donor_id = donor.region_id
        # Everything that depends only on the donor's own membership is
        # cached across derives and reused verbatim while the donor's
        # membership version stands still (neighbor-only dirtiness).
        cached = self._donor_cache.get(donor_id)
        if cached is not None and cached[0] == donor._version:
            payload = cached[1]
            perf.donor_cache_hits += 1
        else:
            payload = self._donor_payload(donor, arrays, np)
            self._donor_cache[donor_id] = (donor._version, payload)
        if payload is None:
            return moves
        cand_ids, cand_idx, nbr_cols, owner, donor_ok, remove_delta = payload

        # Receiver discovery: one label gather over the candidates'
        # precomputed CSR columns.
        neighbor_labels = astate.labels[nbr_cols]
        edge = (neighbor_labels >= 0) & (neighbor_labels != donor_id)
        if not edge.any():
            return moves
        # Unique (candidate, receiver) pairs via one packed-int64
        # unique — far cheaper than a row-wise unique, same sorted
        # (area asc, receiver asc) order after decoding.
        codes = np.unique(
            (owner[edge] << _PAIR_SHIFT) | neighbor_labels[edge]
        )
        own = codes >> _PAIR_SHIFT
        recv = codes & _PAIR_MASK

        # Donor-side feasibility, vectorized over the candidates.
        pair_keep = donor_ok[own]
        if not pair_keep.all():
            own = own[pair_keep]
            recv = recv[pair_keep]
            if not len(own):
                return moves
        perf.candidate_evaluations += len(own)
        pair_idx = cand_idx[own]

        # Receiver-side feasibility over every pair at once (off the
        # flat per-region aggregate vectors), then pricing in one small
        # batch per adjacent region.
        ok = self._receiver_feasible_all(recv, pair_idx, np)
        kept = np.nonzero(ok)[0]
        priced = len(kept)
        deltas = np.empty(len(own), dtype=np.float64)
        if priced:
            regions = state.regions
            dissimilarity = arrays.dissimilarity
            recv_kept = recv[kept]
            order = np.argsort(recv_kept, kind="stable")
            sorted_rows = kept[order]
            sorted_recv = recv_kept[order]
            bounds = np.nonzero(np.diff(sorted_recv))[0] + 1
            group_starts = np.concatenate(([0], bounds)).tolist()
            group_ends = np.concatenate(
                (bounds, [len(sorted_recv)])
            ).tolist()
            group_ids = sorted_recv[np.concatenate(([0], bounds))].tolist()
            for start, end, receiver_id in zip(
                group_starts, group_ends, group_ids
            ):
                rows = sorted_rows[start:end]
                receiver = regions[receiver_id]
                r_values, r_prefix = receiver._struct_arrays(np)
                d_rows = dissimilarity[pair_idx[rows]]
                r_rank = r_values.searchsorted(d_rows, side="left")
                r_below = r_prefix[r_rank]
                r_above = r_prefix[-1] - r_below
                deltas[rows] = remove_delta[own[rows]] + (
                    (d_rows * r_rank - r_below)
                    + (r_above - d_rows * (len(r_values) - r_rank))
                )
        # Mirror the scalar path's accounting: each priced pair would
        # have cost one donor-side and one receiver-side delta query.
        perf.delta_fastpath += 2 * priced

        # Batch-convert once; per-row int()/float() coercions dominate
        # the dict build otherwise. kept is ascending, so insertion
        # order stays (area asc, receiver asc) — the scalar order.
        for o, r, delta in zip(
            own[kept].tolist(), recv[kept].tolist(), deltas[kept].tolist()
        ):
            moves[(cand_ids[o], r)] = delta
        return moves

    def _donor_payload(self, donor: Region, arrays, np):
        """Donor-membership-only intermediates of the vector derive.

        Returns ``(cand_ids, cand_idx, nbr_cols, owner, donor_ok,
        remove_delta)`` or ``None`` when the donor yields no candidate
        moves at all. Every array here is a pure function of the
        donor's member set plus static problem data (CSR topology,
        constraint bounds, dissimilarity), so the tuple stays valid —
        and is reused verbatim — until the donor's own membership
        changes (tracked by ``Region._version``).
        """
        candidates = donor.removable_areas()
        if not candidates:
            return None
        # Candidates in ascending area-id order — the scalar loop's
        # iteration order, which fixes the move-dict insertion order.
        cand_ids = sorted(candidates)
        cand_idx = arrays.positions(cand_ids)

        # CSR gather geometry: the concatenated neighbor columns of
        # every candidate row, plus each column's owning candidate.
        indptr = arrays.indptr
        starts = indptr[cand_idx]
        counts = indptr[cand_idx + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return None
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        flat = (
            np.arange(total, dtype=np.int64)
            - offsets
            + np.repeat(starts, counts)
        )
        nbr_cols = arrays.indices[flat]
        owner = np.repeat(
            np.arange(len(cand_ids), dtype=np.int64), counts
        )

        # Donor-side feasibility, vectorized over the candidates.
        donor_ok = self._donor_feasible_vector(donor, cand_idx, np)

        # Donor-side delta: -(sum_j |d - d_j|) off the maintained
        # sorted/prefix structure — the batch form of
        # Region.heterogeneity_delta_remove.
        values_arr, prefix_arr = donor._struct_arrays(np)
        d_cand = arrays.dissimilarity[cand_idx]
        rank = values_arr.searchsorted(d_cand, side="left")
        below = prefix_arr[rank]
        above = prefix_arr[-1] - below
        remove_delta = -(
            (d_cand * rank - below)
            + (above - d_cand * (len(values_arr) - rank))
        )
        return (cand_ids, cand_idx, nbr_cols, owner, donor_ok, remove_delta)

    def _donor_feasible_vector(self, donor: Region, cand_idx, np):
        """Elementwise ``satisfies_after_remove`` over the candidates.

        The batch form of the scalar per-constraint loop: SUM/AVG are
        pure vector arithmetic on the scalar aggregate state, MIN/MAX
        vectorize the common "not the extremum" case and fall back to
        the exact scalar rule only for candidates holding the cached
        extremum. ``len(donor) >= 2`` is guaranteed by the caller.
        """
        state = self._state
        arrays = state.array_state.arrays
        ok = np.ones(len(cand_idx), dtype=bool)
        # One gather per distinct attribute — constraint sets reuse
        # attributes across aggregate families.
        gathered: dict[str, object] = {}
        for constraint in state.constraints:
            aggregate = constraint.aggregate
            if aggregate == Aggregate.COUNT:
                if not constraint.contains(float(len(donor) - 1)):
                    ok[:] = False
                continue
            aggregate_state = donor._state(constraint.attribute)
            vals = gathered.get(constraint.attribute)
            if vals is None:
                vals = arrays.attributes[constraint.attribute][cand_idx]
                gathered[constraint.attribute] = vals
            if aggregate == Aggregate.SUM:
                value = aggregate_state.sum - vals
            elif aggregate == Aggregate.AVG:
                value = (aggregate_state.sum - vals) / (
                    aggregate_state.count - 1
                )
            elif aggregate == Aggregate.MIN:
                cached = aggregate_state.min
                value = np.full(len(vals), cached)
                for i in np.nonzero(vals <= cached)[0]:
                    value[i] = aggregate_state.value_after_remove(
                        Aggregate.MIN, float(vals[i])
                    )
            else:  # MAX
                cached = aggregate_state.max
                value = np.full(len(vals), cached)
                for i in np.nonzero(vals >= cached)[0]:
                    value[i] = aggregate_state.value_after_remove(
                        Aggregate.MAX, float(vals[i])
                    )
            # Finite values never fail an infinite bound, so skip
            # those comparisons — half the verdict work for the
            # one-sided constraints that dominate real workloads.
            if constraint.lower != _NEG_INF:
                ok &= value >= constraint.lower
            if constraint.upper != _POS_INF:
                ok &= value <= constraint.upper
        return ok

    def _receiver_feasible_all(self, recv, pair_idx, np):
        """Elementwise ``satisfies_after_add`` over every (candidate,
        receiver) pair at once.

        SUM/AVG/COUNT read the flat per-region aggregate vectors the
        :class:`repro.core.arrays.ArrayState` sink maintains (bit-equal
        to the scalar :class:`~repro.core.aggregates.AggregateState`
        sums — ``check_indexes`` asserts exactly that); MIN/MAX gather
        each receiver's cached extremum once per unique receiver.
        """
        state = self._state
        astate = state.array_state
        arrays = astate.arrays
        region_count = astate.region_count
        ok = np.ones(len(recv), dtype=bool)
        # Shared gathers: unique receivers (every MIN/MAX constraint),
        # per-attribute candidate values and receiver sums, and the
        # receiver count column — each computed at most once per call.
        uniq = None
        counts = None
        gathered: dict[str, object] = {}
        sums: dict[str, object] = {}
        for constraint in state.constraints:
            aggregate = constraint.aggregate
            if aggregate == Aggregate.COUNT:
                if counts is None:
                    counts = region_count[recv]
                value = counts + 1
            else:
                attribute = constraint.attribute
                vals = gathered.get(attribute)
                if vals is None:
                    vals = arrays.attributes[attribute][pair_idx]
                    gathered[attribute] = vals
                if aggregate == Aggregate.SUM:
                    total = sums.get(attribute)
                    if total is None:
                        total = astate.region_sums[attribute][recv]
                        sums[attribute] = total
                    value = total + vals
                elif aggregate == Aggregate.AVG:
                    total = sums.get(attribute)
                    if total is None:
                        total = astate.region_sums[attribute][recv]
                        sums[attribute] = total
                    if counts is None:
                        counts = region_count[recv]
                    value = (total + vals) / (counts + 1)
                else:  # MIN / MAX
                    if uniq is None:
                        uniq = np.unique(recv, return_inverse=True)
                    extrema = self._receiver_extrema(constraint, uniq, np)
                    if aggregate == Aggregate.MIN:
                        value = np.minimum(extrema, vals)
                    else:
                        value = np.maximum(extrema, vals)
            if constraint.lower != _NEG_INF:
                ok &= value >= constraint.lower
            if constraint.upper != _POS_INF:
                ok &= value <= constraint.upper
        return ok

    def _receiver_extrema(self, constraint, uniq, np):
        """Each pair's receiver-side cached MIN/MAX aggregate, gathered
        once per unique receiver (receivers per donor boundary are
        few). *uniq* is ``np.unique(recv, return_inverse=True)``."""
        regions = self._state.regions
        unique_recv, inverse = uniq
        attribute = constraint.attribute
        if constraint.aggregate == Aggregate.MIN:
            gathered = [
                regions[r]._state(attribute).min
                for r in unique_recv.tolist()
            ]
        else:
            gathered = [
                regions[r]._state(attribute).max
                for r in unique_recv.tolist()
            ]
        return np.asarray(gathered, dtype=np.float64)[inverse]

    def _scan(
        self,
        iteration: int,
        tabu_until: dict[_MoveKey, int],
        current_h: float,
        best_h: float,
    ) -> tuple[float, int, int, int] | None:
        """Exhaustive reference scan: the admissible move minimizing
        ``(delta, area, receiver, donor)`` — the same total order the
        heap index pops in."""
        best: tuple[float, int, int, int] | None = None
        for donor_id, moves in self._moves_by_donor.items():
            for (area_id, receiver_id), delta in moves.items():
                if tabu_until.get((area_id, receiver_id), 0) >= iteration:
                    # Aspiration: accept a tabu move that beats best_h.
                    if current_h + delta >= best_h - 1e-9:
                        continue
                candidate = (delta, area_id, receiver_id, donor_id)
                if best is None or candidate < best:
                    best = candidate
        if best is None:
            return None
        delta, area_id, receiver_id, donor_id = best
        return (delta, area_id, donor_id, receiver_id)

    def _live_delta(
        self, area_id: int, donor_id: int, receiver_id: int
    ) -> float | None:
        """Re-evaluate one cached move against live region state.

        Returns the accurate delta, or ``None`` when the move is no
        longer valid."""
        state = self._state
        donor = state.regions.get(donor_id)
        receiver = state.regions.get(receiver_id)
        if donor is None or receiver is None or area_id not in donor:
            return None
        if len(donor) <= 1:
            return None
        if not receiver.touches(area_id):
            return None
        constraints = state.constraints
        if not donor.satisfies_after_remove(constraints, area_id):
            return None
        if not receiver.satisfies_after_add(constraints, area_id):
            return None
        if not donor.remains_contiguous_without(area_id):
            return None
        return self._objective.delta_move(donor, receiver, area_id)

    def random_admissible(
        self, rng: Random
    ) -> tuple[float, int, int, int] | None:
        """A uniformly random valid move as ``(delta, area, donor,
        receiver)`` — the portfolio perturbation kick. Deterministic in
        the *rng* state."""
        self._refresh()
        candidates: list[tuple[int, int, int]] = []
        for donor_id in sorted(self._moves_by_donor):
            for area_id, receiver_id in sorted(self._moves_by_donor[donor_id]):
                candidates.append((area_id, donor_id, receiver_id))
        while candidates:
            area_id, donor_id, receiver_id = candidates.pop(
                rng.randrange(len(candidates))
            )
            live = self._live_delta(area_id, donor_id, receiver_id)
            if live is not None:
                return (live, area_id, donor_id, receiver_id)
        return None

    def best_admissible(
        self,
        iteration: int,
        tabu_until: dict[_MoveKey, int],
        current_h: float,
        best_h: float,
    ) -> tuple[float, int, int, int] | None:
        """The lowest-delta admissible move as
        ``(delta, area, donor, receiver)``, or ``None``.

        Chosen moves are re-validated against live state: a stale
        entry is corrected (or evicted) and the query repeats, so the
        returned move is always executable with an exact delta. Served
        by the heap index, or the exhaustive scan when the hot-path
        cache gate is off — both apply the same candidate order, so
        the two modes choose identical moves.
        """
        self._refresh()
        if not self._indexed:
            return self._best_by_scan(iteration, tabu_until, current_h, best_h)
        heap = self._heap
        moves_by_donor = self._moves_by_donor
        stamps = self._stamp
        deferred: list[tuple[float, int, int, int, int]] = []
        chosen: tuple[float, int, int, int] | None = None
        while heap:
            entry = heappop(heap)
            delta, area_id, receiver_id, donor_id, stamp = entry
            if stamp != stamps.get(donor_id):
                continue  # donor re-derived since this entry was pushed
            moves = moves_by_donor.get(donor_id)
            if moves is None:
                continue
            key = (area_id, receiver_id)
            cached = moves.get(key)
            if cached is None or cached != delta:
                continue  # evicted or superseded by a corrected entry
            if tabu_until.get(key, 0) >= iteration and (
                current_h + delta >= best_h - 1e-9
            ):
                deferred.append(entry)  # tabu now, maybe not next time
                continue
            live = self._live_delta(area_id, donor_id, receiver_id)
            if live is None:
                del moves[key]
                continue
            if abs(live - cached) > 1e-9:
                moves[key] = live
                heappush(heap, (live, area_id, receiver_id, donor_id, stamp))
                continue
            deferred.append(entry)  # the chosen move stays in the pool
            chosen = (live, area_id, donor_id, receiver_id)
            break
        for entry in deferred:
            heappush(heap, entry)
        return chosen

    def _best_by_scan(
        self,
        iteration: int,
        tabu_until: dict[_MoveKey, int],
        current_h: float,
        best_h: float,
    ) -> tuple[float, int, int, int] | None:
        """Reference path: exhaustive scan plus the same correct-and-
        repeat live validation the heap path applies."""
        while True:
            candidate = self._scan(iteration, tabu_until, current_h, best_h)
            if candidate is None:
                return None
            cached_delta, area_id, donor_id, receiver_id = candidate
            live = self._live_delta(area_id, donor_id, receiver_id)
            key = (area_id, receiver_id)
            donor_moves = self._moves_by_donor.get(donor_id, {})
            if live is None:
                donor_moves.pop(key, None)
                continue
            if abs(live - cached_delta) > 1e-9:
                donor_moves[key] = live
                continue
            return (live, area_id, donor_id, receiver_id)
