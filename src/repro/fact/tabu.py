"""FaCT Phase 3 — Tabu-search local optimization (Section V-C).

Starting from the construction phase's feasible partition, repeatedly
moves boundary areas between adjacent regions to minimize the overall
heterogeneity ``H(P)`` without ever violating a constraint or breaking
contiguity, and without changing ``p`` (donor regions never empty).

Classic Tabu mechanics (Glover & Laguna):

- each iteration executes the **best admissible move**, even when it
  worsens ``H`` (to escape local optima);
- the reverse of an executed move — (area, donor region) — is *tabu*
  for ``tabu_tenure`` iterations;
- **aspiration**: a tabu move is admissible anyway when it would beat
  the best heterogeneity seen so far;
- the search stops after ``tabu_max_no_improve`` consecutive
  iterations without improving the best ``H`` (paper default: the
  dataset size), or when no admissible move exists.

The candidate-move pool is maintained incrementally: after a move,
only regions whose state changed (donor, receiver) have their incident
moves re-derived, mirroring the paper's "update the valid moves …
in the region updated by the previous move". On top of the pool sits a
**lazy min-heap index**: every derived move is pushed once, entries are
invalidated by a per-donor generation stamp instead of being searched
for, and the per-iteration "best admissible move" query pops a handful
of entries instead of scanning the entire pool — O(log m) amortized
versus O(m) per iteration. With the hot-path cache gate off
(:func:`repro.core.perf.hotpath_caches_enabled`) the pool falls back
to the exhaustive reference scan; both paths order candidates by the
same total key ``(delta, area, receiver, donor)``, so the chosen
trajectory is identical.

For the portfolio parallelism of :mod:`repro.fact.portfolio`, the
search accepts an optional seeded RNG plus a perturbation count:
``perturbation_moves`` random admissible moves are applied (and made
tabu) before the deterministic descent starts, diversifying the
portfolio members' starting points. The best snapshot is taken *before*
the kicks, so a member never returns something worse than its input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from random import Random

from ..core.partition import Partition
from ..obs.spans import NULL_TRACER
from ..core.perf import hotpath_caches_enabled
from ..core.region import Region
from ..runtime import Interrupted, RunStatus
from .config import FaCTConfig
from .state import SolutionState

__all__ = ["TabuResult", "tabu_improve"]


@dataclass
class TabuResult:
    """Outcome of the local-search phase.

    ``improvement`` is the paper's measure: ``|H_before - H_after| /
    H_before`` (0 when the construction heterogeneity was already 0).
    ``status`` is ``COMPLETE`` when the search reached its natural
    stopping condition, or the interruption status when a budget
    deadline/cancel cut it short — the returned partition is then the
    best one seen before the interruption (always constraint-valid;
    the search never stores an invalid snapshot).
    """

    partition: Partition
    heterogeneity_before: float
    heterogeneity_after: float
    iterations: int = 0
    moves_applied: int = 0
    elapsed_seconds: float = 0.0
    status: RunStatus = RunStatus.COMPLETE

    @property
    def improvement(self) -> float:
        """Relative heterogeneity improvement achieved by the search."""
        if self.heterogeneity_before == 0:
            return 0.0
        return (
            abs(self.heterogeneity_before - self.heterogeneity_after)
            / self.heterogeneity_before
        )


# A move is "take `area` out of region `donor_id` into region
# `receiver_id`"; its key omits the donor because an area belongs to
# exactly one region at a time.
_MoveKey = tuple[int, int]  # (area_id, receiver_region_id)


def tabu_improve(
    state: SolutionState,
    config: FaCTConfig,
    objective=None,
    budget=None,
    rng: Random | None = None,
    perturbation_moves: int = 0,
    tracer=None,
) -> TabuResult:
    """Run Tabu search on *state* in place and return the best result.

    Parameters
    ----------
    objective:
        An :class:`repro.fact.objectives.Objective`; defaults to the
        paper's heterogeneity ``H(P)``. When a custom objective is
        used, the ``heterogeneity_before/after`` fields of the result
        carry *that objective's* scores.
    budget:
        Optional :class:`repro.runtime.Budget` checked at the top of
        every iteration; on deadline/cancel the search stops and
        returns the best snapshot so far with the interruption status.
    rng, perturbation_moves:
        Portfolio diversification: apply this many random admissible
        moves (chosen by *rng*, each made tabu) before the
        deterministic search starts. The best-seen snapshot is taken
        before the kicks, so the result is never worse than the input
        partition. ``perturbation_moves > 0`` requires an *rng*.
    tracer:
        Optional :class:`repro.obs.Tracer`; the search becomes one
        ``search`` span carrying iteration/score attributes.
    """
    import time

    from .objectives import HeterogeneityObjective

    if tracer is None:
        tracer = NULL_TRACER
    with tracer.span("search") as search_span:
        started = time.perf_counter()
        n = len(state.collection)
        patience = config.resolved_tabu_patience(n)
        iteration_cap = config.resolved_tabu_cap(n)

        if objective is None:
            objective = HeterogeneityObjective()
        objective.attach(state)
        current_h = objective.total()
        initial_h = current_h
        best_h = current_h

        # Labels are maintained incrementally (O(1) per move) so a new-best
        # snapshot is one C-level dict copy instead of a Python pass over
        # the whole collection.
        labels = _initial_labels(state)
        best_labels = dict(labels)

        pool = _MovePool(state, objective)
        tabu_until: dict[_MoveKey, int] = {}
        iterations = 0
        moves_applied = 0
        no_improve = 0
        status = RunStatus.COMPLETE

        for _ in range(perturbation_moves):
            kick = pool.random_admissible(rng)
            if kick is None:
                break
            delta, area_id, donor_id, receiver_id = kick
            state.move(area_id, state.regions[receiver_id])
            labels[area_id] = receiver_id
            current_h += delta
            moves_applied += 1
            # The undo of a kick is tabu through the first `tenure`
            # iterations of the main loop (which counts from 1).
            tabu_until[(area_id, donor_id)] = config.tabu_tenure
            objective.apply_move(donor_id, receiver_id, area_id)
            pool.after_move(area_id, donor_id, receiver_id)

        while iterations < iteration_cap and no_improve < patience:
            if budget is not None:
                try:
                    budget.checkpoint("tabu.iteration")
                except Interrupted as signal:
                    status = signal.status
                    break
            iterations += 1
            chosen = pool.best_admissible(iterations, tabu_until, current_h, best_h)
            if chosen is None:
                break
            delta, area_id, donor_id, receiver_id = chosen
            receiver = state.regions[receiver_id]
            state.move(area_id, receiver)
            labels[area_id] = receiver_id
            current_h += delta
            moves_applied += 1
            # Forbid the reverse move for `tenure` iterations.
            tabu_until[(area_id, donor_id)] = iterations + config.tabu_tenure
            objective.apply_move(donor_id, receiver_id, area_id)
            pool.after_move(area_id, donor_id, receiver_id)
            if current_h < best_h - 1e-9:
                best_h = current_h
                best_labels = dict(labels)
                no_improve = 0
            else:
                no_improve += 1

        result = TabuResult(
            partition=Partition.from_labels(best_labels),
            heterogeneity_before=initial_h,
            heterogeneity_after=best_h,
            iterations=iterations,
            moves_applied=moves_applied,
            elapsed_seconds=time.perf_counter() - started,
            status=status,
        )
        if search_span.recording:
            search_span.set(
                iterations=iterations,
                moves_applied=moves_applied,
                heterogeneity_before=initial_h,
                heterogeneity_after=best_h,
                status=status.value,
            )
        return result


def _initial_labels(state: SolutionState) -> dict[int, int]:
    """Labels of the current assignment (excluded areas included as
    unassigned so the Partition covers the whole collection)."""
    labels: dict[int, int] = {}
    assignment = state.assignment
    for area_id in state.collection.ids:
        region_id = assignment.get(area_id)
        labels[area_id] = -1 if region_id is None else region_id
    return labels


class _MovePool:
    """Incrementally maintained pool of valid moves with a heap index.

    Moves are grouped by donor region. After an executed move only the
    regions whose *structure* changed are fully re-derived: the donor,
    the receiver, and regions containing a neighbor of the moved area
    (those are the only places where moves can appear or disappear).
    Cached entries elsewhere can still carry stale receiver-side
    deltas — :meth:`best_admissible` therefore re-validates its chosen
    move against live region state before returning it, correcting or
    evicting stale entries on the spot.

    The heap index holds one entry per derived move, keyed
    ``(delta, area, receiver, donor, stamp)``. Entries are never
    removed eagerly: a per-donor generation stamp (bumped whenever the
    donor's moves are re-derived) and an exact match against the
    donor's current cached delta decide validity at pop time. Entries
    popped but still valid (tabu-skipped, or the chosen move itself)
    are pushed back, so the heap always covers the live pool.
    """

    def __init__(self, state: SolutionState, objective):
        self._state = state
        self._objective = objective
        self._moves_by_donor: dict[int, dict[_MoveKey, float]] = {}
        self._dirty: set[int] = set(state.regions)
        # Captured once per pool: flipping the gate mid-search would
        # desynchronize the heap from the pool.
        self._indexed = hotpath_caches_enabled()
        self._heap: list[tuple[float, int, int, int, int]] = []
        self._stamp: dict[int, int] = {}

    def mark_dirty(self, region_id: int) -> None:
        """Schedule one region's donated moves for re-derivation."""
        self._dirty.add(region_id)

    def after_move(self, area_id: int, donor_id: int, receiver_id: int) -> None:
        """Record the structural consequences of an executed move."""
        self._dirty.add(donor_id)
        self._dirty.add(receiver_id)
        assignment = self._state.assignment
        for neighbor in self._state.collection.neighbors(area_id):
            neighbor_region = assignment.get(neighbor)
            if neighbor_region is not None:
                self._dirty.add(neighbor_region)

    def _refresh(self) -> None:
        heap = self._heap
        for region_id in self._dirty:
            self._stamp[region_id] = stamp = self._stamp.get(region_id, 0) + 1
            region = self._state.regions.get(region_id)
            if region is None:
                self._moves_by_donor.pop(region_id, None)
                continue
            moves = self._derive_moves(region)
            self._moves_by_donor[region_id] = moves
            if self._indexed:
                for (area_id, receiver_id), delta in moves.items():
                    heappush(
                        heap, (delta, area_id, receiver_id, region_id, stamp)
                    )
        self._dirty.clear()

    def _derive_moves(self, donor: Region) -> dict[_MoveKey, float]:
        """All valid moves donating one of *donor*'s boundary areas to
        an adjacent region, with their heterogeneity deltas."""
        state = self._state
        constraints = state.constraints
        moves: dict[_MoveKey, float] = {}
        if len(donor) <= 1:
            return moves
        collection = state.collection
        assignment = state.assignment
        regions = state.regions
        perf = state.perf
        objective = self._objective
        # The region's contiguity oracle answers "who may leave?" for
        # every member at once (one cached Hopcroft–Tarjan pass instead
        # of a per-area BFS) — and the same cache then serves the O(1)
        # re-validation in _live_delta.
        removable = donor.removable_areas()
        donor_id = donor.region_id
        for area_id in sorted(donor.area_ids):
            if area_id not in removable:
                continue
            receiver_ids = {
                assignment[neighbor]
                for neighbor in collection.neighbors(area_id)
                if assignment.get(neighbor) is not None
            }
            receiver_ids.discard(donor_id)
            if not receiver_ids:
                continue
            if not donor.satisfies_after_remove(constraints, area_id):
                continue
            for receiver_id in sorted(receiver_ids):
                perf.candidate_evaluations += 1
                receiver = regions[receiver_id]
                if not receiver.satisfies_after_add(constraints, area_id):
                    continue
                moves[(area_id, receiver_id)] = objective.delta_move(
                    donor, receiver, area_id
                )
        return moves

    def _scan(
        self,
        iteration: int,
        tabu_until: dict[_MoveKey, int],
        current_h: float,
        best_h: float,
    ) -> tuple[float, int, int, int] | None:
        """Exhaustive reference scan: the admissible move minimizing
        ``(delta, area, receiver, donor)`` — the same total order the
        heap index pops in."""
        best: tuple[float, int, int, int] | None = None
        for donor_id, moves in self._moves_by_donor.items():
            for (area_id, receiver_id), delta in moves.items():
                if tabu_until.get((area_id, receiver_id), 0) >= iteration:
                    # Aspiration: accept a tabu move that beats best_h.
                    if current_h + delta >= best_h - 1e-9:
                        continue
                candidate = (delta, area_id, receiver_id, donor_id)
                if best is None or candidate < best:
                    best = candidate
        if best is None:
            return None
        delta, area_id, receiver_id, donor_id = best
        return (delta, area_id, donor_id, receiver_id)

    def _live_delta(
        self, area_id: int, donor_id: int, receiver_id: int
    ) -> float | None:
        """Re-evaluate one cached move against live region state.

        Returns the accurate delta, or ``None`` when the move is no
        longer valid."""
        state = self._state
        donor = state.regions.get(donor_id)
        receiver = state.regions.get(receiver_id)
        if donor is None or receiver is None or area_id not in donor:
            return None
        if len(donor) <= 1:
            return None
        if not receiver.touches(area_id):
            return None
        constraints = state.constraints
        if not donor.satisfies_after_remove(constraints, area_id):
            return None
        if not receiver.satisfies_after_add(constraints, area_id):
            return None
        if not donor.remains_contiguous_without(area_id):
            return None
        return self._objective.delta_move(donor, receiver, area_id)

    def random_admissible(
        self, rng: Random
    ) -> tuple[float, int, int, int] | None:
        """A uniformly random valid move as ``(delta, area, donor,
        receiver)`` — the portfolio perturbation kick. Deterministic in
        the *rng* state."""
        self._refresh()
        candidates: list[tuple[int, int, int]] = []
        for donor_id in sorted(self._moves_by_donor):
            for area_id, receiver_id in sorted(self._moves_by_donor[donor_id]):
                candidates.append((area_id, donor_id, receiver_id))
        while candidates:
            area_id, donor_id, receiver_id = candidates.pop(
                rng.randrange(len(candidates))
            )
            live = self._live_delta(area_id, donor_id, receiver_id)
            if live is not None:
                return (live, area_id, donor_id, receiver_id)
        return None

    def best_admissible(
        self,
        iteration: int,
        tabu_until: dict[_MoveKey, int],
        current_h: float,
        best_h: float,
    ) -> tuple[float, int, int, int] | None:
        """The lowest-delta admissible move as
        ``(delta, area, donor, receiver)``, or ``None``.

        Chosen moves are re-validated against live state: a stale
        entry is corrected (or evicted) and the query repeats, so the
        returned move is always executable with an exact delta. Served
        by the heap index, or the exhaustive scan when the hot-path
        cache gate is off — both apply the same candidate order, so
        the two modes choose identical moves.
        """
        self._refresh()
        if not self._indexed:
            return self._best_by_scan(iteration, tabu_until, current_h, best_h)
        heap = self._heap
        moves_by_donor = self._moves_by_donor
        stamps = self._stamp
        deferred: list[tuple[float, int, int, int, int]] = []
        chosen: tuple[float, int, int, int] | None = None
        while heap:
            entry = heappop(heap)
            delta, area_id, receiver_id, donor_id, stamp = entry
            if stamp != stamps.get(donor_id):
                continue  # donor re-derived since this entry was pushed
            moves = moves_by_donor.get(donor_id)
            if moves is None:
                continue
            key = (area_id, receiver_id)
            cached = moves.get(key)
            if cached is None or cached != delta:
                continue  # evicted or superseded by a corrected entry
            if tabu_until.get(key, 0) >= iteration and (
                current_h + delta >= best_h - 1e-9
            ):
                deferred.append(entry)  # tabu now, maybe not next time
                continue
            live = self._live_delta(area_id, donor_id, receiver_id)
            if live is None:
                del moves[key]
                continue
            if abs(live - cached) > 1e-9:
                moves[key] = live
                heappush(heap, (live, area_id, receiver_id, donor_id, stamp))
                continue
            deferred.append(entry)  # the chosen move stays in the pool
            chosen = (live, area_id, donor_id, receiver_id)
            break
        for entry in deferred:
            heappush(heap, entry)
        return chosen

    def _best_by_scan(
        self,
        iteration: int,
        tabu_until: dict[_MoveKey, int],
        current_h: float,
        best_h: float,
    ) -> tuple[float, int, int, int] | None:
        """Reference path: exhaustive scan plus the same correct-and-
        repeat live validation the heap path applies."""
        while True:
            candidate = self._scan(iteration, tabu_until, current_h, best_h)
            if candidate is None:
                return None
            cached_delta, area_id, donor_id, receiver_id = candidate
            live = self._live_delta(area_id, donor_id, receiver_id)
            key = (area_id, receiver_id)
            donor_moves = self._moves_by_donor.get(donor_id, {})
            if live is None:
                donor_moves.pop(key, None)
                continue
            if abs(live - cached_delta) > 1e-9:
                donor_moves[key] = live
                continue
            return (live, area_id, donor_id, receiver_id)
