"""FaCT Phase 1 — the feasibility phase (Section V-A).

One pass over the area set computes, per constraint, the aggregate
bounds that decide whether *any* feasible solution exists and which
individual areas can never belong to a valid region:

- **AVG** (Theorems 2/3): if the global average of the attribute falls
  outside ``[l, u]`` there is no partition of *all* areas into valid
  regions. Because EMP permits unassigned areas this is reported as a
  warning by default and only escalates to a hard infeasibility under
  ``FaCTConfig(strict_avg_feasibility=True)``.
- **MIN**: no feasible solution when every area lies below ``l``
  (``MAX(s) < l``) or above ``u`` (``MIN(s) > u``); areas with
  ``s < l`` are invalid and filtered out.
- **MAX**: symmetric — no solution when ``MIN(s) > u`` or
  ``MAX(s) < l``; areas with ``s > u`` are invalid.
- **SUM**: no solution when ``MIN(s) > u`` (every region's sum would
  exceed the bound) or ``SUM(s) < l`` (even the one-region partition
  falls short); areas with ``s > u`` are invalid.
- **COUNT**: no solution when ``n < l`` or ``u < 1``.

The same pass marks seed areas for Step 1 (the paper piggy-backs seed
selection on the filtration scan); :mod:`repro.fact.seeding` consumes
the report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.aggregates import Aggregate
from ..core.area import AreaCollection
from ..core.constraints import Constraint, ConstraintSet
from ..exceptions import InfeasibleProblemError
from .config import FaCTConfig

__all__ = ["ConstraintDiagnostic", "FeasibilityReport", "check_feasibility"]


@dataclass(frozen=True)
class ConstraintDiagnostic:
    """One structured finding from the feasibility scan.

    The machine-readable twin of a ``FeasibilityReport`` reason or
    warning: every entry in ``reasons``/``warnings`` has a diagnostic
    with the same information as numbers, so callers (the preflight
    report, the service API, the scenario engine) can show *how far*
    a constraint is from satisfiable instead of parsing prose.

    Attributes
    ----------
    code:
        Stable kebab-case identifier (e.g. ``infeasible-sum-lower``);
        see :mod:`repro.preflight` for the full taxonomy.
    severity:
        ``"error"`` for a proven infeasibility, ``"warning"`` for a
        soft signal.
    constraint:
        ``str()`` of the offending constraint, or ``""`` for
        dataset-level findings.
    message:
        The human-readable explanation (same text as the report's
        ``reasons``/``warnings`` entry).
    data:
        Slack/deficit numbers. For bound violations: ``bound`` (the
        violated bound), ``observed`` (the relevant global aggregate)
        and ``deficit`` (positive gap — how much mass/count is missing
        or in excess). Dataset-level findings carry counts instead
        (``n_areas``, ``n_invalid``...).
    """

    code: str
    severity: str
    constraint: str
    message: str
    data: dict = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity,
            "constraint": self.constraint,
            "message": self.message,
            "data": dict(self.data),
        }


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of the feasibility phase.

    Attributes
    ----------
    feasible:
        False when a hard infeasibility was proven.
    reasons:
        Human-readable explanations of each hard infeasibility.
    warnings:
        Soft signals (e.g. the global-AVG condition of Theorem 3 when
        ``strict_avg_feasibility`` is off, or heavy filtration).
    invalid_areas:
        Areas that can never be part of a valid region; the solver
        moves them to ``U_0`` before construction.
    seed_areas:
        Areas satisfying both bounds of at least one extrema
        constraint (every area when there are none).
    global_aggregates:
        ``(aggregate, attribute) -> value`` over all areas, for user
        inspection and query tuning.
    diagnostics:
        Structured :class:`ConstraintDiagnostic` twins of every reason
        and warning, with per-constraint slack/deficit numbers.
    """

    feasible: bool
    reasons: tuple[str, ...] = ()
    warnings: tuple[str, ...] = ()
    invalid_areas: frozenset[int] = frozenset()
    seed_areas: frozenset[int] = frozenset()
    global_aggregates: dict = field(default_factory=dict)
    diagnostics: tuple[ConstraintDiagnostic, ...] = ()

    def raise_if_infeasible(self) -> None:
        """Raise :class:`InfeasibleProblemError` when not feasible."""
        if not self.feasible:
            raise InfeasibleProblemError(
                "; ".join(self.reasons) or "problem is infeasible", report=self
            )

    @property
    def n_invalid(self) -> int:
        """Number of filtered-out areas."""
        return len(self.invalid_areas)

    def summary(self) -> dict[str, object]:
        """Compact dict for logging / user feedback."""
        return {
            "feasible": self.feasible,
            "n_invalid_areas": self.n_invalid,
            "n_seed_areas": len(self.seed_areas),
            "reasons": list(self.reasons),
            "warnings": list(self.warnings),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }


def check_feasibility(
    collection: AreaCollection,
    constraints: ConstraintSet,
    config: FaCTConfig | None = None,
    budget=None,
) -> FeasibilityReport:
    """Run the feasibility phase over *collection* and *constraints*.

    Single pass over the areas (``O(m × n)``, Remark 1): computes the
    global aggregates every check needs, classifies invalid areas and
    marks seed areas.

    *budget* is an optional :class:`repro.runtime.Budget`; the phase is
    a single fast scan, so it always completes — its checkpoint exists
    for fault injection and so a pre-expired budget is noticed before
    construction starts.
    """
    config = config or FaCTConfig()
    reasons: list[str] = []
    warnings: list[str] = []
    diagnostics: list[ConstraintDiagnostic] = []

    def diagnose(code, severity, constraint, message, **data):
        """Record one finding as prose and as numbers, in lockstep."""
        (reasons if severity == "error" else warnings).append(message)
        diagnostics.append(
            ConstraintDiagnostic(
                code=code,
                severity=severity,
                constraint="" if constraint is None else str(constraint),
                message=message,
                data=data,
            )
        )

    # --- one pass: global aggregates per referenced attribute ---------
    stats: dict[str, dict[str, float]] = {}
    n = len(collection)
    unknown = constraints.attributes() - collection.attribute_names
    if unknown:
        from ..exceptions import InvalidAreaError

        raise InvalidAreaError(
            f"constraints reference unknown attribute(s) "
            f"{sorted(unknown)}; dataset has "
            f"{sorted(collection.attribute_names)}"
        )
    for attribute in constraints.attributes():
        minimum = math.inf
        maximum = -math.inf
        total = 0.0
        for area in collection:
            value = area.attributes[attribute]
            minimum = min(minimum, value)
            maximum = max(maximum, value)
            total += value
        stats[attribute] = {
            "min": minimum,
            "max": maximum,
            "sum": total,
            "avg": total / n,
        }

    global_aggregates: dict = {}
    for attribute, values in stats.items():
        for aggregate_name, value in values.items():
            global_aggregates[(aggregate_name.upper(), attribute)] = value
    global_aggregates[(Aggregate.COUNT, "")] = float(n)

    # --- per-constraint hard checks ------------------------------------
    for c in constraints.mins:
        s = stats[c.attribute]
        if s["max"] < c.lower:
            diagnose(
                "infeasible-min-lower",
                "error",
                c,
                f"{c}: every area's {c.attribute} is below the lower bound "
                f"(global max {s['max']:g} < {c.lower:g}); no valid seed "
                "exists",
                bound=c.lower,
                observed=s["max"],
                deficit=c.lower - s["max"],
            )
        if s["min"] > c.upper:
            diagnose(
                "infeasible-min-upper",
                "error",
                c,
                f"{c}: every area's {c.attribute} exceeds the upper bound "
                f"(global min {s['min']:g} > {c.upper:g}); no valid seed "
                "exists",
                bound=c.upper,
                observed=s["min"],
                deficit=s["min"] - c.upper,
            )
    for c in constraints.maxes:
        s = stats[c.attribute]
        if s["min"] > c.upper:
            diagnose(
                "infeasible-max-upper",
                "error",
                c,
                f"{c}: every area's {c.attribute} exceeds the upper bound "
                f"(global min {s['min']:g} > {c.upper:g})",
                bound=c.upper,
                observed=s["min"],
                deficit=s["min"] - c.upper,
            )
        if s["max"] < c.lower:
            diagnose(
                "infeasible-max-lower",
                "error",
                c,
                f"{c}: every area's {c.attribute} is below the lower bound "
                f"(global max {s['max']:g} < {c.lower:g}); no valid seed "
                "exists",
                bound=c.lower,
                observed=s["max"],
                deficit=c.lower - s["max"],
            )
    for c in constraints.sums:
        s = stats[c.attribute]
        if s["min"] > c.upper:
            diagnose(
                "infeasible-sum-upper",
                "error",
                c,
                f"{c}: the smallest single area already exceeds the upper "
                f"bound (global min {s['min']:g} > {c.upper:g})",
                bound=c.upper,
                observed=s["min"],
                deficit=s["min"] - c.upper,
            )
        if s["sum"] < c.lower:
            diagnose(
                "infeasible-sum-lower",
                "error",
                c,
                f"{c}: even one region of all areas falls short of the lower "
                f"bound (global sum {s['sum']:g} < {c.lower:g})",
                bound=c.lower,
                observed=s["sum"],
                deficit=c.lower - s["sum"],
            )
    for c in constraints.counts:
        if n < c.lower:
            diagnose(
                "infeasible-count-lower",
                "error",
                c,
                f"{c}: the dataset has only {n} areas, below the lower bound",
                bound=c.lower,
                observed=float(n),
                deficit=c.lower - n,
            )
        if c.upper < 1:
            diagnose(
                "infeasible-count-upper",
                "error",
                c,
                f"{c}: the upper bound forbids non-empty regions",
                bound=c.upper,
                observed=1.0,
                deficit=1.0 - c.upper,
            )
    for c in constraints.avgs:
        average = stats[c.attribute]["avg"]
        if not c.contains(average):
            diagnose(
                "avg-outside-range",
                "error" if config.strict_avg_feasibility else "warning",
                c,
                f"{c}: the global average {average:g} lies outside the range; "
                "by Theorem 3 no partition of ALL areas exists — a solution "
                "must leave areas unassigned",
                bound=c.lower if average < c.lower else c.upper,
                observed=average,
                deficit=(
                    c.lower - average if average < c.lower else average - c.upper
                ),
            )

    # --- invalid-area filtration and seed marking -----------------------
    invalid: set[int] = set()
    seeds: set[int] = set()
    extrema = constraints.extrema
    for area in collection:
        if constraints.area_is_invalid(area.attributes):
            invalid.add(area.area_id)
            continue
        if not extrema or constraints.area_is_seed(area.attributes):
            seeds.add(area.area_id)

    if len(invalid) == n:
        diagnose(
            "all-areas-invalid",
            "error",
            None,
            "every area is invalid under the given constraints",
            n_areas=n,
            n_invalid=len(invalid),
        )
    elif extrema and not seeds:
        diagnose(
            "no-seed-area",
            "error",
            None,
            "no area satisfies the bounds of any MIN/MAX constraint; "
            "no region can contain the required seed areas",
            n_areas=n,
            n_seeds=0,
        )
    if invalid and len(invalid) < n:
        diagnose(
            "heavy-filtration",
            "warning",
            None,
            f"{len(invalid)} of {n} areas are invalid and will be moved "
            "to U_0 before construction",
            n_areas=n,
            n_invalid=len(invalid),
        )

    if budget is not None:
        from ..runtime import Interrupted

        try:
            budget.checkpoint("feasibility.checked")
        except Interrupted:
            # The report is already complete; the exhausted budget is
            # re-observed by the construction phase's first checkpoint.
            pass

    return FeasibilityReport(
        feasible=not reasons,
        reasons=tuple(reasons),
        warnings=tuple(warnings),
        invalid_areas=frozenset(invalid),
        seed_areas=frozenset(seeds),
        global_aggregates=global_aggregates,
        diagnostics=tuple(diagnostics),
    )
