"""Human-readable reports for FaCT runs.

The paper stresses that "FaCT algorithm reports output statistics to
users so they are equipped with information about the impact of
different threshold ranges on the given dataset" (Section VII-B3).
This module renders those statistics as plain-text reports suitable
for terminals and logs.
"""

from __future__ import annotations

from ..core.area import AreaCollection
from ..preflight import PreflightReport
from .feasibility import FeasibilityReport
from .solver import EMPSolution

__all__ = [
    "format_feasibility_report",
    "format_preflight_report",
    "format_solution_report",
]


def format_preflight_report(report: PreflightReport) -> str:
    """Render a preflight report as a multi-line string.

    One line per finding, errors first, each led by its stable
    machine-readable code so terminal output and the JSON report
    (:meth:`~repro.preflight.PreflightReport.as_dict`) line up.
    """
    lines = ["Preflight report"]
    lines.append(f"  verdict: {'ok' if report.ok else 'REJECTED'}")
    lines.append(
        f"  connected components: {report.n_components} "
        f"(sizes {[len(c) for c in report.components]})"
    )
    for finding in (*report.errors, *report.warnings):
        lines.append(
            f"  {finding.severity} [{finding.code}]: {finding.message}"
        )
        if finding.data:
            details = ", ".join(
                f"{key}={value!r}"
                for key, value in sorted(finding.data.items())
            )
            lines.append(f"    {details}")
    if not report.findings:
        lines.append("  no findings")
    return "\n".join(lines)


def format_feasibility_report(report: FeasibilityReport) -> str:
    """Render a Phase-1 report as a multi-line string."""
    lines = ["FaCT feasibility report"]
    lines.append(f"  feasible: {'yes' if report.feasible else 'NO'}")
    for reason in report.reasons:
        lines.append(f"  infeasible because: {reason}")
    for warning in report.warnings:
        lines.append(f"  warning: {warning}")
    lines.append(f"  invalid areas filtered: {report.n_invalid}")
    lines.append(f"  seed areas marked: {len(report.seed_areas)}")
    if report.global_aggregates:
        lines.append("  global aggregates:")
        for (aggregate, attribute), value in sorted(
            report.global_aggregates.items()
        ):
            label = f"{aggregate}({attribute})" if attribute else aggregate
            lines.append(f"    {label} = {value:g}")
    return "\n".join(lines)


def format_solution_report(
    solution: EMPSolution, collection: AreaCollection | None = None
) -> str:
    """Render a full solution report as a multi-line string."""
    lines = ["FaCT solution report"]
    if solution.interrupted:
        lines.append(
            f"  status: {solution.status.value} — best-so-far result "
            "(run was cut short by its budget)"
        )
    lines.append(f"  backend: {solution.backend}")
    lines.append(f"  regions (p): {solution.p}")
    lines.append(f"  unassigned areas (|U0|): {solution.n_unassigned}")
    if collection is not None:
        fraction = solution.n_unassigned / len(collection)
        lines.append(f"  unassigned fraction: {fraction:.1%}")
    lines.append(
        "  heterogeneity: "
        f"{solution.heterogeneity_before:,.1f} -> {solution.heterogeneity:,.1f} "
        f"({solution.improvement:.1%} improvement)"
    )
    lines.append(
        f"  construction time: {solution.construction_seconds:.3f}s over "
        f"{solution.construction.iterations} pass(es)"
    )
    if len(solution.attempts) > 1:
        retried = sum(1 for attempt in solution.attempts if attempt.degenerate)
        lines.append(
            f"  construction attempts: {len(solution.attempts)} "
            f"({retried} degenerate, retried with derived seeds)"
        )
    if solution.tabu is not None:
        lines.append(
            f"  tabu time: {solution.tabu_seconds:.3f}s "
            f"({solution.tabu.iterations} iterations, "
            f"{solution.tabu.moves_applied} moves)"
        )
    else:
        lines.append("  tabu: disabled")
    if solution.perf is not None:
        perf = solution.perf
        lines.append(
            f"  contiguity checks: {perf.contiguity_checks:,} "
            f"(oracle hit rate {perf.oracle_hit_rate:.1%}, "
            f"{perf.graph_traversals:,} graph traversals)"
        )
        lines.append(
            f"  candidate evaluations: {perf.candidate_evaluations:,} "
            f"(frontier queries {perf.frontier_queries:,}, "
            f"adjacency queries {perf.adjacency_queries:,})"
        )
        faults = (
            perf.pool_task_failures
            + perf.pool_task_timeouts
            + perf.pool_broken_restarts
        )
        if faults:
            lines.append(
                f"  worker faults survived: {perf.pool_task_failures:,} "
                f"task failure(s), {perf.pool_task_timeouts:,} deadline "
                f"timeout(s), {perf.pool_broken_restarts:,} broken-pool "
                f"restart(s) — {perf.pool_task_retries:,} retried, "
                f"{perf.pool_tasks_degraded:,} degraded to in-process"
            )
        if perf.checkpoint_writes or perf.checkpoint_replays:
            lines.append(
                f"  checkpoints: {perf.checkpoint_writes:,} written, "
                f"{perf.checkpoint_replays:,} unit(s) replayed on resume"
            )
    if solution.certificate is not None:
        certificate = solution.certificate
        lines.append(
            f"  certificate ({certificate.label}): "
            f"{'VALID' if certificate.valid else 'INVALID'} — "
            f"{certificate.checked_regions} region(s), "
            f"{certificate.checked_constraints} constraint check(s), "
            f"{len(certificate.violations)} violation(s)"
        )
    sizes = solution.partition.region_sizes()
    if sizes:
        lines.append(
            f"  region sizes: min {min(sizes)}, max {max(sizes)}, "
            f"mean {sum(sizes) / len(sizes):.1f}"
        )
    if solution.provenance:
        lines.append(
            f"  decomposed solve: {len(solution.provenance)} connected "
            "component(s)"
        )
        for entry in solution.provenance:
            lines.append(
                f"    component {entry.index}: {entry.n_areas} area(s) -> "
                f"{entry.p} region(s), {entry.n_unassigned} unassigned, "
                f"status {entry.status} ({entry.seconds:.3f}s)"
            )
    if solution.preflight is not None:
        for finding in solution.preflight.warnings:
            lines.append(
                f"  preflight [{finding.code}]: {finding.message}"
            )
    for warning in solution.feasibility.warnings:
        lines.append(f"  warning: {warning}")
    return "\n".join(lines)
