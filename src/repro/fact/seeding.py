"""FaCT Step 1 — Filtering and Seeding (Section V-B).

The extrema constraints (MIN/MAX) play two roles:

- **filtering**: areas violating a MIN lower bound / MAX upper bound
  can never belong to a valid region (handled by the feasibility
  phase's filtration pass);
- **seeding**: an area whose value lies within both bounds of *one*
  MIN or MAX constraint is a *seed area*. Every valid region must
  contain at least one seed per extrema constraint, so the number of
  seed areas upper-bounds ``p`` and seeds are the natural starting
  points for region growing.

Because all invalid areas are already filtered, a region satisfies a
MIN constraint ``l ≤ MIN(s) ≤ u`` exactly when it contains at least
one seed of that constraint (all remaining values are ≥ l, so only the
``MIN ≤ u`` side binds, and the minimum is ≤ u iff some member is).
The symmetric argument holds for MAX. Step 2.3 therefore validates
regions directly on their aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.area import AreaCollection
from ..core.constraints import Constraint, ConstraintSet
from .feasibility import FeasibilityReport

__all__ = ["SeedingResult", "select_seeds"]


@dataclass(frozen=True)
class SeedingResult:
    """Outcome of Step 1.

    Attributes
    ----------
    valid_areas:
        Areas that survived filtration (construction's working set).
    seeds:
        Union of all seed areas (subset of ``valid_areas``).
    seeds_by_constraint:
        ``constraint -> frozenset of its seed areas``, one entry per
        extrema constraint. Empty when there are none (then *every*
        valid area is a seed, per Section V-D).
    """

    valid_areas: frozenset[int]
    seeds: frozenset[int]
    seeds_by_constraint: dict[Constraint, frozenset[int]] = field(
        default_factory=dict
    )

    @property
    def p_upper_bound(self) -> int:
        """The seed-count upper bound on the number of regions.

        Every region needs at least one seed per extrema constraint;
        with any extrema constraint present, ``p <= |seeds|``.
        """
        return len(self.seeds)

    def is_seed(self, area_id: int) -> bool:
        """True when the area is a seed for some extrema constraint."""
        return area_id in self.seeds


def select_seeds(
    collection: AreaCollection,
    constraints: ConstraintSet,
    report: FeasibilityReport,
) -> SeedingResult:
    """Classify the surviving areas into seeds and regular areas.

    *report* must come from
    :func:`repro.fact.feasibility.check_feasibility` on the same inputs
    (the filtration already happened there; this step only organizes
    the seed sets per constraint).
    """
    valid = frozenset(set(collection.ids) - report.invalid_areas)
    extrema = constraints.extrema
    if not extrema:
        return SeedingResult(valid_areas=valid, seeds=valid)

    seeds_by_constraint: dict[Constraint, set[int]] = {c: set() for c in extrema}
    all_seeds: set[int] = set()
    for area_id in valid:
        attributes = collection.area(area_id).attributes
        for c in extrema:
            if constraints.seed_satisfied(c, attributes):
                seeds_by_constraint[c].add(area_id)
                all_seeds.add(area_id)
    return SeedingResult(
        valid_areas=valid,
        seeds=frozenset(all_seeds),
        seeds_by_constraint={
            c: frozenset(ids) for c, ids in seeds_by_constraint.items()
        },
    )
