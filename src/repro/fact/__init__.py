"""The FaCT algorithm — Feasibility, Construction, Tabu (Section V)."""

from .adjustment import adjust_counting, dissolve_infeasible
from .checkpointing import SolveLedger
from .config import CertifyLevel, FaCTConfig, PickupCriterion
from .construction import ConstructionResult, construct
from .feasibility import FeasibilityReport, check_feasibility
from .growing import grow_regions
from .pool import SolverPool
from .portfolio import improve_portfolio
from .objectives import (
    CompactnessObjective,
    HeterogeneityObjective,
    Objective,
    WeightedObjective,
)
from .reporting import format_feasibility_report, format_solution_report
from .seeding import SeedingResult, select_seeds
from .solver import ConstructionAttempt, EMPSolution, FaCT, solve_emp
from .state import SolutionState
from .trace import SolveTrace, StepSnapshot, trace_solve
from .tabu import TabuResult, tabu_improve

__all__ = [
    "CertifyLevel",
    "CompactnessObjective",
    "ConstructionAttempt",
    "ConstructionResult",
    "EMPSolution",
    "FaCT",
    "FaCTConfig",
    "FeasibilityReport",
    "HeterogeneityObjective",
    "Objective",
    "PickupCriterion",
    "SeedingResult",
    "SolutionState",
    "SolveLedger",
    "SolverPool",
    "SolveTrace",
    "StepSnapshot",
    "TabuResult",
    "WeightedObjective",
    "adjust_counting",
    "check_feasibility",
    "construct",
    "dissolve_infeasible",
    "format_feasibility_report",
    "format_solution_report",
    "grow_regions",
    "improve_portfolio",
    "select_seeds",
    "solve_emp",
    "tabu_improve",
    "trace_solve",
]
