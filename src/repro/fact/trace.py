"""Step-by-step construction tracing.

The paper emphasizes that FaCT "reports output statistics to users so
they are equipped with information about the impact of different
threshold ranges" (§VII-B3). This module takes that one level deeper:
:func:`trace_solve` runs the pipeline one step at a time and records a
snapshot after every phase — feasibility, seeding, Substeps 2.1/2.2/
2.3, Step 3 and Tabu — so an analyst can see exactly where areas were
filtered, seeded, absorbed, rescued or given up on:

    trace = trace_solve(collection, constraints)
    print(trace.format())

Tracing runs a single construction pass (the paper's per-iteration
view); it reuses the exact same step implementations the solver runs,
so the trace is the truth, not a re-enactment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.area import AreaCollection
from ..core.constraints import ConstraintSet
from ..core.partition import Partition
from .adjustment import adjust_counting
from .config import FaCTConfig
from .feasibility import check_feasibility
from .growing import (
    _assign_enclaves,
    _AvgClasses,
    _combine_for_extrema,
    _initialize_from_seeds,
)
from .seeding import select_seeds
from .state import SolutionState
from .tabu import tabu_improve

__all__ = ["StepSnapshot", "SolveTrace", "trace_solve"]


@dataclass(frozen=True)
class StepSnapshot:
    """State summary after one pipeline step."""

    step: str
    description: str
    p: int
    n_assigned: int
    n_unassigned: int
    n_excluded: int
    heterogeneity: float

    def format(self) -> str:
        """One human-readable trace line."""
        return (
            f"{self.step:<22} p={self.p:<5} assigned={self.n_assigned:<6} "
            f"unassigned={self.n_unassigned:<6} "
            f"excluded={self.n_excluded:<5} H={self.heterogeneity:,.0f}"
            f"  [{self.description}]"
        )


@dataclass
class SolveTrace:
    """Full trace of one FaCT run.

    ``perf`` carries the run's hot-path counters (see
    :class:`repro.core.perf.PerfCounters`) so a trace shows not just
    *what* each step decided but how much contiguity/frontier work it
    cost.
    """

    snapshots: list[StepSnapshot] = field(default_factory=list)
    partition: Partition | None = None
    perf: object | None = None

    def record(self, step: str, description: str, state: SolutionState) -> None:
        """Append a snapshot of *state*."""
        assigned = sum(len(region) for region in state.iter_regions())
        self.snapshots.append(
            StepSnapshot(
                step=step,
                description=description,
                p=state.p,
                n_assigned=assigned,
                n_unassigned=state.n_unassigned,
                n_excluded=len(state.excluded),
                heterogeneity=state.total_heterogeneity(),
            )
        )

    def step(self, name: str) -> StepSnapshot:
        """The snapshot recorded for a named step."""
        for snapshot in self.snapshots:
            if snapshot.step == name:
                return snapshot
        raise KeyError(f"no snapshot for step {name!r}")

    def format(self) -> str:
        """The whole trace as an aligned text block."""
        lines = [snapshot.format() for snapshot in self.snapshots]
        if self.perf is not None:
            lines.append(
                f"{'hot-path':<22} "
                f"contiguity={self.perf.contiguity_checks} "
                f"oracle_hit_rate={self.perf.oracle_hit_rate:.1%} "
                f"traversals={self.perf.graph_traversals} "
                f"candidates={self.perf.candidate_evaluations}"
            )
        return "\n".join(lines)


def trace_solve(
    collection: AreaCollection,
    constraints: ConstraintSet,
    config: FaCTConfig | None = None,
) -> SolveTrace:
    """Run one traced FaCT pass and return the step-by-step record.

    Raises :class:`repro.exceptions.InfeasibleProblemError` exactly as
    the solver would when Phase 1 proves infeasibility.
    """
    config = config or FaCTConfig()
    trace = SolveTrace()
    rng = random.Random(config.rng_seed)

    report = check_feasibility(collection, constraints, config)
    report.raise_if_infeasible()
    seeding = select_seeds(collection, constraints, report)
    state = SolutionState(
        collection, constraints, excluded=report.invalid_areas
    )
    trace.record(
        "feasibility",
        f"{report.n_invalid} invalid areas filtered, "
        f"{len(seeding.seeds)} seeds marked",
        state,
    )

    classes = _AvgClasses(state, constraints.avgs)
    _initialize_from_seeds(state, seeding, classes, config, rng)
    trace.record(
        "step2.1 seeding",
        "in-range seeds to singletons; Algorithm 1 on off-range seeds",
        state,
    )
    _assign_enclaves(state, classes, config, rng)
    trace.record(
        "step2.2 enclaves",
        "round-1 sweeps + round-2 merges "
        f"(merge limit {config.merge_limit})",
        state,
    )
    _combine_for_extrema(state)
    trace.record(
        "step2.3 extrema", "regions merged to cover all MIN/MAX", state
    )
    adjust_counting(state, config, rng)
    trace.record(
        "step3 adjustments",
        "absorb/swap/merge/trim for SUM-COUNT; infeasible dissolved",
        state,
    )

    if config.enable_tabu and state.p > 0:
        result = tabu_improve(state, config)
        trace.partition = result.partition
        trace.record(
            "tabu",
            f"{result.moves_applied} moves, "
            f"{result.improvement:.1%} improvement",
            state,
        )
    else:
        trace.partition = state.to_partition()
    trace.perf = state.perf
    return trace
