"""FaCT solver configuration.

All tuning knobs the paper exposes (Section VII-A lists the defaults:
random area pickup, AVG merge limit 3, tabu list length 10, tabu
patience equal to the dataset size) plus reproducibility and safety
knobs specific to this implementation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..exceptions import InvalidConstraintError

__all__ = ["FaCTConfig", "PickupCriterion"]


class PickupCriterion:
    """How Step 2 chooses among candidate neighbor regions/areas.

    - ``RANDOM`` — the paper's default ("area pickup criteria are
      random"): a uniformly random valid candidate.
    - ``BEST`` — the candidate minimizing the heterogeneity increase,
      trading construction time for a better starting point.
    """

    RANDOM = "random"
    BEST = "best"

    @classmethod
    def validate(cls, value: str) -> str:
        """Return the canonical value or raise for unknown criteria."""
        value = str(value).lower()
        if value not in (cls.RANDOM, cls.BEST):
            raise InvalidConstraintError(
                f"unknown pickup criterion {value!r}; expected "
                f"{cls.RANDOM!r} or {cls.BEST!r}"
            )
        return value


@dataclass
class FaCTConfig:
    """Configuration for one :class:`repro.fact.solver.FaCT` run.

    Parameters
    ----------
    rng_seed:
        Seed for every randomized decision (construction order
        shuffles, random pickups). Runs are deterministic in it.
    construction_iterations:
        Number of independent construction passes; the pass with the
        largest ``p`` (ties: fewest unassigned areas) wins (Section
        V-B: "Each iteration produces a feasible partition, and we
        maintain the partition with the highest p value").
    merge_limit:
        Maximum merge trials per area in Round 2 of Substep 2.2 — the
        guard against oversized regions (paper default 3).
    pickup:
        Candidate-selection criterion, see :class:`PickupCriterion`.
    enable_tabu:
        Run the local-search phase. Disable to measure construction in
        isolation (as the paper's runtime breakdowns do).
    tabu_tenure:
        Length of the tabu list (paper default 10).
    tabu_max_no_improve:
        Stop after this many consecutive non-improving moves; ``None``
        means "dataset size n", the paper's default.
    tabu_max_iterations:
        Hard safety cap on total tabu iterations; ``None`` means
        ``20 * n``.
    strict_avg_feasibility:
        Treat a global AVG outside the constraint range as a hard
        infeasibility (Theorem 3). Off by default because EMP permits
        unassigned areas, so a solution may still exist; the condition
        is always reported as a warning.
    n_jobs:
        Construction passes to run in parallel worker processes (the
        paper's stated future work: "further improve the algorithm
        performance through parallelization"). ``1`` (default) keeps
        the fully serial code path; with ``n_jobs > 1`` each pass gets
        an independent RNG derived from ``rng_seed`` and its pass
        index, so parallel runs are deterministic too (though their
        random choices differ from the serial path's shared stream).
    """

    rng_seed: int = 0
    construction_iterations: int = 3
    merge_limit: int = 3
    pickup: str = PickupCriterion.RANDOM
    enable_tabu: bool = True
    tabu_tenure: int = 10
    tabu_max_no_improve: int | None = None
    tabu_max_iterations: int | None = None
    strict_avg_feasibility: bool = False
    n_jobs: int = 1

    def __post_init__(self) -> None:
        self.pickup = PickupCriterion.validate(self.pickup)
        if self.construction_iterations < 1:
            raise InvalidConstraintError("construction_iterations must be >= 1")
        if self.merge_limit < 0:
            raise InvalidConstraintError("merge_limit must be >= 0")
        if self.tabu_tenure < 0:
            raise InvalidConstraintError("tabu_tenure must be >= 0")
        for name in ("tabu_max_no_improve", "tabu_max_iterations"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise InvalidConstraintError(f"{name} must be >= 0 or None")
        if self.n_jobs < 1:
            raise InvalidConstraintError("n_jobs must be >= 1")

    def make_rng(self) -> random.Random:
        """A fresh RNG seeded from :attr:`rng_seed`."""
        return random.Random(self.rng_seed)

    def resolved_tabu_patience(self, n_areas: int) -> int:
        """The effective non-improvement patience for *n_areas*."""
        if self.tabu_max_no_improve is not None:
            return self.tabu_max_no_improve
        return n_areas

    def resolved_tabu_cap(self, n_areas: int) -> int:
        """The effective hard iteration cap for *n_areas*."""
        if self.tabu_max_iterations is not None:
            return self.tabu_max_iterations
        return 20 * n_areas
