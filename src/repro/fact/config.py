"""FaCT solver configuration.

All tuning knobs the paper exposes (Section VII-A lists the defaults:
random area pickup, AVG merge limit 3, tabu list length 10, tabu
patience equal to the dataset size) plus reproducibility and safety
knobs specific to this implementation.
"""

from __future__ import annotations

import math
import numbers
import os
import random
from dataclasses import dataclass, field

from ..core.arrays import resolve_backend, validate_backend
from ..exceptions import BudgetError, InvalidConstraintError

__all__ = ["CertifyLevel", "FaCTConfig", "PickupCriterion"]

# Environment variable consulted when FaCTConfig.certify is None; lets
# a whole test/CI run opt into certification without touching code.
_CERTIFY_ENV = "REPRO_CERTIFY"

# Multiplier used to derive independent-but-deterministic seeds from
# rng_seed (also used by the parallel construction path).
_SEED_STRIDE = 1_000_003


def _require_integer(name: str, value) -> None:
    """Reject bools and non-integral numbers for integer knobs.

    ``bool`` is an ``int`` subclass, so ``n_jobs=True`` would otherwise
    slip through every range check as 1.
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise InvalidConstraintError(
            f"{name} must be an integer, got {value!r}"
        )


class CertifyLevel:
    """How much of a solve the independent certifier re-validates.

    - ``OFF`` — never certify (default).
    - ``FINAL`` — certify the final partition of every solve from
      first principles (:mod:`repro.certify`) before returning it.
    - ``PARANOID`` — additionally certify each phase boundary (the
      construction partition before Tabu takes over) and every
      degraded or interrupted best-so-far return.
    """

    OFF = "off"
    FINAL = "final"
    PARANOID = "paranoid"

    @classmethod
    def validate(cls, value: str) -> str:
        """Return the canonical value or raise for unknown levels."""
        value = str(value).lower()
        if value not in (cls.OFF, cls.FINAL, cls.PARANOID):
            raise InvalidConstraintError(
                f"unknown certify level {value!r}; expected "
                f"{cls.OFF!r}, {cls.FINAL!r} or {cls.PARANOID!r}"
            )
        return value


class PickupCriterion:
    """How Step 2 chooses among candidate neighbor regions/areas.

    - ``RANDOM`` — the paper's default ("area pickup criteria are
      random"): a uniformly random valid candidate.
    - ``BEST`` — the candidate minimizing the heterogeneity increase,
      trading construction time for a better starting point.
    """

    RANDOM = "random"
    BEST = "best"

    @classmethod
    def validate(cls, value: str) -> str:
        """Return the canonical value or raise for unknown criteria."""
        value = str(value).lower()
        if value not in (cls.RANDOM, cls.BEST):
            raise InvalidConstraintError(
                f"unknown pickup criterion {value!r}; expected "
                f"{cls.RANDOM!r} or {cls.BEST!r}"
            )
        return value


@dataclass
class FaCTConfig:
    """Configuration for one :class:`repro.fact.solver.FaCT` run.

    Parameters
    ----------
    rng_seed:
        Seed for every randomized decision (construction order
        shuffles, random pickups). Runs are deterministic in it.
    construction_iterations:
        Number of independent construction passes; the pass with the
        largest ``p`` (ties: fewest unassigned areas) wins (Section
        V-B: "Each iteration produces a feasible partition, and we
        maintain the partition with the highest p value").
    merge_limit:
        Maximum merge trials per area in Round 2 of Substep 2.2 — the
        guard against oversized regions (paper default 3).
    pickup:
        Candidate-selection criterion, see :class:`PickupCriterion`.
    enable_tabu:
        Run the local-search phase. Disable to measure construction in
        isolation (as the paper's runtime breakdowns do).
    tabu_tenure:
        Length of the tabu list (paper default 10).
    tabu_max_no_improve:
        Stop after this many consecutive non-improving moves; ``None``
        means "dataset size n", the paper's default.
    tabu_max_iterations:
        Hard safety cap on total tabu iterations; ``None`` means
        ``20 * n``.
    strict_avg_feasibility:
        Treat a global AVG outside the constraint range as a hard
        infeasibility (Theorem 3). Off by default because EMP permits
        unassigned areas, so a solution may still exist; the condition
        is always reported as a warning.
    n_jobs:
        Worker processes for the parallel parts of a solve (the
        paper's stated future work: "further improve the algorithm
        performance through parallelization"): construction passes
        fan out across the pool, and the Tabu portfolio (see
        ``tabu_portfolio``) runs its members there too. ``1``
        (default) executes everything in-process. The *result* is
        invariant to ``n_jobs``: every pass and every portfolio
        member gets its own seed derived from ``rng_seed`` and its
        index — identical in serial and parallel execution — and
        reductions break ties deterministically, so a fixed
        ``rng_seed`` yields a bit-identical partition at any worker
        count.
    tabu_portfolio:
        Number of independently seeded Tabu searches to run over the
        best construction passes (a portfolio: member 0 starts from
        the winning pass unperturbed, further members start from the
        runner-up passes and/or apply seeded perturbation kicks). The
        best member — lowest final objective, ties to the lowest
        member index — wins. ``1`` (default) keeps the single
        deterministic search. Members execute on the ``n_jobs``
        worker pool when available, serially otherwise; either way
        the result is identical.
    deadline_seconds:
        Wall-clock budget for one :meth:`FaCT.solve` call (``None`` =
        unlimited). On expiry the solver stops at the next checkpoint
        and returns the best-so-far solution flagged with
        ``RunStatus.DEADLINE_EXCEEDED`` — see :mod:`repro.runtime`.
    strict_interrupt:
        Raise :class:`repro.exceptions.SolverInterrupted` (carrying the
        partial solution) on deadline/cancel instead of returning the
        flagged solution. Off by default: services generally prefer the
        best-so-far answer.
    construction_retry_attempts:
        Extra construction attempts (with seeds derived from
        ``rng_seed``) when a construction yields a degenerate
        partition — ``p == 0`` or more than
        ``degenerate_unassigned_ratio`` of the valid areas left
        unassigned. Every attempt is recorded in
        ``EMPSolution.attempts`` and the best one wins. ``0`` disables
        the retry policy.
    degenerate_unassigned_ratio:
        Unassigned-to-valid-areas ratio above which a constructed
        partition counts as degenerate (in ``(0, 1]``).
    certify:
        Independent-certification level, see :class:`CertifyLevel`
        (``"off"``/``"final"``/``"paranoid"``). ``None`` (default)
        defers to the ``REPRO_CERTIFY`` environment variable, falling
        back to ``"off"``. A failed certification raises
        :class:`repro.exceptions.CertificationError` carrying the
        :class:`repro.certify.Certificate` with per-region violations.
    checkpoint_path:
        Path of the atomic solve-checkpoint file
        (:class:`repro.fact.checkpointing.SolveLedger`). When set, each
        completed construction pass and portfolio member is snapshotted
        there; a killed solve can then continue bit-identically via
        ``FaCT.solve(resume_from=...)``. The file is deleted after a
        COMPLETE solve. ``None`` (default) disables checkpointing.
    trace_path:
        Path of the JSONL telemetry event log
        (:class:`repro.obs.SolveTelemetry`). When set, the solve
        records its span tree, event log and per-phase metric
        snapshots there (inspect with ``python -m repro obs report``).
        ``None`` (default) disables telemetry entirely — the solver
        runs through no-op instruments.
    metrics_path:
        Path for the final metrics snapshot. ``.prom``/``.txt`` files
        get Prometheus text exposition, anything else JSON. Implies
        telemetry on (even without ``trace_path``).
    worker_task_deadline_seconds:
        Per-task wall-clock deadline on the worker pool. A pass or
        portfolio member still unfinished after this long is abandoned
        (its eventual result ignored) and re-run in-process — the
        guard against a wedged worker stalling the whole solve. ``None``
        (default) trusts the run-level budget alone.
    pool_task_retries:
        How many times a failed worker task (crash, unpicklable
        result, broken pool) is resubmitted before being degraded to
        in-process execution. Degradation preserves determinism: the
        same task function runs on the same arguments either way.
        Together with ``pool_retry_backoff_seconds`` this defines the
        pool's :class:`repro.runtime.RetryPolicy` (see
        :meth:`pool_retry_policy`).
    pool_retry_backoff_seconds:
        Base delay before a failed worker task's first resubmission;
        further resubmissions back off exponentially with
        deterministic jitter. ``0`` (default) retries immediately —
        the historical behaviour, right for in-process pools where the
        run budget is already ticking.
    checkpoint_keep_on_complete:
        Keep the solve-checkpoint file after a COMPLETE solve instead
        of deleting it. Off by default (a finished run must not be
        resumable into a stale answer); the solve service turns it on
        to archive each job's final checkpoint for audit.
    lease_seconds:
        When this solve runs as a service job: how long one worker's
        lease on the job lasts before the service may re-queue it.
        ``None`` (default) defers to the service's own default. The
        solver itself never reads it — it rides on the config so one
        object fully describes a job's execution contract.
    heartbeat_seconds:
        Lease-renewal interval of the service worker executing this
        solve; must be positive and smaller than ``lease_seconds``
        when both are set. ``None`` (default) defers to the service.
    backend:
        Solver-core backend: ``"numpy"`` (flat-array state + batch
        Tabu candidate scoring — see :mod:`repro.core.arrays`),
        ``"python"`` (the pure-Python reference oracle), or ``"auto"``
        (default: the ``REPRO_BACKEND`` environment variable when set,
        else numpy when importable). Both backends produce
        bit-identical partitions, objective values and certificates at
        any ``n_jobs``; the choice only affects wall-clock. Unknown
        values are rejected here at construction; the *resolved*
        backend surfaces on ``EMPSolution.backend``, the solve report,
        and the solve span's telemetry attributes.
    preflight:
        Run the :mod:`repro.preflight` gate (structure scan +
        per-constraint relaxation diagnosis) before construction. On
        by default: a provably-infeasible instance is rejected with a
        structured :class:`repro.preflight.PreflightReport` — with
        per-constraint slack/deficit numbers — before any solver
        budget is spent. Off restores the bare Phase-1 behaviour.
    decompose_components:
        Solve a disconnected geography per connected component and
        merge the partitions (islands become a first-class scenario).
        Each component is solved with the same ``rng_seed`` and the
        shared budget, in ascending smallest-member-id order, then the
        labels are merged through the canonical
        :meth:`~repro.fact.state.SolutionState.from_labels` rebuild —
        so the merged partition is bit-identical at any ``n_jobs`` and
        backend. The final certificate carries per-component
        provenance. Off by default (the classic solver already copes
        with multi-component datasets by growing regions inside
        components); requires ``preflight``. Not compatible with
        checkpoint/resume — when a ``checkpoint_path`` is set the
        decomposed solve runs without snapshots.
    """

    rng_seed: int = 0
    construction_iterations: int = 3
    merge_limit: int = 3
    pickup: str = PickupCriterion.RANDOM
    enable_tabu: bool = True
    tabu_tenure: int = 10
    tabu_max_no_improve: int | None = None
    tabu_max_iterations: int | None = None
    strict_avg_feasibility: bool = False
    n_jobs: int = 1
    tabu_portfolio: int = 1
    deadline_seconds: float | None = None
    strict_interrupt: bool = False
    construction_retry_attempts: int = 2
    degenerate_unassigned_ratio: float = 0.95
    certify: str | None = None
    checkpoint_path: str | None = None
    trace_path: str | None = None
    metrics_path: str | None = None
    worker_task_deadline_seconds: float | None = None
    pool_task_retries: int = 1
    pool_retry_backoff_seconds: float = 0.0
    checkpoint_keep_on_complete: bool = False
    lease_seconds: float | None = None
    heartbeat_seconds: float | None = None
    backend: str = "auto"
    preflight: bool = True
    decompose_components: bool = False

    def __post_init__(self) -> None:
        self.pickup = PickupCriterion.validate(self.pickup)
        # Reject unknown backends at construction, not deep in a solve.
        self.backend = validate_backend(self.backend)
        for name in (
            "rng_seed",
            "construction_iterations",
            "merge_limit",
            "tabu_tenure",
            "n_jobs",
            "tabu_portfolio",
            "construction_retry_attempts",
        ):
            _require_integer(name, getattr(self, name))
        if self.construction_iterations < 1:
            raise InvalidConstraintError("construction_iterations must be >= 1")
        if self.merge_limit < 0:
            raise InvalidConstraintError("merge_limit must be >= 0")
        if self.tabu_tenure < 0:
            raise InvalidConstraintError("tabu_tenure must be >= 0")
        for name in ("tabu_max_no_improve", "tabu_max_iterations"):
            value = getattr(self, name)
            if value is not None:
                _require_integer(name, value)
                if value < 0:
                    raise InvalidConstraintError(f"{name} must be >= 0 or None")
        if self.n_jobs < 1:
            raise InvalidConstraintError("n_jobs must be >= 1")
        if self.tabu_portfolio < 1:
            raise InvalidConstraintError("tabu_portfolio must be >= 1")
        if self.deadline_seconds is not None:
            if isinstance(self.deadline_seconds, bool) or not isinstance(
                self.deadline_seconds, numbers.Real
            ):
                raise BudgetError(
                    "deadline_seconds must be a positive number or None, "
                    f"got {self.deadline_seconds!r}"
                )
            self.deadline_seconds = float(self.deadline_seconds)
            if (
                not math.isfinite(self.deadline_seconds)
                or self.deadline_seconds <= 0
            ):
                raise BudgetError(
                    "deadline_seconds must be positive and finite, got "
                    f"{self.deadline_seconds!r}"
                )
        if self.construction_retry_attempts < 0:
            raise InvalidConstraintError(
                "construction_retry_attempts must be >= 0"
            )
        ratio = self.degenerate_unassigned_ratio
        if (
            isinstance(ratio, bool)
            or not isinstance(ratio, numbers.Real)
            or not 0 < float(ratio) <= 1
        ):
            raise BudgetError(
                f"degenerate_unassigned_ratio must be in (0, 1], got {ratio!r}"
            )
        self.degenerate_unassigned_ratio = float(ratio)
        if self.certify is not None:
            self.certify = CertifyLevel.validate(self.certify)
        if self.checkpoint_path is not None:
            self.checkpoint_path = os.fspath(self.checkpoint_path)
        if self.trace_path is not None:
            self.trace_path = os.fspath(self.trace_path)
        if self.metrics_path is not None:
            self.metrics_path = os.fspath(self.metrics_path)
        if self.worker_task_deadline_seconds is not None:
            value = self.worker_task_deadline_seconds
            if (
                isinstance(value, bool)
                or not isinstance(value, numbers.Real)
                or not math.isfinite(float(value))
                or float(value) <= 0
            ):
                raise BudgetError(
                    "worker_task_deadline_seconds must be positive and "
                    f"finite or None, got {value!r}"
                )
            self.worker_task_deadline_seconds = float(value)
        _require_integer("pool_task_retries", self.pool_task_retries)
        if self.pool_task_retries < 0:
            raise BudgetError("pool_task_retries must be >= 0")
        backoff = self.pool_retry_backoff_seconds
        if (
            isinstance(backoff, bool)
            or not isinstance(backoff, numbers.Real)
            or not math.isfinite(float(backoff))
            or float(backoff) < 0
        ):
            raise BudgetError(
                "pool_retry_backoff_seconds must be finite and >= 0, got "
                f"{backoff!r}"
            )
        self.pool_retry_backoff_seconds = float(backoff)
        if not isinstance(self.checkpoint_keep_on_complete, bool):
            raise InvalidConstraintError(
                "checkpoint_keep_on_complete must be a bool, got "
                f"{self.checkpoint_keep_on_complete!r}"
            )
        for name in ("preflight", "decompose_components"):
            if not isinstance(getattr(self, name), bool):
                raise InvalidConstraintError(
                    f"{name} must be a bool, got {getattr(self, name)!r}"
                )
        if self.decompose_components and not self.preflight:
            raise InvalidConstraintError(
                "decompose_components requires preflight (the component "
                "scan is what drives the decomposition)"
            )
        # Service-execution knobs: leases and heartbeats make no sense
        # at zero or below — a zero-length lease expires the instant it
        # is granted and a non-positive heartbeat spins.
        for name in ("lease_seconds", "heartbeat_seconds"):
            value = getattr(self, name)
            if value is None:
                continue
            if (
                isinstance(value, bool)
                or not isinstance(value, numbers.Real)
                or not math.isfinite(float(value))
                or float(value) <= 0
            ):
                raise BudgetError(
                    f"{name} must be positive and finite or None, got "
                    f"{value!r}"
                )
            setattr(self, name, float(value))
        if (
            self.lease_seconds is not None
            and self.heartbeat_seconds is not None
            and self.heartbeat_seconds >= self.lease_seconds
        ):
            raise BudgetError(
                "heartbeat_seconds must be smaller than lease_seconds "
                f"(got heartbeat={self.heartbeat_seconds!r}, "
                f"lease={self.lease_seconds!r}); a heartbeat that cannot "
                "outrun its own lease guarantees spurious lease expiry"
            )

    def resolved_backend(self) -> str:
        """The effective solver-core backend: ``"numpy"``/``"python"``.

        Resolution order: an explicit :attr:`backend` value, else the
        ``REPRO_BACKEND`` environment variable, else numpy when
        importable (see :func:`repro.core.arrays.resolve_backend`).
        """
        return resolve_backend(self.backend)

    def certify_level(self) -> str:
        """The effective certification level: the explicit
        :attr:`certify` value, else ``REPRO_CERTIFY`` from the
        environment, else ``"off"``."""
        if self.certify is not None:
            return self.certify
        env = os.environ.get(_CERTIFY_ENV, "").strip().lower()
        if env:
            return CertifyLevel.validate(env)
        return CertifyLevel.OFF

    def pool_retry_policy(self):
        """The worker pool's :class:`repro.runtime.RetryPolicy`:
        ``pool_task_retries`` resubmissions after the first attempt,
        backing off from ``pool_retry_backoff_seconds``."""
        from ..runtime.retry import RetryPolicy

        return RetryPolicy(
            max_attempts=self.pool_task_retries + 1,
            base_delay_seconds=self.pool_retry_backoff_seconds,
        )

    def make_rng(self) -> random.Random:
        """A fresh RNG seeded from :attr:`rng_seed`."""
        return random.Random(self.rng_seed)

    def resolved_tabu_patience(self, n_areas: int) -> int:
        """The effective non-improvement patience for *n_areas*."""
        if self.tabu_max_no_improve is not None:
            return self.tabu_max_no_improve
        return n_areas

    def resolved_tabu_cap(self, n_areas: int) -> int:
        """The effective hard iteration cap for *n_areas*."""
        if self.tabu_max_iterations is not None:
            return self.tabu_max_iterations
        return 20 * n_areas

    def derived_seed(self, attempt: int) -> int:
        """Deterministic seed for retry *attempt* (0 = ``rng_seed``).

        Strided so retry streams are independent of both the base seed
        and the parallel path's per-pass seeds.
        """
        return self.rng_seed + _SEED_STRIDE * attempt

    def derived_pass_seed(self, index: int) -> int:
        """Deterministic seed for construction pass *index*.

        Used identically by the serial and the parallel construction
        paths, so a pass produces the same partition regardless of
        where it executes.
        """
        return self.rng_seed * _SEED_STRIDE + index

    def derived_tabu_seed(self, member: int) -> int:
        """Deterministic perturbation seed for portfolio member
        *member*, independent of the construction pass seeds (7919 is
        prime and far from the pass-index increments)."""
        return self.rng_seed * _SEED_STRIDE + 7919 * (member + 1)
