"""Persistent worker pool for the parallel parts of a solve.

One :class:`SolverPool` is created per :meth:`FaCT.solve` call when
``n_jobs > 1`` and lives across *all* parallel stages of that call —
every construction pass of every retry attempt, then every Tabu
portfolio member. The heavy, immutable payload (area collection,
constraint set, excluded areas, config) is shipped to each worker
process exactly once, through the executor's *initializer*; individual
task submissions then carry only the per-task scalars (a seed, a label
snapshot, a deadline). This replaces the earlier scheme of pickling the
whole dataset into every submitted future, which dominated dispatch
cost for large collections.

Worker tasks rebuild live solver state with
:meth:`repro.fact.state.SolutionState.from_labels` (the canonical
renumbering), so a task's result depends only on its arguments — never
on which process ran it or in what order. The reductions on the parent
side are deterministic for the same reason, which is what makes solve
results bit-identical across ``n_jobs`` values.

Budgets do not cross process boundaries (the parent's cancellation
token is invisible here), so each task receives the parent budget's
*remaining seconds* and enforces it with a local
:class:`~repro.runtime.Budget`; the parent additionally polls its own
budget while waiting and cancels still-pending futures on interrupt.
"""

from __future__ import annotations

import random
from concurrent.futures import Future, ProcessPoolExecutor

from ..core.area import AreaCollection
from ..core.constraints import ConstraintSet
from ..core.perf import PerfCounters
from ..runtime import Budget, Interrupted, RunStatus
from .config import FaCTConfig
from .state import SolutionState

__all__ = ["SolverPool"]

# The per-process payload installed by the pool initializer. One tuple
# (collection, constraints, excluded, config) per worker process.
_WORKER_CONTEXT: tuple | None = None


def _init_worker(payload: tuple) -> None:
    """Executor initializer: install the solve's shared payload."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = payload


def _worker_context() -> tuple:
    if _WORKER_CONTEXT is None:  # pragma: no cover - defensive
        raise RuntimeError(
            "solver pool worker used without initialization; tasks must "
            "be submitted through SolverPool"
        )
    return _WORKER_CONTEXT


def _local_budget(deadline_seconds: float | None) -> Budget | None:
    if deadline_seconds is None:
        return None
    return Budget(deadline_seconds=deadline_seconds).start()


def construction_pass_task(
    seeding,
    pass_seed: int,
    config_override: FaCTConfig | None = None,
    deadline_seconds: float | None = None,
    budget: Budget | None = None,
) -> tuple[tuple, dict[int, int], tuple[int, int], RunStatus | None, PerfCounters]:
    """One construction pass against the installed worker context.

    Returns ``(score_key, labels, (p, n_unassigned), status, perf)``.
    Regions travel back as labels because live states are cheaper to
    rebuild than to pickle. *config_override* carries a retry
    attempt's config (same knobs, different base seed); the actual
    randomness comes from *pass_seed* either way. In-process callers
    pass their live *budget* (cancellation token included); worker
    submissions pass *deadline_seconds* instead and get a local one.
    """
    from .adjustment import adjust_counting, dissolve_infeasible
    from .construction import _score_key
    from .growing import grow_regions

    collection, constraints, excluded, config = _worker_context()
    if config_override is not None:
        config = config_override
    state = SolutionState(collection, constraints, excluded=excluded)
    rng = random.Random(pass_seed)
    if budget is None:
        budget = _local_budget(deadline_seconds)
    status: RunStatus | None = None
    try:
        grow_regions(state, seeding, config, rng, budget=budget)
        adjust_counting(state, config, rng, budget=budget)
    except Interrupted as signal:
        status = signal.status
        dissolve_infeasible(state)
    labels = {
        area_id: region_id
        for area_id, region_id in state.assignment.items()
        if region_id is not None
    }
    return _score_key(state), labels, (state.p, state.n_unassigned), status, state.perf


def portfolio_member_task(
    labels: dict[int, int],
    member_index: int,
    tabu_seed: int,
    perturbation_moves: int,
    objective=None,
    deadline_seconds: float | None = None,
    budget: Budget | None = None,
) -> tuple[float, dict[int, int], dict, PerfCounters]:
    """One Tabu portfolio member against the installed worker context.

    Rebuilds the member's starting state canonically from *labels*,
    runs the full Tabu search (perturbed first when
    ``perturbation_moves > 0``) and returns ``(best_score,
    best_labels, stats, perf)``. Deterministic in its arguments — the
    serial portfolio path calls this very function in-process.
    """
    from .tabu import tabu_improve

    collection, constraints, excluded, config = _worker_context()
    state = SolutionState.from_labels(
        collection, constraints, labels, excluded=excluded
    )
    result = tabu_improve(
        state,
        config,
        objective=objective,
        budget=budget if budget is not None else _local_budget(deadline_seconds),
        rng=random.Random(tabu_seed),
        perturbation_moves=perturbation_moves,
    )
    best_labels = result.partition.labels()
    stats = {
        "member": member_index,
        "heterogeneity_before": result.heterogeneity_before,
        "heterogeneity_after": result.heterogeneity_after,
        "iterations": result.iterations,
        "moves_applied": result.moves_applied,
        "elapsed_seconds": result.elapsed_seconds,
        "status": result.status,
    }
    return result.heterogeneity_after, best_labels, stats, state.perf


class SolverPool:
    """A process pool bound to one solve's immutable payload.

    The executor is created lazily on the first submission, so building
    a :class:`SolverPool` is free when no parallel stage ends up
    running. ``run_local`` executes the same task functions in-process
    (after installing the payload as the in-process context), which is
    how ``n_jobs=1`` and worker execution stay behaviorally identical.
    """

    def __init__(
        self,
        collection: AreaCollection,
        constraints: ConstraintSet,
        excluded,
        config: FaCTConfig,
        max_workers: int,
    ):
        self._payload = (collection, constraints, frozenset(excluded), config)
        self._max_workers = max(1, int(max_workers))
        self._executor: ProcessPoolExecutor | None = None

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._max_workers,
                initializer=_init_worker,
                initargs=(self._payload,),
            )
        return self._executor

    def submit(self, task, *args) -> Future:
        """Submit one of this module's task functions to the pool."""
        return self._ensure_executor().submit(task, *args)

    def run_local(self, task, *args):
        """Run a task function in-process against the same payload."""
        global _WORKER_CONTEXT
        previous = _WORKER_CONTEXT
        _WORKER_CONTEXT = self._payload
        try:
            return task(*args)
        finally:
            _WORKER_CONTEXT = previous

    def shutdown(self) -> None:
        """Tear the executor down without waiting on cancelled work."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "SolverPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
