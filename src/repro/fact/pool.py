"""Persistent worker pool for the parallel parts of a solve.

One :class:`SolverPool` is created per :meth:`FaCT.solve` call when
``n_jobs > 1`` and lives across *all* parallel stages of that call —
every construction pass of every retry attempt, then every Tabu
portfolio member. The heavy, immutable payload (area collection,
constraint set, excluded areas, config, resolved backend) is shipped to each worker
process exactly once, through the executor's *initializer*; individual
task submissions then carry only the per-task scalars (a seed, a label
snapshot, a deadline). This replaces the earlier scheme of pickling the
whole dataset into every submitted future, which dominated dispatch
cost for large collections.

Worker tasks rebuild live solver state with
:meth:`repro.fact.state.SolutionState.from_labels` (the canonical
renumbering), so a task's result depends only on its arguments — never
on which process ran it or in what order. The reductions on the parent
side are deterministic for the same reason, which is what makes solve
results bit-identical across ``n_jobs`` values.

Budgets do not cross process boundaries (the parent's cancellation
token is invisible here), so each task receives the parent budget's
*remaining seconds* and enforces it with a local
:class:`~repro.runtime.Budget`; the parent additionally polls its own
budget while waiting and cancels still-pending futures on interrupt.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from ..core import arrays as arrays_mod
from ..core.area import AreaCollection
from ..core.constraints import ConstraintSet
from ..core.perf import PerfCounters
from ..obs.spans import worker_tracer
from ..obs.telemetry import DISABLED
from ..runtime import Budget, Interrupted, RetryPolicy, RunStatus
from .config import FaCTConfig
from .state import SolutionState

__all__ = ["SolverPool"]

# The per-process payload installed by the pool initializer. One tuple
# (collection, constraints, excluded, config, backend) per worker
# process.
_WORKER_CONTEXT: tuple | None = None


def _init_worker(payload: tuple) -> None:
    """Executor initializer: install the solve's shared payload.

    Also pins the parent's resolved hot-path backend in this worker
    process, so parallel stages run the same (bit-identical) code path
    regardless of the worker environment's own ``REPRO_BACKEND``.
    """
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = payload
    arrays_mod.set_active_backend(payload[4])


def _worker_context() -> tuple:
    if _WORKER_CONTEXT is None:  # pragma: no cover - defensive
        raise RuntimeError(
            "solver pool worker used without initialization; tasks must "
            "be submitted through SolverPool"
        )
    return _WORKER_CONTEXT


def _local_budget(deadline_seconds: float | None) -> Budget | None:
    if deadline_seconds is None:
        return None
    return Budget(deadline_seconds=deadline_seconds).start()


def construction_pass_task(
    seeding,
    pass_seed: int,
    config_override: FaCTConfig | None = None,
    deadline_seconds: float | None = None,
    budget: Budget | None = None,
    span_context=None,
    pass_index: int | None = None,
) -> tuple:
    """One construction pass against the installed worker context.

    Returns ``(score_key, labels, (p, n_unassigned), status, perf,
    spans)``. Regions travel back as labels because live states are
    cheaper to rebuild than to pickle. *config_override* carries a
    retry attempt's config (same knobs, different base seed); the
    actual randomness comes from *pass_seed* either way. In-process
    callers pass their live *budget* (cancellation token included);
    worker submissions pass *deadline_seconds* instead and get a local
    one.

    *span_context* (a :meth:`repro.obs.Tracer.context` value) roots
    this pass's telemetry under the parent's current span; the
    finished span dicts travel back in the result for the parent to
    adopt. ``None`` — the default — records nothing.
    """
    from .adjustment import adjust_counting, dissolve_infeasible
    from .construction import _score_key
    from .growing import grow_regions

    collection, constraints, excluded, config = _worker_context()[:4]
    if config_override is not None:
        config = config_override
    state = SolutionState(collection, constraints, excluded=excluded)
    rng = random.Random(pass_seed)
    if budget is None:
        budget = _local_budget(deadline_seconds)
    tracer = worker_tracer(span_context)
    status: RunStatus | None = None
    with tracer.span("pass", index=pass_index, seed=pass_seed) as pass_span:
        try:
            grow_regions(state, seeding, config, rng, budget=budget,
                         tracer=tracer)
            adjust_counting(state, config, rng, budget=budget, tracer=tracer)
        except Interrupted as signal:
            status = signal.status
            dissolve_infeasible(state)
        if pass_span.recording:
            pass_span.set(
                p=state.p,
                n_unassigned=state.n_unassigned,
                status=None if status is None else status.value,
            )
    labels = {
        area_id: region_id
        for area_id, region_id in state.assignment.items()
        if region_id is not None
    }
    return (
        _score_key(state),
        labels,
        (state.p, state.n_unassigned),
        status,
        state.perf,
        list(tracer.finished),
    )


def portfolio_member_task(
    labels: dict[int, int],
    member_index: int,
    tabu_seed: int,
    perturbation_moves: int,
    objective=None,
    deadline_seconds: float | None = None,
    budget: Budget | None = None,
    span_context=None,
) -> tuple:
    """One Tabu portfolio member against the installed worker context.

    Rebuilds the member's starting state canonically from *labels*,
    runs the full Tabu search (perturbed first when
    ``perturbation_moves > 0``) and returns ``(best_score,
    best_labels, stats, perf, spans)``. Deterministic in its arguments
    — the serial portfolio path calls this very function in-process.

    *span_context* roots the member's telemetry under the parent's
    ``tabu`` span (see :func:`construction_pass_task`).
    """
    from .tabu import tabu_improve

    collection, constraints, excluded, config = _worker_context()[:4]
    state = SolutionState.from_labels(
        collection, constraints, labels, excluded=excluded
    )
    tracer = worker_tracer(span_context)
    with tracer.span(
        "member",
        index=member_index,
        seed=tabu_seed,
        perturbation_moves=perturbation_moves,
    ) as member_span:
        result = tabu_improve(
            state,
            config,
            objective=objective,
            budget=(
                budget
                if budget is not None
                else _local_budget(deadline_seconds)
            ),
            rng=random.Random(tabu_seed),
            perturbation_moves=perturbation_moves,
            tracer=tracer,
        )
        if member_span.recording:
            member_span.set(
                heterogeneity_after=result.heterogeneity_after,
                iterations=result.iterations,
                status=result.status.value,
            )
    best_labels = result.partition.labels()
    stats = {
        "member": member_index,
        "heterogeneity_before": result.heterogeneity_before,
        "heterogeneity_after": result.heterogeneity_after,
        "iterations": result.iterations,
        "moves_applied": result.moves_applied,
        "elapsed_seconds": result.elapsed_seconds,
        "status": result.status,
    }
    return (
        result.heterogeneity_after,
        best_labels,
        stats,
        state.perf,
        list(tracer.finished),
    )


class SolverPool:
    """A process pool bound to one solve's immutable payload.

    The executor is created lazily on the first submission, so building
    a :class:`SolverPool` is free when no parallel stage ends up
    running. ``run_local`` executes the same task functions in-process
    (after installing the payload as the in-process context), which is
    how ``n_jobs=1`` and worker execution stay behaviorally identical.
    """

    def __init__(
        self,
        collection: AreaCollection,
        constraints: ConstraintSet,
        excluded,
        config: FaCTConfig,
        max_workers: int,
    ):
        self._payload = (
            collection,
            constraints,
            frozenset(excluded),
            config,
            arrays_mod.active_backend(),
        )
        self._max_workers = max(1, int(max_workers))
        self._executor: ProcessPoolExecutor | None = None

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._max_workers,
                initializer=_init_worker,
                initargs=(self._payload,),
            )
        return self._executor

    def submit(self, task, *args) -> Future:
        """Submit one of this module's task functions to the pool."""
        return self._ensure_executor().submit(task, *args)

    def restart(self) -> None:
        """Tear down the (possibly broken) executor; the next
        submission lazily builds a fresh one with the same payload.

        This is the recovery move after ``BrokenProcessPool``: the
        stdlib executor marks itself permanently broken once any
        worker dies, so resubmission requires a new executor.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def collect_resilient(
        self,
        task,
        submit_args: list[tuple],
        local_args: list[tuple],
        *,
        budget: Budget | None = None,
        perf: PerfCounters | None = None,
        retries: int = 1,
        retry_policy: RetryPolicy | None = None,
        task_deadline: float | None = None,
        on_result=None,
        poll_seconds: float = 0.05,
        telemetry=None,
    ) -> tuple[dict[int, object], RunStatus | None]:
        """Fan *task* out over the pool and survive worker failure.

        Submits ``task(*submit_args[i])`` for every index and gathers
        results into ``{index: result}``, preserving determinism: a
        result depends only on its arguments, so the caller's
        index-ordered reduction is unaffected by *where* each task
        eventually ran. Re-dispatch follows *retry_policy* (a
        :class:`repro.runtime.RetryPolicy`; when omitted, one is built
        from *retries* with immediate resubmission — the historical
        behaviour). A policy with a non-zero base delay defers
        resubmission by its deterministically jittered backoff instead
        of hammering a struggling pool. The failure escalation:

        - a task that raises (worker crash, unpicklable return value)
          is resubmitted while the policy allows another attempt, then
          **degraded** — the pool's dead-letter: the same task
          function is re-run in-process via :meth:`run_local` on
          ``local_args[i]``;
        - ``BrokenProcessPool`` (a worker died hard, killing the whole
          executor) triggers :meth:`restart` and resubmission of every
          unfinished task — tasks whose attempts are already exhausted
          degrade instead;
        - a task still unfinished after *task_deadline* seconds is
          abandoned (the stdlib cannot kill a running future, so its
          eventual result is simply ignored) and degraded;
        - arguments that fail to pickle at submission degrade
          immediately.

        Every event lands in *perf* (``pool_task_failures``,
        ``pool_task_retries``, ``pool_tasks_degraded``,
        ``pool_broken_restarts``, ``pool_task_timeouts``) and — when a
        :class:`repro.obs.SolveTelemetry` is passed as *telemetry* —
        in the run event log as ``pool.*`` events. Each collected
        result fires the ``pool.result`` fault checkpoint and the
        optional ``on_result(index, result)`` callback (the solve
        ledger records completed units there). When *budget* expires
        or is cancelled, pending futures are cancelled and the partial
        results are returned with the interruption status.
        """
        perf = perf if perf is not None else PerfCounters()
        telemetry = telemetry if telemetry is not None else DISABLED
        if retry_policy is None:
            retry_policy = RetryPolicy(max_attempts=retries + 1)
        results: dict[int, object] = {}
        # attempts[i] counts *failed* attempts of task i so far.
        attempts = [0] * len(submit_args)
        future_index: dict[Future, int] = {}
        submitted_at: dict[int, float] = {}
        # (ready_at, index) pairs waiting out a backoff delay.
        deferred: list[tuple[float, int]] = []

        def _accept(index: int, result) -> None:
            results[index] = result
            if budget is not None:
                try:
                    budget.checkpoint("pool.result")
                except Interrupted:
                    pass  # observed at the loop's status check
            if on_result is not None:
                on_result(index, result)

        def _degrade(index: int) -> None:
            perf.pool_tasks_degraded += 1
            telemetry.event("pool.task_degraded", index=index)
            _accept(index, self.run_local(task, *local_args[index]))

        def _submit(index: int) -> None:
            try:
                future = self.submit(task, *submit_args[index])
            except Exception:
                perf.pool_task_failures += 1
                telemetry.event("pool.task_failed", index=index,
                                stage="submit")
                _degrade(index)
                return
            future_index[future] = index
            submitted_at[index] = time.monotonic()

        def _retry_or_degrade(index: int) -> None:
            """One failed attempt is on the books; re-dispatch per the
            retry policy or dead-letter to in-process degradation."""
            attempts[index] += 1
            if not retry_policy.allows(attempts[index]):
                _degrade(index)
                return
            perf.pool_task_retries += 1
            telemetry.event("pool.task_retry", index=index,
                            attempt=attempts[index])
            delay = retry_policy.delay_seconds(attempts[index],
                                               key=str(index))
            if delay <= 0.0:
                _submit(index)
            else:
                deferred.append((time.monotonic() + delay, index))

        for index in range(len(submit_args)):
            _submit(index)

        while future_index or deferred:
            if deferred:
                now = time.monotonic()
                ready = sorted(
                    item for item in deferred if item[0] <= now
                )
                for item in ready:
                    deferred.remove(item)
                    _submit(item[1])
            if not future_index:
                # Everything unfinished is waiting out a backoff delay.
                if deferred:
                    time.sleep(
                        max(
                            0.0,
                            min(
                                poll_seconds,
                                min(t for t, _ in deferred)
                                - time.monotonic(),
                            ),
                        )
                    )
                if budget is not None:
                    status = budget.status()
                    if status is not None:
                        return results, status
                continue
            done, _ = wait(set(future_index), timeout=poll_seconds)
            broken = False
            for future in sorted(done, key=future_index.__getitem__):
                index = future_index.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    broken = True
                    future_index[future] = index  # handled below
                except Exception:
                    perf.pool_task_failures += 1
                    telemetry.event("pool.task_failed", index=index,
                                    stage="result")
                    _retry_or_degrade(index)
                else:
                    _accept(index, result)
            if broken:
                # Every in-flight future on a broken executor is lost.
                perf.pool_broken_restarts += 1
                telemetry.event(
                    "pool.restarted",
                    unfinished=sorted(future_index.values()),
                )
                unfinished = sorted(future_index.values())
                future_index.clear()
                self.restart()
                for index in unfinished:
                    _retry_or_degrade(index)
            if task_deadline is not None:
                now = time.monotonic()
                overdue = [
                    (future, index)
                    for future, index in future_index.items()
                    if now - submitted_at[index] > task_deadline
                ]
                for future, index in sorted(overdue, key=lambda p: p[1]):
                    future.cancel()
                    del future_index[future]
                    perf.pool_task_timeouts += 1
                    telemetry.event("pool.task_timeout", index=index)
                    _degrade(index)
            if budget is not None:
                status = budget.status()
                if status is not None:
                    for future in future_index:
                        future.cancel()
                    return results, status
        return results, None

    def run_local(self, task, *args):
        """Run a task function in-process against the same payload."""
        global _WORKER_CONTEXT
        previous = _WORKER_CONTEXT
        _WORKER_CONTEXT = self._payload
        previous_backend = arrays_mod.set_active_backend(self._payload[4])
        try:
            return task(*args)
        finally:
            _WORKER_CONTEXT = previous
            arrays_mod.set_active_backend(previous_backend)

    def shutdown(self) -> None:
        """Tear the executor down without waiting on cancelled work."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "SolverPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
