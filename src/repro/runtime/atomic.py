"""Crash-safe file writes: temp file + ``os.replace``.

Several durability features — the solver checkpoint files, the bench
journal, ``BENCH_*.json`` results — are written by processes that can
die at any instant (SIGALRM watchdogs, per-cell deadlines, injected
faults, plain OOM kills). A plain ``open(path, "w")`` that dies
mid-write leaves a truncated file, which is worse than no file at all:
the resume machinery would load half a snapshot.

:func:`atomic_write_text` guarantees all-or-nothing visibility: the
payload is written to a temporary file in the *same directory* (so the
final rename never crosses a filesystem boundary), fsynced, and moved
into place with :func:`os.replace` — atomic on POSIX and Windows. A
reader therefore sees either the complete previous version or the
complete new one, never a torn write.
"""

from __future__ import annotations

import os
import tempfile

__all__ = ["atomic_write_text"]


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace *path*'s contents with *text*.

    The write happens to a uniquely named sibling temp file which is
    fsynced and then renamed over *path* with ``os.replace``. On any
    failure the temp file is removed and the original file (if any) is
    left untouched.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
