"""Crash-safe file writes: temp file + ``os.replace`` + directory fsync.

Several durability features — the solver checkpoint files, the bench
journal, the service job journal, ``BENCH_*.json`` results — are
written by processes that can die at any instant (SIGALRM watchdogs,
per-cell deadlines, injected faults, plain OOM kills). A plain
``open(path, "w")`` that dies mid-write leaves a truncated file, which
is worse than no file at all: the resume machinery would load half a
snapshot.

:func:`atomic_write_text` guarantees all-or-nothing visibility: the
payload is written to a temporary file in the *same directory* (so the
final rename never crosses a filesystem boundary), fsynced, and moved
into place with :func:`os.replace` — atomic on POSIX and Windows. A
reader therefore sees either the complete previous version or the
complete new one, never a torn write.

Power-loss durability needs one more step the original version
missed: ``os.replace`` updates a *directory entry*, and on POSIX that
entry lives in the directory's own data blocks. Fsyncing the file
alone makes the *contents* durable but not the *name* — after a power
cut the rename itself can be rolled back and the journal entry
vanishes even though every byte of it had hit the platter.
:func:`fsync_directory` closes that window and both primitives below
call it; it is also exported for callers that create files through
other paths.

:func:`append_line` is the durable append primitive for true
append-only journals (the service job store): ``O_APPEND`` write +
file fsync + directory fsync. A crash can tear at most the final line,
which journal readers detect and drop.
"""

from __future__ import annotations

import os
import tempfile

__all__ = ["append_line", "atomic_write_text", "fsync_directory"]


def fsync_directory(directory) -> None:
    """Fsync *directory* so renames/creations inside it survive power
    loss (POSIX; a silent no-op where directories cannot be opened,
    e.g. Windows, whose ``ReplaceFile`` metadata handling differs)."""
    directory = os.fspath(directory) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX / exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on dir fds
        pass
    finally:
        os.close(fd)


def append_line(path, line: str, encoding: str = "utf-8") -> None:
    """Durably append one newline-terminated *line* to *path*.

    ``O_APPEND`` makes the write a single atomic-on-POSIX append, the
    file fsync makes the bytes durable and the directory fsync makes
    the file's *existence* durable on first creation. A crash mid-call
    can tear at most the final line of the file — readers of
    append-only journals must tolerate (and drop) a torn tail.
    """
    path = os.fspath(path)
    if not line.endswith("\n"):
        line += "\n"
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode(encoding))
        os.fsync(fd)
    finally:
        os.close(fd)
    fsync_directory(os.path.dirname(path) or ".")


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace *path*'s contents with *text*.

    The write happens to a uniquely named sibling temp file which is
    fsynced and then renamed over *path* with ``os.replace``; the
    parent directory is fsynced afterwards so the rename is durable,
    not merely atomic. On any failure the temp file is removed and the
    original file (if any) is left untouched.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
