"""Deterministic fault injection at named solver checkpoints.

Every cooperative interruption point inside the FaCT phases calls
``budget.checkpoint(name)`` with a name from :data:`CHECKPOINTS`. A
:class:`FaultInjector` registered on the budget — or installed
process-wide with :func:`inject` — observes every checkpoint visit and
can deterministically:

- **delay** (``time.sleep``) to simulate a slow phase and force a
  deadline to trip at a known point;
- **fail** (raise an exception, :class:`InjectedFault` by default) to
  simulate a crash inside a phase;
- **cancel** (set the budget's token) to simulate a caller abort.

Faults fire on an exact visit ordinal (``on_visit``, 1-based), so a
chaos test can say "cancel the 5th Tabu iteration" and get the same
interruption point on every run. The injector also records visit
counts, which the smoke tests use to prove each registered checkpoint
is actually reachable (guarding against names drifting from the code).

Example::

    from repro.runtime import FaultInjector, inject

    injector = FaultInjector()
    injector.cancel("tabu.iteration", on_visit=5)
    with inject(injector):
        solution = FaCT().solve(collection, constraints)
    assert solution.status is RunStatus.CANCELLED
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass

from ..exceptions import BudgetError

__all__ = [
    "CHECKPOINTS",
    "FaultInjector",
    "InjectedFault",
    "active_injector",
    "fire_checkpoint",
    "inject",
    "register_checkpoints",
    "set_fault_listener",
]


CHECKPOINTS: tuple[str, ...] = (
    "preflight.lint",
    "preflight.components",
    "feasibility.checked",
    "construction.pass.start",
    "construction.grow.seed",
    "construction.grow.enclave",
    "construction.adjust.phase",
    "tabu.iteration",
    "pool.result",
    "checkpoint.write",
    "certify.solution",
)
"""Registry of every named checkpoint inside the solver.

- ``preflight.lint`` — end of the preflight structure lint (the
  findings are already collected; a deadline here only affects later
  phases).
- ``preflight.components`` — after the preflight connected-component
  scan of the input geography.
- ``feasibility.checked`` — end of the Phase-1 scan (the report is
  already complete; a deadline here only affects later phases).
- ``construction.pass.start`` — before each construction pass.
- ``construction.grow.seed`` — per seed handled in Substep 2.1.
- ``construction.grow.enclave`` — per enclave-assignment sweep
  (Substep 2.2).
- ``construction.adjust.phase`` — entry and each phase boundary of
  Step 3 (absorb/swap/merge/trim/dissolve).
- ``tabu.iteration`` — top of every Tabu iteration.
- ``pool.result`` — parent-side reduction of one completed pass or
  portfolio-member result (serial and worker execution alike).
- ``checkpoint.write`` — immediately before each atomic solve-
  checkpoint snapshot (``FaCTConfig.checkpoint_path``); a ``fail``
  fault here simulates a crash at the snapshot boundary, the
  kill-resume property tests' favourite spot.
- ``certify.solution`` — before each certification pass
  (``FaCTConfig.certify`` = ``final``/``paranoid``).
"""


# Checkpoint names registered by higher layers (the solve service adds
# its journal/lease/result checkpoints at import time). Kept separate
# from CHECKPOINTS so the solver drift guard — "a plain solve visits
# every name in CHECKPOINTS" — stays true.
_EXTRA_CHECKPOINTS: set[str] = set()


def register_checkpoints(*names: str) -> tuple[str, ...]:
    """Register additional checkpoint names (idempotent).

    Layers above the solver (the solve service) declare their own
    fault-injection sites here so chaos plans against them pass the
    same unknown-name validation the solver checkpoints get.
    """
    for name in names:
        _EXTRA_CHECKPOINTS.add(str(name))
    return tuple(names)


def fire_checkpoint(name: str, budget=None) -> None:
    """Fire the process-wide injector (if any) at *name*.

    The direct-call counterpart of :meth:`repro.runtime.Budget.checkpoint`
    for code that has no budget in hand — the service's store and
    worker paths use it so chaos tests can crash them at exact points.
    """
    injector = _active
    if injector is not None:
        injector.fire(name, budget)


class InjectedFault(RuntimeError):
    """Default exception raised by a ``fail`` fault.

    Deliberately NOT a :class:`repro.exceptions.ReproError`: it stands
    in for an unexpected crash, so it must fly past the library's own
    error handling exactly as a real bug would.
    """


@dataclass(frozen=True)
class _Fault:
    action: str  # "delay" | "fail" | "cancel"
    on_visit: int
    seconds: float = 0.0
    exception: BaseException | None = None


def _validate_checkpoint(name: str) -> str:
    if name not in CHECKPOINTS and name not in _EXTRA_CHECKPOINTS:
        raise BudgetError(
            f"unknown checkpoint {name!r}; registered checkpoints are "
            f"{list(CHECKPOINTS) + sorted(_EXTRA_CHECKPOINTS)}"
        )
    return name


class FaultInjector:
    """Plan of deterministic faults plus a record of checkpoint visits.

    Thread-safe: visit counting is locked so the parallel construction
    path can share one injector. Registering a fault for a name not in
    :data:`CHECKPOINTS` raises :class:`repro.exceptions.BudgetError`
    immediately — a registered-but-unreachable fault means the plan
    (or the registry) is stale.
    """

    def __init__(self) -> None:
        self.visits: Counter[str] = Counter()
        self._faults: dict[str, list[_Fault]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # plan construction
    # ------------------------------------------------------------------
    def _add(self, checkpoint: str, fault: _Fault) -> "FaultInjector":
        _validate_checkpoint(checkpoint)
        if fault.on_visit < 1:
            raise BudgetError(
                f"on_visit must be >= 1, got {fault.on_visit!r}"
            )
        self._faults.setdefault(checkpoint, []).append(fault)
        return self

    def delay(
        self, checkpoint: str, seconds: float, on_visit: int = 1
    ) -> "FaultInjector":
        """Sleep *seconds* on the *on_visit*-th visit to *checkpoint*."""
        if seconds < 0:
            raise BudgetError(f"delay seconds must be >= 0, got {seconds!r}")
        return self._add(
            checkpoint, _Fault("delay", on_visit, seconds=float(seconds))
        )

    def fail(
        self,
        checkpoint: str,
        exception: BaseException | None = None,
        on_visit: int = 1,
    ) -> "FaultInjector":
        """Raise *exception* (default :class:`InjectedFault`) on the
        *on_visit*-th visit to *checkpoint*."""
        return self._add(
            checkpoint, _Fault("fail", on_visit, exception=exception)
        )

    def cancel(self, checkpoint: str, on_visit: int = 1) -> "FaultInjector":
        """Cancel the run's token on the *on_visit*-th visit."""
        return self._add(checkpoint, _Fault("cancel", on_visit))

    # ------------------------------------------------------------------
    # runtime
    # ------------------------------------------------------------------
    def fire(self, checkpoint: str, budget=None) -> None:
        """Record one visit and apply any fault scheduled for it.

        Called by :meth:`repro.runtime.Budget.checkpoint`; *budget* is
        the visiting budget (needed by ``cancel`` faults).
        """
        _validate_checkpoint(checkpoint)
        with self._lock:
            self.visits[checkpoint] += 1
            ordinal = self.visits[checkpoint]
            due = [
                fault
                for fault in self._faults.get(checkpoint, ())
                if fault.on_visit == ordinal
            ]
        listener = _listener
        for fault in due:
            if listener is not None:
                listener(checkpoint, fault.action, ordinal)
            if fault.action == "delay":
                time.sleep(fault.seconds)
            elif fault.action == "cancel":
                if budget is not None:
                    budget.token.cancel()
            elif fault.action == "fail":
                raise fault.exception or InjectedFault(
                    f"injected fault at {checkpoint!r} (visit {ordinal})"
                )

    def visited(self, checkpoint: str) -> int:
        """Number of recorded visits to one checkpoint."""
        return self.visits[_validate_checkpoint(checkpoint)]

    def unvisited(self) -> frozenset[str]:
        """Registered checkpoints never visited so far."""
        return frozenset(name for name in CHECKPOINTS if not self.visits[name])


# ----------------------------------------------------------------------
# process-wide injector (lets chaos tests reach any entry point without
# threading an injector through every call signature)
# ----------------------------------------------------------------------

_active: FaultInjector | None = None

# Process-wide observer of *applied* faults: a callable
# (checkpoint, action, visit_ordinal) -> None. Installed by the
# telemetry layer so injected chaos lands in the run event log without
# this module importing repro.obs.
_listener = None


def set_fault_listener(listener):
    """Install a callable observing every applied fault; returns the
    previous listener (restore it when done). The listener fires
    *before* the fault takes effect, so a ``fail`` fault is recorded
    even though it raises."""
    global _listener
    previous = _listener
    _listener = listener
    return previous


def active_injector() -> FaultInjector | None:
    """The process-wide injector installed by :func:`inject`, if any."""
    return _active


@contextmanager
def inject(injector: FaultInjector):
    """Install *injector* process-wide for the duration of the block.

    Budgets without their own ``faults`` pick it up at every
    checkpoint. Nesting restores the previous injector on exit. Note:
    worker *processes* (``FaCTConfig.n_jobs > 1``) do not inherit it —
    in-process fault injection covers the serial code path; the
    parallel path is exercised through worker-side deadlines instead.
    """
    global _active
    previous = _active
    _active = injector
    try:
        yield injector
    finally:
        _active = previous
