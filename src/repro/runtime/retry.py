"""The unified retry/backoff policy for every re-dispatch decision.

Before this module, each layer invented its own retry loop: the worker
pool counted raw resubmissions (``pool_task_retries``), the bench
harness retried cells ad hoc, and the solve service needed yet another
scheme for re-leasing crashed jobs. :class:`RetryPolicy` is the single
vocabulary they all share now:

- **max attempts** — how many times a unit of work may be *started*
  (first attempt included) before it is declared dead. ``allows(n)``
  answers "may attempt ``n+1`` begin after ``n`` completed attempts?".
- **exponential backoff** — the delay before attempt ``n+1`` grows as
  ``base * factor**(n-1)``, clamped to a maximum.
- **deterministic jitter** — real systems jitter retry delays so a
  thundering herd of failures does not resynchronize; this repo also
  demands reproducibility, so the jitter is *derived*, not random: a
  SHA-256 hash of ``(key, attempt)`` spreads delays within
  ``±jitter_ratio`` while keeping every run of the same workload
  bit-identical.
- **dead-letter** — :meth:`decide` collapses the whole policy into one
  verdict per failure: ``("retry", delay_seconds)`` or ``("dead",
  0.0)``. The job store maps ``"dead"`` to its ``DEAD`` state; the
  worker pool maps it to in-process degradation.

The policy is a frozen dataclass with a JSON round-trip
(:meth:`as_dict` / :meth:`from_dict`) so a job's retry contract
travels inside its persisted spec.
"""

from __future__ import annotations

import hashlib
import math
import numbers
from dataclasses import dataclass

from ..exceptions import BudgetError

__all__ = ["RetryPolicy"]


def _require_number(name: str, value, minimum: float = 0.0) -> float:
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise BudgetError(f"{name} must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value) or value < minimum:
        raise BudgetError(
            f"{name} must be finite and >= {minimum}, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class RetryPolicy:
    """How failed work is re-dispatched: attempts, backoff, jitter.

    Parameters
    ----------
    max_attempts:
        Total times a unit may be started (>= 1). ``1`` means "never
        retry": the first failure is final.
    base_delay_seconds:
        Delay before the first retry (attempt 2). ``0`` retries
        immediately — the worker-pool default, where a failed task is
        cheap to resubmit and the run-level budget is already ticking.
    backoff_factor:
        Multiplier applied per further retry (>= 1).
    max_delay_seconds:
        Clamp on the computed delay.
    jitter_ratio:
        Spread of the deterministic jitter in ``[0, 1)``: the delay for
        ``(key, attempt)`` lands in ``delay * (1 ± jitter_ratio)``,
        derived from a hash so identical inputs always yield identical
        delays.
    """

    max_attempts: int = 3
    base_delay_seconds: float = 0.0
    backoff_factor: float = 2.0
    max_delay_seconds: float = 60.0
    jitter_ratio: float = 0.1

    def __post_init__(self) -> None:
        if isinstance(self.max_attempts, bool) or not isinstance(
            self.max_attempts, numbers.Integral
        ):
            raise BudgetError(
                f"max_attempts must be an integer, got {self.max_attempts!r}"
            )
        object.__setattr__(self, "max_attempts", int(self.max_attempts))
        if self.max_attempts < 1:
            raise BudgetError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        object.__setattr__(
            self,
            "base_delay_seconds",
            _require_number("base_delay_seconds", self.base_delay_seconds),
        )
        object.__setattr__(
            self,
            "backoff_factor",
            _require_number("backoff_factor", self.backoff_factor, minimum=1.0),
        )
        object.__setattr__(
            self,
            "max_delay_seconds",
            _require_number("max_delay_seconds", self.max_delay_seconds),
        )
        jitter = _require_number("jitter_ratio", self.jitter_ratio)
        if jitter >= 1.0:
            raise BudgetError(
                f"jitter_ratio must be in [0, 1), got {jitter!r}"
            )
        object.__setattr__(self, "jitter_ratio", jitter)

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def allows(self, completed_attempts: int) -> bool:
        """May another attempt start after *completed_attempts*?"""
        return completed_attempts < self.max_attempts

    def delay_seconds(self, completed_attempts: int, key: str = "") -> float:
        """Backoff before the attempt following *completed_attempts*.

        Exponential in the retry ordinal, clamped, with deterministic
        jitter derived from ``(key, completed_attempts)`` — the same
        inputs always produce the same delay.
        """
        if completed_attempts < 1:
            return 0.0
        delay = self.base_delay_seconds * (
            self.backoff_factor ** (completed_attempts - 1)
        )
        delay = min(delay, self.max_delay_seconds)
        if delay <= 0.0 or self.jitter_ratio == 0.0:
            return delay
        digest = hashlib.sha256(
            f"{key}\x00{completed_attempts}".encode("utf-8")
        ).digest()
        # 8 bytes of hash → a fraction in [0, 1) → a factor in
        # [1 - jitter, 1 + jitter).
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return delay * (1.0 + self.jitter_ratio * (2.0 * fraction - 1.0))

    def decide(
        self, completed_attempts: int, key: str = ""
    ) -> tuple[str, float]:
        """The dead-letter verdict after a failed attempt:
        ``("retry", delay_seconds)`` while attempts remain, else
        ``("dead", 0.0)``."""
        if self.allows(completed_attempts):
            return "retry", self.delay_seconds(completed_attempts, key)
        return "dead", 0.0

    # ------------------------------------------------------------------
    # serialization (job specs persist their retry contract)
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_delay_seconds": self.base_delay_seconds,
            "backoff_factor": self.backoff_factor,
            "max_delay_seconds": self.max_delay_seconds,
            "jitter_ratio": self.jitter_ratio,
        }

    _FIELDS = (
        "max_attempts",
        "base_delay_seconds",
        "backoff_factor",
        "max_delay_seconds",
        "jitter_ratio",
    )

    @classmethod
    def from_dict(cls, payload: dict) -> "RetryPolicy":
        if not isinstance(payload, dict):
            raise BudgetError(
                f"retry policy must be an object, got {payload!r}"
            )
        unknown = sorted(set(payload) - set(cls._FIELDS))
        if unknown:
            # A durable spec with a typo'd knob must bounce at submit,
            # not silently fall back to defaults.
            raise BudgetError(
                f"unknown retry policy fields {unknown}; known fields are "
                f"{list(cls._FIELDS)}"
            )
        return cls(**{name: payload[name] for name in cls._FIELDS
                      if name in payload})
