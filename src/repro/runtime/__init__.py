"""Solver resilience runtime — budgets, cancellation, fault injection.

This package is the substrate the FaCT phases use to stay responsive
under wall-clock limits and caller aborts:

- :class:`Budget` / :class:`CancellationToken` — a deadline plus a
  cooperative cancel flag, checked at every phase's iteration
  boundaries;
- :class:`RunStatus` — how a run ended (``COMPLETE``,
  ``DEADLINE_EXCEEDED``, ``CANCELLED``);
- :class:`Interrupted` — the internal control-flow signal raised at an
  exhausted checkpoint and converted by each phase into a flagged
  best-so-far result;
- :mod:`repro.runtime.faults` — deterministic delay/crash/cancel
  injection at the named checkpoints, for chaos testing (higher layers
  register their own sites via :func:`register_checkpoints`);
- :class:`RetryPolicy` — the unified retry/backoff/dead-letter policy
  shared by the worker pool and the solve service;
- :func:`atomic_write_text` / :func:`append_line` /
  :func:`fsync_directory` — crash-safe file replacement and durable
  journal appends (temp file + ``os.replace`` + directory fsync)
  behind the solve checkpoints, the bench journal and the service job
  store.
"""

from .atomic import append_line, atomic_write_text, fsync_directory
from .budget import Budget, CancellationToken, Interrupted, RunStatus
from .faults import (
    CHECKPOINTS,
    FaultInjector,
    InjectedFault,
    active_injector,
    fire_checkpoint,
    inject,
    register_checkpoints,
)
from .retry import RetryPolicy

__all__ = [
    "Budget",
    "CHECKPOINTS",
    "CancellationToken",
    "FaultInjector",
    "InjectedFault",
    "Interrupted",
    "RetryPolicy",
    "RunStatus",
    "active_injector",
    "append_line",
    "atomic_write_text",
    "fire_checkpoint",
    "fsync_directory",
    "inject",
    "register_checkpoints",
]
