"""Solver resilience runtime — budgets, cancellation, fault injection.

This package is the substrate the FaCT phases use to stay responsive
under wall-clock limits and caller aborts:

- :class:`Budget` / :class:`CancellationToken` — a deadline plus a
  cooperative cancel flag, checked at every phase's iteration
  boundaries;
- :class:`RunStatus` — how a run ended (``COMPLETE``,
  ``DEADLINE_EXCEEDED``, ``CANCELLED``);
- :class:`Interrupted` — the internal control-flow signal raised at an
  exhausted checkpoint and converted by each phase into a flagged
  best-so-far result;
- :mod:`repro.runtime.faults` — deterministic delay/crash/cancel
  injection at the named checkpoints, for chaos testing;
- :func:`atomic_write_text` — crash-safe file replacement (temp file +
  ``os.replace``) behind the solve checkpoints and the bench journal.
"""

from .atomic import atomic_write_text
from .budget import Budget, CancellationToken, Interrupted, RunStatus
from .faults import (
    CHECKPOINTS,
    FaultInjector,
    InjectedFault,
    active_injector,
    inject,
)

__all__ = [
    "Budget",
    "CHECKPOINTS",
    "CancellationToken",
    "FaultInjector",
    "InjectedFault",
    "Interrupted",
    "RunStatus",
    "active_injector",
    "atomic_write_text",
    "inject",
]
