"""Wall-clock budgets and cooperative cancellation for solver runs.

The FaCT phases are long loops (construction passes, enclave sweeps,
Tabu iterations). A :class:`Budget` carries a wall-clock deadline and a
:class:`CancellationToken` through those loops; each phase calls
:meth:`Budget.checkpoint` at its iteration boundaries, which raises
:class:`Interrupted` once the deadline passes or the token is
cancelled. The phases catch the signal, finalize their best-so-far
state and report a :class:`RunStatus`, so a bounded run always returns
a usable (partial) solution instead of either blocking or crashing.

Checkpoints double as the fault-injection sites used by the chaos
tests — see :mod:`repro.runtime.faults`.

Typical usage::

    from repro import Budget, FaCT

    budget = Budget(deadline_seconds=0.5)
    solution = FaCT().solve(collection, constraints, budget=budget)
    if solution.interrupted:
        print("best-so-far:", solution.status, solution.p)

    # cancel from another thread
    budget.token.cancel()
"""

from __future__ import annotations

import enum
import math
import numbers
import threading
import time

from ..exceptions import BudgetError

__all__ = ["Budget", "CancellationToken", "Interrupted", "RunStatus"]


class RunStatus(enum.Enum):
    """How a solver run ended.

    - ``COMPLETE`` — every phase ran to its natural stopping point.
    - ``DEADLINE_EXCEEDED`` — the wall-clock budget expired; the
      returned solution is the best one found before the deadline.
    - ``CANCELLED`` — the run's :class:`CancellationToken` was
      cancelled; the returned solution is the best one found so far.
    """

    COMPLETE = "complete"
    DEADLINE_EXCEEDED = "deadline_exceeded"
    CANCELLED = "cancelled"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CancellationToken:
    """Thread-safe cooperative cancel flag.

    Cancellation is sticky: once :meth:`cancel` is called the token
    stays cancelled. Safe to share between the thread running the
    solver and the thread (or signal handler) requesting the stop.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CancellationToken(cancelled={self.cancelled})"


class Interrupted(Exception):
    """Internal control-flow signal raised by :meth:`Budget.checkpoint`.

    Carries the :class:`RunStatus` that ended the run and the name of
    the checkpoint that observed it. The solver phases catch it and
    convert it into a flagged partial result; it deliberately does NOT
    derive from :class:`repro.exceptions.ReproError` so that generic
    library error handlers never swallow it by accident.
    """

    def __init__(self, status: RunStatus, checkpoint: str | None = None):
        self.status = status
        self.checkpoint = checkpoint
        where = f" at checkpoint {checkpoint!r}" if checkpoint else ""
        super().__init__(f"run interrupted ({status.value}){where}")


def _validate_deadline(deadline_seconds) -> float | None:
    if deadline_seconds is None:
        return None
    if isinstance(deadline_seconds, bool) or not isinstance(
        deadline_seconds, numbers.Real
    ):
        raise BudgetError(
            f"deadline_seconds must be a positive number or None, "
            f"got {deadline_seconds!r}"
        )
    value = float(deadline_seconds)
    if not math.isfinite(value) or value <= 0:
        raise BudgetError(
            f"deadline_seconds must be positive and finite, got {value!r}"
        )
    return value


class Budget:
    """A wall-clock deadline plus a cancellation token for one run.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock limit, measured from :meth:`start` (the first
        checkpoint auto-starts the clock). ``None`` means unlimited.
    token:
        Cancellation token to observe; a fresh one is created when
        omitted (reachable as :attr:`token`, e.g. to cancel from
        another thread).
    faults:
        Optional :class:`repro.runtime.faults.FaultInjector` fired at
        every checkpoint. When omitted, the process-wide injector
        installed by :func:`repro.runtime.faults.inject` (if any) is
        used — that is how the chaos tests reach production code paths
        without threading an injector through every signature.

    Raises :class:`repro.exceptions.BudgetError` for non-positive or
    non-finite deadlines.
    """

    __slots__ = ("deadline_seconds", "token", "faults", "_clock", "_started_at")

    def __init__(
        self,
        deadline_seconds: float | None = None,
        token: CancellationToken | None = None,
        faults=None,
        clock=time.perf_counter,
    ):
        self.deadline_seconds = _validate_deadline(deadline_seconds)
        self.token = token or CancellationToken()
        self.faults = faults
        self._clock = clock
        self._started_at: float | None = None

    @classmethod
    def unlimited(cls) -> "Budget":
        """A budget with no deadline and a fresh token."""
        return cls()

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    def start(self) -> "Budget":
        """Start the deadline clock (idempotent); returns self."""
        if self._started_at is None:
            self._started_at = self._clock()
        return self

    @property
    def started(self) -> bool:
        """True once the clock is running."""
        return self._started_at is not None

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0 when not started)."""
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def remaining(self) -> float | None:
        """Seconds left before the deadline (``None`` = unlimited)."""
        if self.deadline_seconds is None:
            return None
        return max(0.0, self.deadline_seconds - self.elapsed())

    def expired(self) -> bool:
        """True once the deadline has passed."""
        return (
            self.deadline_seconds is not None
            and self._started_at is not None
            and self.elapsed() > self.deadline_seconds
        )

    # ------------------------------------------------------------------
    # cooperative interruption
    # ------------------------------------------------------------------
    def status(self) -> RunStatus | None:
        """The interruption status, or ``None`` while the run may
        continue. Cancellation wins over an expired deadline (it is the
        more explicit signal)."""
        if self.token.cancelled:
            return RunStatus.CANCELLED
        if self.expired():
            return RunStatus.DEADLINE_EXCEEDED
        return None

    def checkpoint(self, name: str) -> None:
        """One cooperative interruption point.

        Fires any injected faults registered for *name* (delays,
        exceptions, cancellations — see :mod:`repro.runtime.faults`),
        then raises :class:`Interrupted` when the budget is exhausted
        or cancelled. Auto-starts the clock on first use so bare phase
        calls need no ceremony.
        """
        self.start()
        injector = self.faults
        if injector is None:
            from .faults import active_injector

            injector = active_injector()
        if injector is not None:
            injector.fire(name, self)
        status = self.status()
        if status is not None:
            raise Interrupted(status, checkpoint=name)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Budget(deadline_seconds={self.deadline_seconds}, "
            f"elapsed={self.elapsed():.3f}, status={self.status()})"
        )
