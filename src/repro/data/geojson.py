"""GeoJSON I/O — run the library on real census data.

The paper joins US Census Bureau shapefiles with attribute tables in
QGIS. When the real data is available it is one `ogr2ogr` away from
GeoJSON, so this module round-trips :class:`AreaCollection` instances
through GeoJSON ``FeatureCollection`` documents:

- :func:`load_geojson` reads polygons + properties, derives rook (or
  queen) adjacency from the geometry, and returns a collection;
- :func:`dump_geojson` writes a collection (with optional region labels
  so results can be inspected in any GIS tool).

Only simple ``Polygon`` geometry is supported; the exterior ring is
used and holes are ignored (holes do not affect rook adjacency between
tracts in practice).

Loading fails loudly on bad attribute values — missing, non-numeric or
non-finite (NaN/±inf) properties raise :class:`~repro.exceptions.
DatasetError` naming the matching :mod:`repro.preflight` lint code, so
a NaN can never propagate silently into aggregate comparisons.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, Mapping

from ..contiguity.weights import queen_adjacency, rook_adjacency
from ..core.area import Area, AreaCollection
from ..exceptions import DatasetError
from ..geometry.point import Point
from ..geometry.polygon import Polygon

__all__ = ["load_geojson", "dump_geojson", "collection_to_feature_collection"]


def load_geojson(
    source: str | Path | Mapping,
    attribute_names: Iterable[str],
    dissimilarity_attribute: str,
    contiguity: str = "rook",
    id_property: str | None = None,
) -> AreaCollection:
    """Load an :class:`AreaCollection` from GeoJSON.

    Parameters
    ----------
    source:
        Path to a ``.geojson`` file or an already-parsed mapping.
    attribute_names:
        Feature properties to keep as spatially extensive attributes.
    dissimilarity_attribute:
        Which of them serves as ``d_i``.
    contiguity:
        ``"rook"`` (shared edge) or ``"queen"`` (shared vertex).
    id_property:
        Optional property holding integer area ids; defaults to the
        feature's position in the collection.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    else:
        document = source
    if document.get("type") != "FeatureCollection":
        raise DatasetError("expected a GeoJSON FeatureCollection")
    features = document.get("features", [])
    if not features:
        raise DatasetError("FeatureCollection contains no features")

    names = tuple(attribute_names)
    if dissimilarity_attribute not in names:
        raise DatasetError(
            f"dissimilarity attribute {dissimilarity_attribute!r} must be "
            "among attribute_names"
        )

    polygons: list[Polygon] = []
    areas: list[Area] = []
    for position, feature in enumerate(features):
        geometry = feature.get("geometry") or {}
        if geometry.get("type") != "Polygon":
            raise DatasetError(
                f"feature {position}: only Polygon geometry is supported, "
                f"got {geometry.get('type')!r}"
            )
        rings = geometry.get("coordinates") or []
        if not rings:
            raise DatasetError(f"feature {position}: empty Polygon coordinates")
        polygon = Polygon(Point(x, y) for x, y in rings[0])
        properties = feature.get("properties") or {}
        attributes = {}
        for name in names:
            try:
                raw = properties[name]
            except KeyError:
                raise DatasetError(
                    f"feature {position}: missing property {name!r} "
                    "(preflight lint code 'missing-attribute')"
                ) from None
            try:
                value = float(raw)
            except (TypeError, ValueError):
                raise DatasetError(
                    f"feature {position}: property {name!r} is not numeric "
                    f"(got {raw!r}; preflight lint code "
                    "'non-numeric-attribute')"
                ) from None
            if not math.isfinite(value):
                # Reject NaN/±inf here, loudly: a NaN that slips into an
                # attribute would otherwise poison every downstream
                # aggregate comparison silently (NaN compares false).
                raise DatasetError(
                    f"feature {position}: property {name!r} is not finite "
                    f"(got {raw!r}; preflight lint code "
                    "'non-finite-attribute')"
                )
            attributes[name] = value
        area_id = (
            int(properties[id_property]) if id_property else position
        )
        polygons.append(polygon)
        areas.append(
            Area(area_id=area_id, attributes=attributes, polygon=polygon)
        )

    if contiguity == "rook":
        positional = rook_adjacency(polygons)
    elif contiguity == "queen":
        positional = queen_adjacency(polygons)
    else:
        raise DatasetError(f"unknown contiguity {contiguity!r}")
    # Remap positional adjacency onto the (possibly custom) area ids.
    id_of = [area.area_id for area in areas]
    adjacency = {
        id_of[index]: frozenset(id_of[j] for j in neighbors)
        for index, neighbors in positional.items()
    }
    return AreaCollection(
        areas, adjacency, dissimilarity_attribute=dissimilarity_attribute
    )


def collection_to_feature_collection(
    collection: AreaCollection,
    region_labels: Mapping[int, int] | None = None,
) -> dict:
    """Serialize a collection (plus optional region labels) to a
    GeoJSON ``FeatureCollection`` mapping."""
    features = []
    for area in collection:
        if area.polygon is None:
            raise DatasetError(
                f"area {area.area_id} has no polygon; cannot write GeoJSON"
            )
        properties = dict(area.attributes)
        properties["area_id"] = area.area_id
        if region_labels is not None:
            properties["region"] = region_labels.get(area.area_id, -1)
        ring = [[v.x, v.y] for v in area.polygon.vertices]
        ring.append(ring[0])  # GeoJSON rings repeat the first vertex
        features.append(
            {
                "type": "Feature",
                "geometry": {"type": "Polygon", "coordinates": [ring]},
                "properties": properties,
            }
        )
    return {"type": "FeatureCollection", "features": features}


def dump_geojson(
    collection: AreaCollection,
    path: str | Path,
    region_labels: Mapping[int, int] | None = None,
) -> None:
    """Write a collection to a ``.geojson`` file (see
    :func:`collection_to_feature_collection`)."""
    document = collection_to_feature_collection(collection, region_labels)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
