"""Named evaluation datasets — the paper's nine-dataset registry.

Section VII-A evaluates on nine census-tract datasets. The registry
below mirrors their names, exact sizes and component structure (plus
one synthetic ``25k`` midpoint used by the scaling benchmark); the
synthetic generator (see :mod:`repro.data.synthetic`) supplies the
geometry and attributes. A global ``scale`` multiplier lets benchmark
runs shrink every dataset proportionally (pure-Python reproduction of
O(n²) heuristics; EXPERIMENTS.md records the scale each run used).

============ ======= ==========================================
name         areas   paper description
============ ======= ==========================================
``1k``        1 012  Los Angeles City
``2k``        2 344  Los Angeles County (the default dataset)
``4k``        3 947  Southern California (SCAG)
``8k``        8 049  State of California
``10k``      10 255  CA, NV, AZ
``20k``      20 570  + 12 more western states
``25k``      25 000  scaling benchmark midpoint (synthetic, not
                     from the paper's registry)
``30k``      29 887  + TX, LA, AR, MO, IA
``40k``      40 214  + MN, MS, AL, TN, KY, IL, WI
``50k``      49 943  + GA, IN, MI, OH, WV
============ ======= ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..core.area import AreaCollection
from ..exceptions import DatasetError
from .synthetic import synthetic_census

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry for one named dataset."""

    name: str
    n_areas: int
    description: str
    patches: int = 1
    seed: int = 20220101

    def scaled_size(self, scale: float) -> int:
        """Dataset size under a global *scale* multiplier (min 12)."""
        return max(12, round(self.n_areas * scale))


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("1k", 1012, "Los Angeles City"),
        DatasetSpec("2k", 2344, "Los Angeles County (default dataset)"),
        DatasetSpec("4k", 3947, "Southern California (SCAG)"),
        DatasetSpec("8k", 8049, "State of California"),
        DatasetSpec("10k", 10255, "CA, NV, AZ", patches=2),
        DatasetSpec("20k", 20570, "10k + 12 western states", patches=3),
        DatasetSpec(
            "25k", 25000, "scaling benchmark midpoint (synthetic)", patches=3
        ),
        DatasetSpec("30k", 29887, "20k + TX, LA, AR, MO, IA", patches=4),
        DatasetSpec("40k", 40214, "30k + MN, MS, AL, TN, KY, IL, WI", patches=5),
        DatasetSpec("50k", 49943, "40k + GA, IN, MI, OH, WV", patches=6),
    )
}

DEFAULT_DATASET = "2k"
"""The paper's default evaluation dataset (LA County, 2 344 tracts)."""


def dataset_names() -> tuple[str, ...]:
    """All registry names, smallest dataset first."""
    return tuple(DATASETS)


@lru_cache(maxsize=16)
def _load_cached(name: str, scale: float, seed: int | None) -> AreaCollection:
    spec = DATASETS[name]
    return synthetic_census(
        spec.scaled_size(scale),
        seed=spec.seed if seed is None else seed,
        patches=spec.patches,
    )


def load_dataset(
    name: str = DEFAULT_DATASET, scale: float = 1.0, seed: int | None = None
) -> AreaCollection:
    """Load (generate) a named dataset.

    Parameters
    ----------
    name:
        Registry name (``1k`` … ``50k``).
    scale:
        Global size multiplier; ``0.25`` yields quarter-size datasets
        for fast benchmarking.
    seed:
        Override the registry seed (for sensitivity studies).

    Results are cached, so repeated benchmark calls share one instance.
    """
    if name not in DATASETS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        )
    if scale <= 0:
        raise DatasetError("scale must be positive")
    return _load_cached(name, float(scale), seed)
