"""Columnar construction: build collections from tabular data.

Real regionalization inputs usually arrive as a table — a CSV of
attributes keyed by tract id plus either geometry or a neighbor list.
This module turns columnar data (plain sequences or numpy arrays) into
an :class:`~repro.core.area.AreaCollection` without hand-rolling Area
objects:

    collection = collection_from_columns(
        adjacency={0: [1], 1: [0, 2], 2: [1]},
        columns={"POP": [100, 250, 175], "JOBS": [40, 90, 66]},
        dissimilarity="JOBS",
    )

Also provides :func:`collection_from_csv` for files with an id column
and a neighbors column (comma/space-separated ids) — handy for census
data whose contiguity is published as a neighbor list rather than
geometry.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..core.area import Area, AreaCollection
from ..exceptions import DatasetError

__all__ = ["collection_from_columns", "collection_from_csv"]


def collection_from_columns(
    adjacency: Mapping[int, Iterable[int]],
    columns: Mapping[str, Sequence[float]],
    dissimilarity: str,
    ids: Sequence[int] | None = None,
    polygons: Sequence | None = None,
) -> AreaCollection:
    """Build a collection from columnar attribute data.

    Parameters
    ----------
    adjacency:
        ``area_id -> neighbor ids`` (symmetric).
    columns:
        ``attribute name -> values`` — all columns must share one
        length.
    dissimilarity:
        Which column serves as ``d_i``.
    ids:
        Area identifiers, by row; defaults to ``0..n-1``.
    polygons:
        Optional per-row polygons.
    """
    if not columns:
        raise DatasetError("collection_from_columns needs at least one column")
    lengths = {name: len(values) for name, values in columns.items()}
    n = next(iter(lengths.values()))
    if any(length != n for length in lengths.values()):
        raise DatasetError(
            f"column lengths differ: { {k: v for k, v in lengths.items()} }"
        )
    if dissimilarity not in columns:
        raise DatasetError(
            f"dissimilarity column {dissimilarity!r} is not among "
            f"{sorted(columns)}"
        )
    if ids is None:
        ids = range(n)
    else:
        if len(ids) != n:
            raise DatasetError(
                f"ids has {len(ids)} entries for {n} attribute rows"
            )
    if polygons is not None and len(polygons) != n:
        raise DatasetError(
            f"polygons has {len(polygons)} entries for {n} attribute rows"
        )

    areas = []
    for row, area_id in enumerate(ids):
        areas.append(
            Area(
                area_id=int(area_id),
                attributes={
                    name: float(values[row]) for name, values in columns.items()
                },
                polygon=polygons[row] if polygons is not None else None,
            )
        )
    return AreaCollection(
        areas, adjacency, dissimilarity_attribute=dissimilarity
    )


def collection_from_csv(
    path: str | Path,
    attribute_names: Iterable[str],
    dissimilarity: str,
    id_column: str = "id",
    neighbors_column: str = "neighbors",
    neighbor_separator: str = " ",
) -> AreaCollection:
    """Build a collection from a CSV with a neighbor-list column.

    The file needs *id_column*, *neighbors_column* (neighbor ids
    joined by *neighbor_separator*; empty for isolated areas) and one
    column per requested attribute.
    """
    names = tuple(attribute_names)
    rows: list[dict] = []
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            rows.append(row)
    if not rows:
        raise DatasetError(f"{path}: CSV contains no data rows")

    ids: list[int] = []
    adjacency: dict[int, set[int]] = {}
    columns: dict[str, list[float]] = {name: [] for name in names}
    for line_number, row in enumerate(rows, start=2):
        try:
            area_id = int(row[id_column])
        except (KeyError, ValueError):
            raise DatasetError(
                f"{path}:{line_number}: missing or non-integer "
                f"{id_column!r} column"
            ) from None
        ids.append(area_id)
        raw_neighbors = (row.get(neighbors_column) or "").strip()
        adjacency[area_id] = {
            int(token)
            for token in raw_neighbors.split(neighbor_separator)
            if token
        }
        for name in names:
            try:
                columns[name].append(float(row[name]))
            except (KeyError, ValueError):
                raise DatasetError(
                    f"{path}:{line_number}: missing or non-numeric "
                    f"column {name!r}"
                ) from None

    # Tolerate one-sided neighbor lists: symmetrize before validation.
    for area_id, neighbors in list(adjacency.items()):
        for neighbor in neighbors:
            if neighbor not in adjacency:
                raise DatasetError(
                    f"{path}: area {area_id} lists unknown neighbor "
                    f"{neighbor}"
                )
            adjacency[neighbor] = set(adjacency[neighbor]) | {area_id}

    return collection_from_columns(
        adjacency, columns, dissimilarity, ids=ids
    )
