"""Dataset substrate: schema, synthetic census generator, named
dataset registry, GeoJSON I/O."""

from .datasets import DATASETS, DEFAULT_DATASET, DatasetSpec, dataset_names, load_dataset
from .geojson import collection_to_feature_collection, dump_geojson, load_geojson
from .schema import (
    ATTRIBUTE_NAMES,
    DISSIMILARITY_ATTRIBUTE,
    EMPLOYED,
    HOUSEHOLDS,
    POP16UP,
    TOTALPOP,
    default_avg_constraint,
    default_constraints,
    default_min_constraint,
    default_sum_constraint,
)
from .synthetic import attach_attributes, synthetic_census
from .table import collection_from_columns, collection_from_csv

__all__ = [
    "ATTRIBUTE_NAMES",
    "DATASETS",
    "DEFAULT_DATASET",
    "DISSIMILARITY_ATTRIBUTE",
    "DatasetSpec",
    "EMPLOYED",
    "HOUSEHOLDS",
    "POP16UP",
    "TOTALPOP",
    "attach_attributes",
    "collection_from_columns",
    "collection_from_csv",
    "collection_to_feature_collection",
    "dataset_names",
    "default_avg_constraint",
    "default_constraints",
    "default_min_constraint",
    "default_sum_constraint",
    "dump_geojson",
    "load_dataset",
    "load_geojson",
    "synthetic_census",
]
