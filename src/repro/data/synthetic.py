"""Synthetic census-tract datasets.

The paper evaluates on nine real datasets of US census tracts joined
with 2010 census attributes. Neither the shapefiles nor the attribute
tables are available offline, so this module generates the closest
synthetic equivalent (substitution documented in DESIGN.md §2):

1. **Topology** — a Lloyd-relaxed bounded Voronoi tessellation, which
   reproduces the planar, irregular, average-degree-≈-6 rook graph of
   census tracts. Multi-state datasets use several disjoint patches so
   the contiguity graph has multiple connected components, which FaCT
   supports and classic max-p does not.
2. **Marginals** — attribute values follow lognormal distributions
   calibrated to the quantiles reported in the paper (Table III's `M`
   row pins the POP16UP CDF; Figure 8 pins EMPLOYED).
3. **Spatial autocorrelation** — scores are produced by smoothing a
   Gaussian field over the adjacency graph before the quantile
   transform, so attribute thresholds carve the map into scattered
   connected fragments exactly as §VII-B1 describes.

Everything is deterministic in the ``seed`` argument.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.area import Area, AreaCollection
from ..exceptions import DatasetError
from ..geometry.tessellation import (
    Tessellation,
    multi_patch_tessellation,
    voronoi_tessellation,
)
from . import schema

__all__ = ["synthetic_census", "attach_attributes", "smoothed_normal_scores"]


def smoothed_normal_scores(
    adjacency: dict[int, frozenset[int]],
    rng: np.random.Generator,
    rounds: int = 2,
    self_weight: float = 0.5,
) -> np.ndarray:
    """A spatially autocorrelated standard-normal score per unit.

    Draws iid N(0,1) noise and averages each unit with its neighborhood
    mean for *rounds* rounds (weight *self_weight* on the unit itself),
    then rank-transforms back to exact standard-normal scores so the
    downstream quantile mapping reproduces the target marginal exactly.
    """
    n = len(adjacency)
    scores = rng.standard_normal(n)
    for _ in range(max(0, rounds)):
        smoothed = np.empty(n)
        for index in range(n):
            neighbors = adjacency[index]
            if neighbors:
                neighborhood = sum(scores[j] for j in neighbors) / len(neighbors)
            else:
                neighborhood = scores[index]
            smoothed[index] = (
                self_weight * scores[index] + (1.0 - self_weight) * neighborhood
            )
        scores = smoothed
    # Rank-transform to exact N(0,1) scores (ties are impossible a.s.).
    ranks = scores.argsort().argsort()
    uniform = (ranks + 0.5) / n
    return _normal_ppf(uniform)


def _normal_ppf(u: np.ndarray) -> np.ndarray:
    """Standard normal quantile function (vectorized, via scipy)."""
    from scipy.stats import norm

    return norm.ppf(u)


def attach_attributes(
    tessellation: Tessellation,
    seed: int = 0,
    spatial_rounds: int = 2,
    cross_correlation: float = 0.55,
) -> AreaCollection:
    """Generate calibrated attributes over an existing tessellation.

    Parameters
    ----------
    tessellation:
        The spatial units and their rook adjacency.
    seed:
        RNG seed (the attribute draw is independent of the tessellation
        seed so topology and attributes can be varied separately).
    spatial_rounds:
        Smoothing rounds controlling spatial autocorrelation strength.
    cross_correlation:
        Correlation between the latent scores of POP16UP and EMPLOYED.
        The paper notes (Fig. 7b discussion) that the interaction of
        MIN and AVG constraints depends on whether their attributes are
        correlated; census employment and adult population are.
    """
    if not 0.0 <= cross_correlation <= 1.0:
        raise DatasetError("cross_correlation must be within [0, 1]")
    rng = np.random.default_rng(seed)
    adjacency = tessellation.adjacency
    n = len(tessellation)

    shared = smoothed_normal_scores(adjacency, rng, rounds=spatial_rounds)
    idiosyncratic = smoothed_normal_scores(adjacency, rng, rounds=spatial_rounds)
    z_pop = shared
    mix = (
        cross_correlation * shared
        + math.sqrt(1.0 - cross_correlation**2) * idiosyncratic
    )
    ranks = mix.argsort().argsort()
    z_emp = _normal_ppf((ranks + 0.5) / n)

    pop_spec = schema.ATTRIBUTE_SPECS[schema.POP16UP]
    emp_spec = schema.ATTRIBUTE_SPECS[schema.EMPLOYED]
    pop16up = np.array([pop_spec.quantile(z) for z in z_pop])
    employed = np.array([emp_spec.quantile(z) for z in z_emp])

    total_noise = rng.normal(1.0, 0.03, size=n).clip(0.9, 1.1)
    totalpop = pop16up / schema.POP16UP_SHARE_OF_TOTAL * total_noise
    household_noise = rng.normal(1.0, 0.05, size=n).clip(0.85, 1.15)
    households = totalpop / schema.PERSONS_PER_HOUSEHOLD * household_noise

    areas = []
    for index in range(n):
        areas.append(
            Area(
                area_id=index,
                attributes={
                    schema.POP16UP: round(float(pop16up[index]), 1),
                    schema.EMPLOYED: round(float(employed[index]), 1),
                    schema.TOTALPOP: round(float(totalpop[index]), 1),
                    schema.HOUSEHOLDS: round(float(households[index]), 1),
                },
                polygon=tessellation.polygons[index],
            )
        )
    return AreaCollection(
        areas,
        adjacency,
        dissimilarity_attribute=schema.DISSIMILARITY_ATTRIBUTE,
    )


def synthetic_census(
    n_units: int,
    seed: int = 0,
    patches: int = 1,
    spatial_rounds: int = 2,
    cross_correlation: float = 0.55,
) -> AreaCollection:
    """Build a complete synthetic census dataset.

    Parameters
    ----------
    n_units:
        Total number of census tracts (>= 3).
    seed:
        Single seed controlling tessellation and attributes.
    patches:
        Number of disjoint connected components. ``1`` mimics the
        single-region datasets (LA City … California); larger values
        mimic the multi-state datasets of Table I.

    Returns
    -------
    AreaCollection
        With attributes ``POP16UP``, ``EMPLOYED``, ``TOTALPOP``,
        ``HOUSEHOLDS`` and dissimilarity attribute ``HOUSEHOLDS``.
    """
    if n_units < 3:
        raise DatasetError("synthetic_census needs at least 3 units")
    if patches < 1:
        raise DatasetError("patches must be >= 1")
    if patches == 1:
        tessellation = voronoi_tessellation(n_units, seed=seed)
    else:
        base = n_units // patches
        sizes = [base] * patches
        sizes[-1] += n_units - base * patches
        if min(sizes) < 3:
            raise DatasetError(
                f"{n_units} units cannot be split into {patches} patches "
                "of >= 3 units"
            )
        tessellation = multi_patch_tessellation(sizes, seed=seed)
    return attach_attributes(
        tessellation,
        seed=seed + 1,
        spatial_rounds=spatial_rounds,
        cross_correlation=cross_correlation,
    )
