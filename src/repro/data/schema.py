"""Dataset schema constants — the paper's evaluation attributes.

All evaluation datasets carry the same four 2010-US-census attributes
(Section VII-A, Table II):

- ``POP16UP``   — population aged 16+, the MIN-constraint attribute;
- ``EMPLOYED``  — employed population, the AVG-constraint attribute;
- ``TOTALPOP``  — total population, the SUM-constraint attribute;
- ``HOUSEHOLDS``— number of households, the dissimilarity attribute.

The marginal distributions used by the synthetic generator are
calibrated to quantiles the paper itself reports (see DESIGN.md §3):
Table III pins three points of the POP16UP CDF, and Figure 8 plus the
§VII-B2 narrative pin the EMPLOYED distribution (positively skewed,
most values below 4 000, maximum 6 149, median slightly below 2 000).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.constraints import (
    Constraint,
    avg_constraint,
    min_constraint,
    sum_constraint,
)

__all__ = [
    "POP16UP",
    "EMPLOYED",
    "TOTALPOP",
    "HOUSEHOLDS",
    "ATTRIBUTE_NAMES",
    "DISSIMILARITY_ATTRIBUTE",
    "AttributeSpec",
    "ATTRIBUTE_SPECS",
    "EMPLOYED_CAP",
    "default_min_constraint",
    "default_avg_constraint",
    "default_sum_constraint",
    "default_constraints",
]

POP16UP = "POP16UP"
EMPLOYED = "EMPLOYED"
TOTALPOP = "TOTALPOP"
HOUSEHOLDS = "HOUSEHOLDS"

ATTRIBUTE_NAMES = (POP16UP, EMPLOYED, TOTALPOP, HOUSEHOLDS)
DISSIMILARITY_ATTRIBUTE = HOUSEHOLDS

EMPLOYED_CAP = 6149.0
"""Maximum EMPLOYED value observed in the paper's default dataset
(Figure 8)."""


@dataclass(frozen=True)
class AttributeSpec:
    """Lognormal marginal for one synthetic attribute.

    ``value = exp(mu + sigma * z)`` for a standard-normal score ``z``.
    """

    name: str
    mu: float
    sigma: float
    cap: float = math.inf

    def quantile(self, z: float) -> float:
        """Value at the standard-normal score *z*."""
        return min(math.exp(self.mu + self.sigma * z), self.cap)


# Calibration (DESIGN.md §3): POP16UP from Table III's implied CDF;
# EMPLOYED from Figure 8.
ATTRIBUTE_SPECS = {
    POP16UP: AttributeSpec(POP16UP, mu=8.05, sigma=0.37),
    EMPLOYED: AttributeSpec(EMPLOYED, mu=7.55, sigma=0.45, cap=EMPLOYED_CAP),
}

POP16UP_SHARE_OF_TOTAL = 0.78
"""POP16UP ≈ 78 % of TOTALPOP (US census tract-level ratio)."""

PERSONS_PER_HOUSEHOLD = 2.7
"""HOUSEHOLDS ≈ TOTALPOP / 2.7 (US census average household size)."""


def default_min_constraint() -> Constraint:
    """Table II default: ``MIN(POP16UP) ≤ 3000``."""
    return min_constraint(POP16UP, upper=3000)


def default_avg_constraint() -> Constraint:
    """Table II default: ``AVG(EMPLOYED) ∈ [1500, 3500]``."""
    return avg_constraint(EMPLOYED, 1500, 3500)


def default_sum_constraint() -> Constraint:
    """Table II default: ``SUM(TOTALPOP) ≥ 20000``."""
    return sum_constraint(TOTALPOP, lower=20000)


def default_constraints() -> tuple[Constraint, Constraint, Constraint]:
    """All three Table II defaults (the MAS combination)."""
    return (
        default_min_constraint(),
        default_avg_constraint(),
        default_sum_constraint(),
    )
