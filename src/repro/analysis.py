"""Post-hoc analysis of regionalization results.

The applications the paper motivates (epidemic analysis, population-
growth studies, districting) do not stop at the partition — analysts
profile the regions, check the spatial structure of the attributes and
compare alternative solutions. This module provides those tools:

- :func:`region_profile` — per-region aggregate table;
- :func:`partition_quality` — headline quality measures (p,
  heterogeneity, size stats, unassigned fraction, compactness);
- :func:`morans_i` — global Moran's I spatial autocorrelation of an
  attribute under binary contiguity weights (used to verify that the
  synthetic data carries census-like spatial structure);
- :func:`rand_index` / :func:`adjusted_rand_index` — agreement between
  two partitions (e.g. two seeds, or FaCT vs the max-p baseline).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from .core.area import AreaCollection
from .core.heterogeneity import region_heterogeneity
from .core.partition import Partition
from .exceptions import InvalidAreaError

__all__ = [
    "region_profile",
    "partition_quality",
    "morans_i",
    "local_morans_i",
    "rand_index",
    "adjusted_rand_index",
]


def region_profile(
    collection: AreaCollection,
    partition: Partition,
    attributes: Sequence[str] | None = None,
) -> list[dict[str, float]]:
    """Per-region aggregate table.

    Returns one dict per region with ``region``, ``n_areas``,
    ``heterogeneity`` and, for every requested attribute, its ``MIN``/
    ``MAX``/``AVG``/``SUM`` over the region (keys like
    ``"SUM(TOTALPOP)"``). Attributes default to all of them.
    """
    names = (
        tuple(attributes)
        if attributes is not None
        else tuple(sorted(collection.attribute_names))
    )
    for name in names:
        if name not in collection.attribute_names:
            raise InvalidAreaError(f"unknown attribute {name!r}")
    rows: list[dict[str, float]] = []
    for index, members in enumerate(partition.regions):
        row: dict[str, float] = {
            "region": index,
            "n_areas": len(members),
            "heterogeneity": region_heterogeneity(collection, members),
        }
        for name in names:
            values = [collection.attribute(i, name) for i in members]
            row[f"MIN({name})"] = min(values)
            row[f"MAX({name})"] = max(values)
            row[f"AVG({name})"] = sum(values) / len(values)
            row[f"SUM({name})"] = sum(values)
        rows.append(row)
    return rows


def partition_quality(
    collection: AreaCollection, partition: Partition
) -> dict[str, float]:
    """Headline quality measures of one partition.

    ``compactness`` (mean within-region centroid dispersion) is only
    included when every area carries a polygon.
    """
    sizes = partition.region_sizes()
    quality: dict[str, float] = {
        "p": float(partition.p),
        "heterogeneity": partition.heterogeneity(collection),
        "n_unassigned": float(len(partition.unassigned)),
        "unassigned_fraction": len(partition.unassigned) / len(collection),
        "size_min": float(min(sizes, default=0)),
        "size_max": float(max(sizes, default=0)),
        "size_mean": (sum(sizes) / len(sizes)) if sizes else 0.0,
    }
    if all(collection.area(i).polygon is not None for i in collection.ids):
        total_dispersion = 0.0
        for members in partition.regions:
            points = [collection.area(i).polygon.centroid for i in members]
            mean_x = sum(p.x for p in points) / len(points)
            mean_y = sum(p.y for p in points) / len(points)
            total_dispersion += sum(
                (p.x - mean_x) ** 2 + (p.y - mean_y) ** 2 for p in points
            )
        quality["compactness"] = (
            total_dispersion / partition.p if partition.p else 0.0
        )
    return quality


def morans_i(collection: AreaCollection, attribute: str) -> float:
    """Global Moran's I of one attribute under binary rook weights.

    ``I = (n / S0) * (Σ_ij w_ij z_i z_j) / (Σ_i z_i²)`` with
    ``z_i = x_i - mean(x)`` and ``S0 = Σ_ij w_ij``. Values near 0 mean
    no spatial structure; census attributes are strongly positive.

    Raises for datasets without any adjacency (S0 = 0 is undefined).
    """
    values = collection.attribute_values(attribute)
    n = len(values)
    mean = sum(values.values()) / n
    centered = {i: v - mean for i, v in values.items()}
    denominator = sum(z * z for z in centered.values())
    if denominator == 0:
        return 0.0
    cross = 0.0
    s0 = 0
    for area_id, z in centered.items():
        for neighbor in collection.neighbors(area_id):
            cross += z * centered[neighbor]
            s0 += 1
    if s0 == 0:
        raise InvalidAreaError(
            "Moran's I is undefined on a dataset with no adjacencies"
        )
    return (n / s0) * (cross / denominator)


def local_morans_i(
    collection: AreaCollection, attribute: str
) -> dict[int, float]:
    """Local Moran's I (LISA) per area, row-standardized weights.

    ``I_i = z_i / m2 * mean_{j in N(i)} z_j`` with ``z`` the centered
    attribute and ``m2`` its mean squared deviation. Positive values
    mark areas inside high-high/low-low clusters — the spatial
    structure that makes regionalization meaningful; strong negatives
    mark spatial outliers. Areas without neighbors get 0.
    """
    values = collection.attribute_values(attribute)
    n = len(values)
    mean = sum(values.values()) / n
    centered = {i: v - mean for i, v in values.items()}
    m2 = sum(z * z for z in centered.values()) / n
    if m2 == 0:
        return {i: 0.0 for i in values}
    result: dict[int, float] = {}
    for area_id, z in centered.items():
        neighbors = collection.neighbors(area_id)
        if not neighbors:
            result[area_id] = 0.0
            continue
        lag = sum(centered[j] for j in neighbors) / len(neighbors)
        result[area_id] = (z / m2) * lag
    return result


def _pair_counts(a: Partition, b: Partition) -> tuple[int, int, int, int]:
    """Contingency pair counts over areas assigned in *both* partitions."""
    labels_a = a.labels()
    labels_b = b.labels()
    common = [
        area_id
        for area_id in labels_a
        if labels_a[area_id] >= 0
        and labels_b.get(area_id, -1) >= 0
    ]
    if len(common) < 2:
        raise InvalidAreaError(
            "partition comparison needs at least two commonly-assigned areas"
        )
    same_same = same_diff = diff_same = diff_diff = 0
    for i in range(len(common)):
        for j in range(i + 1, len(common)):
            in_a = labels_a[common[i]] == labels_a[common[j]]
            in_b = labels_b[common[i]] == labels_b[common[j]]
            if in_a and in_b:
                same_same += 1
            elif in_a:
                same_diff += 1
            elif in_b:
                diff_same += 1
            else:
                diff_diff += 1
    return same_same, same_diff, diff_same, diff_diff


def rand_index(a: Partition, b: Partition) -> float:
    """Rand index in [0, 1]: the fraction of area pairs on which the
    two partitions agree (both together or both apart). Computed over
    areas assigned in both partitions."""
    ss, sd, ds, dd = _pair_counts(a, b)
    return (ss + dd) / (ss + sd + ds + dd)


def adjusted_rand_index(a: Partition, b: Partition) -> float:
    """Adjusted Rand index: 1 for identical partitions, ~0 for random
    agreement (can be negative). Computed over areas assigned in both
    partitions via the pair-counting form."""
    ss, sd, ds, dd = _pair_counts(a, b)
    total = ss + sd + ds + dd
    expected = (ss + sd) * (ss + ds) / total
    maximum = ((ss + sd) + (ss + ds)) / 2.0
    if maximum == expected:
        return 1.0 if sd == 0 and ds == 0 else 0.0
    return (ss - expected) / (maximum - expected)
