"""Preflight — lint, triage and diagnose a problem *before* solving.

Real geographies have islands, holes, NaN attributes and constraint
sets that are provably unsatisfiable before a single region is grown.
This module is the gate every entry point (library
:meth:`repro.fact.FaCT.solve`, the CLI, the service's submit path)
runs before committing solver budget. It produces a structured
:class:`PreflightReport` of :class:`Finding`\\ s — each with a stable
machine-readable ``code``, a severity, the offending area ids and the
relevant numbers — instead of a crash or a burned budget.

Three layers, cheapest first:

1. **Raw-input lint** (:func:`lint_rows`) — validates attribute rows
   and adjacency *before* an :class:`~repro.core.area.AreaCollection`
   is built (the collection constructor hard-raises on the same
   defects; the lint reports them all at once, with ids).
2. **Structure scan** (:func:`scan_structure`) — connected components
   of the contiguity graph; islands and isolated areas become findings
   (and first-class solvable scenarios via
   ``FaCTConfig(decompose_components=True)``), not crashes.
3. **Infeasibility diagnosis** (:func:`run_preflight`) — cheap
   relaxation bounds per enriched constraint, extending the Phase-1
   scan of :mod:`repro.fact.feasibility`: global bounds come from its
   :class:`~repro.fact.feasibility.ConstraintDiagnostic` entries, and
   per-component bounds (can *this* island carry a valid region at
   all?) are added on top. A provable verdict carries per-constraint
   slack/deficit numbers.

Finding-code taxonomy (stable public contract — never rename):

========================== ======== =================================
code                       severity meaning
========================== ======== =================================
``duplicate-area-id``      error    same id on several rows
``non-numeric-attribute``  error    attribute not coercible to float
``non-finite-attribute``   error    NaN/±inf attribute value
``missing-attribute``      error    row lacks an attribute others have
``self-loop``              error    area adjacent to itself
``unknown-adjacency-id``   error    adjacency names a missing area
``asymmetric-adjacency``   error    i→j without j→i
``negative-weight``        error    negative adjacency weight
``non-finite-weight``      error    NaN/±inf adjacency weight
``disconnected-geography`` warning  >1 connected component
``isolated-area``          warning  single-vertex components
``infeasible-*``           error    proven by a relaxation bound (see
                                    :mod:`repro.fact.feasibility` for
                                    the per-constraint variants)
``avg-outside-range``      (both)   Theorem-3 AVG condition
``all-areas-invalid``      error    filtration removes everything
``no-seed-area``           error    no valid seed for MIN/MAX
``heavy-filtration``       warning  some areas filtered to U_0
``component-sum-deficit``  warning  island can't reach a SUM lower
``component-count-deficit`` warning island smaller than COUNT lower
``component-no-seed``      warning  island has no seed area
``infeasible-components``  error    *no* component can host a region
========================== ======== =================================
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass, field

from .exceptions import InfeasibleProblemError

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "PreflightReport",
    "build_report",
    "component_findings",
    "lint_rows",
    "run_preflight",
    "scan_structure",
]

ERROR = "error"
WARNING = "warning"

# Cap per-finding id lists so a 50k-area defect stays readable.
_MAX_IDS = 20

PREFLIGHT_FORMAT = "repro-preflight/1"


def _sample(ids) -> tuple[int, ...]:
    return tuple(sorted(ids)[:_MAX_IDS])


@dataclass(frozen=True)
class Finding:
    """One preflight defect or signal.

    Attributes
    ----------
    code:
        Stable kebab-case identifier from the module taxonomy.
    severity:
        ``"error"`` (input must be fixed / problem is unsolvable) or
        ``"warning"`` (solvable, but degenerate — e.g. islands).
    message:
        Human-readable explanation.
    ids:
        Offending area ids (a sorted sample of at most 20).
    data:
        Machine-readable numbers — slack/deficit per constraint,
        component sizes, defect counts.
    """

    code: str
    severity: str
    message: str
    ids: tuple[int, ...] = ()
    data: dict = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "ids": list(self.ids),
            "data": dict(self.data),
        }


@dataclass(frozen=True)
class PreflightReport:
    """Structured outcome of the preflight gate.

    Attributes
    ----------
    findings:
        All findings, lint first, then structure, then feasibility.
    components:
        Connected components of the contiguity graph as sorted id
        tuples, ordered by smallest member id — the decomposition
        order used by ``decompose_components`` solves.
    feasibility:
        The Phase-1 :class:`~repro.fact.feasibility.FeasibilityReport`
        when constraints were checked, else ``None``.
    """

    findings: tuple[Finding, ...] = ()
    components: tuple[tuple[int, ...], ...] = ()
    feasibility: object | None = None

    @property
    def n_components(self) -> int:
        return len(self.components)

    @property
    def errors(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == ERROR)

    @property
    def warnings(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == WARNING)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was recorded."""
        return not self.errors

    def finding(self, code: str) -> Finding | None:
        """First finding with *code*, or None."""
        for entry in self.findings:
            if entry.code == code:
                return entry
        return None

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form (the CI artifact / service payload shape)."""
        return {
            "format": PREFLIGHT_FORMAT,
            "ok": self.ok,
            "n_components": self.n_components,
            "component_sizes": [len(c) for c in self.components],
            "findings": [f.as_dict() for f in self.findings],
            "feasibility": (
                None
                if self.feasibility is None
                else self.feasibility.summary()
            ),
        }

    def raise_if_failed(self) -> None:
        """Raise :class:`InfeasibleProblemError` on any error finding.

        The error carries this report (``preflight``) and the Phase-1
        report (``report``) so callers get the slack numbers, not just
        prose.
        """
        errors = self.errors
        if not errors:
            return
        raise InfeasibleProblemError(
            "; ".join(f.message for f in errors),
            report=self.feasibility,
            preflight=self,
        )


# ----------------------------------------------------------------------
# layer 1 — raw-input lint
# ----------------------------------------------------------------------
def lint_rows(rows, adjacency=None) -> tuple[Finding, ...]:
    """Lint raw attribute rows (and optional adjacency) pre-collection.

    Parameters
    ----------
    rows:
        ``{area_id: {attribute: value}}`` mapping, or an iterable of
        ``(area_id, {attribute: value})`` pairs (the pair form can
        express duplicate ids, which a dict cannot).
    adjacency:
        Optional ``{area_id: neighbors}`` where ``neighbors`` is an
        iterable of ids or a ``{neighbor_id: weight}`` mapping.

    Returns one aggregated :class:`Finding` per defect code, so a file
    with 400 NaN cells yields one ``non-finite-attribute`` finding
    with a 20-id sample and a total count — not 400 findings.
    """
    items = list(rows.items()) if isinstance(rows, Mapping) else list(rows)
    findings: list[Finding] = []

    def report(code, message, ids, **data):
        findings.append(
            Finding(
                code=code,
                severity=ERROR,
                message=message,
                ids=_sample(ids),
                data={"count": len(ids), **data},
            )
        )

    seen: dict[int, Mapping] = {}
    duplicates: set[int] = set()
    for area_id, attributes in items:
        if area_id in seen:
            duplicates.add(area_id)
        else:
            seen[area_id] = attributes
    if duplicates:
        report(
            "duplicate-area-id",
            f"{len(duplicates)} area id(s) appear on more than one row",
            duplicates,
        )

    names = sorted({name for attrs in seen.values() for name in attrs})
    missing: set[int] = set()
    non_numeric: set[int] = set()
    non_finite: set[int] = set()
    bad_names: set[str] = set()
    for area_id, attributes in seen.items():
        for name in names:
            if name not in attributes:
                missing.add(area_id)
                bad_names.add(name)
                continue
            try:
                value = float(attributes[name])
            except (TypeError, ValueError):
                non_numeric.add(area_id)
                bad_names.add(name)
                continue
            if not math.isfinite(value):
                non_finite.add(area_id)
                bad_names.add(name)
    if missing:
        report(
            "missing-attribute",
            f"{len(missing)} area(s) lack attribute(s) present on other "
            "rows",
            missing,
            attributes=sorted(bad_names),
        )
    if non_numeric:
        report(
            "non-numeric-attribute",
            f"{len(non_numeric)} area(s) carry attribute values that are "
            "not coercible to float",
            non_numeric,
            attributes=sorted(bad_names),
        )
    if non_finite:
        report(
            "non-finite-attribute",
            f"{len(non_finite)} area(s) carry NaN or infinite attribute "
            "values",
            non_finite,
            attributes=sorted(bad_names),
        )

    if adjacency is not None:
        self_loops: set[int] = set()
        unknown: set[int] = set()
        asymmetric: set[int] = set()
        negative: set[int] = set()
        bad_weight: set[int] = set()

        def neighbor_ids(value):
            return value.keys() if isinstance(value, Mapping) else value

        for area_id, neighbors in adjacency.items():
            weighted = isinstance(neighbors, Mapping)
            for neighbor in neighbor_ids(neighbors):
                if neighbor == area_id:
                    self_loops.add(area_id)
                if neighbor not in seen:
                    unknown.add(area_id)
                    continue
                reverse = adjacency.get(neighbor, ())
                if area_id not in set(neighbor_ids(reverse)):
                    asymmetric.add(area_id)
                if weighted:
                    weight = neighbors[neighbor]
                    try:
                        weight = float(weight)
                    except (TypeError, ValueError):
                        bad_weight.add(area_id)
                        continue
                    if not math.isfinite(weight):
                        bad_weight.add(area_id)
                    elif weight < 0:
                        negative.add(area_id)
        if self_loops:
            report(
                "self-loop",
                f"{len(self_loops)} area(s) are adjacent to themselves",
                self_loops,
            )
        if unknown:
            report(
                "unknown-adjacency-id",
                f"{len(unknown)} area(s) list neighbors that are not in "
                "the dataset",
                unknown,
            )
        if asymmetric:
            report(
                "asymmetric-adjacency",
                f"{len(asymmetric)} area(s) have a neighbor without the "
                "reverse edge",
                asymmetric,
            )
        if bad_weight:
            report(
                "non-finite-weight",
                f"{len(bad_weight)} area(s) have NaN/infinite or "
                "non-numeric adjacency weights",
                bad_weight,
            )
        if negative:
            report(
                "negative-weight",
                f"{len(negative)} area(s) have negative adjacency weights",
                negative,
            )

    return tuple(findings)


# ----------------------------------------------------------------------
# layer 2 — structure scan
# ----------------------------------------------------------------------
def scan_structure(collection, budget=None):
    """Connected-component scan + structure findings.

    Returns ``(components, findings)`` where *components* are sorted
    id tuples ordered by smallest member id (the canonical
    decomposition order). Fires the ``preflight.components`` and
    ``preflight.lint`` fault checkpoints; like the feasibility scan, a
    deadline or cancellation observed here is swallowed — the scan is
    already complete and the exhausted budget is re-observed by the
    construction phase's first checkpoint.
    """
    components = tuple(
        tuple(sorted(component))
        for component in sorted(collection.connected_components(), key=min)
    )
    _checkpoint("preflight.components", budget)

    findings: list[Finding] = []
    if len(components) > 1:
        findings.append(
            Finding(
                code="disconnected-geography",
                severity=WARNING,
                message=(
                    f"the contiguity graph has {len(components)} connected "
                    "components; regions cannot span components — enable "
                    "decompose_components to solve each island separately"
                ),
                ids=_sample(min(c) for c in components),
                data={
                    "n_components": len(components),
                    "sizes": [len(c) for c in components],
                },
            )
        )
        isolated = [c[0] for c in components if len(c) == 1]
        if isolated:
            findings.append(
                Finding(
                    code="isolated-area",
                    severity=WARNING,
                    message=(
                        f"{len(isolated)} area(s) have no neighbors and can "
                        "only ever form singleton regions"
                    ),
                    ids=_sample(isolated),
                    data={"count": len(isolated)},
                )
            )
    _checkpoint("preflight.lint", budget)
    return components, tuple(findings)


def _checkpoint(name: str, budget) -> None:
    from .runtime.budget import Interrupted
    from .runtime.faults import fire_checkpoint

    if budget is None:
        fire_checkpoint(name)
        return
    try:
        budget.checkpoint(name)
    except Interrupted:
        pass


# ----------------------------------------------------------------------
# layer 3 — per-component infeasibility diagnosis
# ----------------------------------------------------------------------
def component_findings(
    collection, constraints, components, feasibility
) -> tuple[Finding, ...]:
    """Relaxation bounds per connected component.

    A region is contiguous, so it lives entirely inside one component
    and contains only valid (non-filtered) areas. A component whose
    valid mass cannot reach a SUM lower bound, whose valid-area count
    is below a COUNT lower bound, or which holds no seed area for the
    MIN/MAX constraints therefore cannot host *any* region — a
    ``component-*`` warning. When **every** component is blocked the
    problem is provably infeasible (``infeasible-components``): this
    is strictly stronger than the global Phase-1 bounds, which sum
    mass across components a region can never straddle.
    """
    findings: list[Finding] = []
    invalid = feasibility.invalid_areas
    seeds = feasibility.seed_areas
    has_extrema = bool(constraints.extrema)
    sum_lowers = [
        c for c in constraints.sums if c.lower > -math.inf and c.lower > 0
    ]
    count_lowers = [c for c in constraints.counts if c.lower > 1]

    blocked = 0
    for index, members in enumerate(components):
        valid = [a for a in members if a not in invalid]
        causes = []
        for c in sum_lowers:
            available = math.fsum(
                collection.attribute(a, c.attribute) for a in valid
            )
            if available < c.lower:
                causes.append(
                    Finding(
                        code="component-sum-deficit",
                        severity=WARNING,
                        message=(
                            f"component {index} ({len(members)} areas) has "
                            f"only {available:g} of {c.attribute} available "
                            f"— {c.lower - available:g} short of {c}; no "
                            "region can form there"
                        ),
                        ids=_sample(members),
                        data={
                            "component": index,
                            "n_areas": len(members),
                            "constraint": str(c),
                            "bound": c.lower,
                            "available": available,
                            "deficit": c.lower - available,
                        },
                    )
                )
        for c in count_lowers:
            if len(valid) < c.lower:
                causes.append(
                    Finding(
                        code="component-count-deficit",
                        severity=WARNING,
                        message=(
                            f"component {index} has {len(valid)} valid "
                            f"area(s), below the lower bound of {c}; no "
                            "region can form there"
                        ),
                        ids=_sample(members),
                        data={
                            "component": index,
                            "n_areas": len(members),
                            "constraint": str(c),
                            "bound": c.lower,
                            "available": float(len(valid)),
                            "deficit": c.lower - len(valid),
                        },
                    )
                )
        if has_extrema and not any(a in seeds for a in valid):
            causes.append(
                Finding(
                    code="component-no-seed",
                    severity=WARNING,
                    message=(
                        f"component {index} ({len(members)} areas) holds no "
                        "seed area for the MIN/MAX constraints; no region "
                        "can form there"
                    ),
                    ids=_sample(members),
                    data={"component": index, "n_areas": len(members)},
                )
            )
        if causes:
            blocked += 1
            findings.extend(causes)

    if components and blocked == len(components):
        findings.append(
            Finding(
                code="infeasible-components",
                severity=ERROR,
                message=(
                    "no connected component can host a valid region (see "
                    "component-* findings for per-constraint deficits); "
                    "the problem is infeasible"
                ),
                data={
                    "n_components": len(components),
                    "n_blocked": blocked,
                },
            )
        )
    return tuple(findings)


def _feasibility_findings(feasibility) -> tuple[Finding, ...]:
    """Lift Phase-1 structured diagnostics into preflight findings."""
    findings = []
    for diag in feasibility.diagnostics:
        data = dict(diag.data)
        if diag.constraint:
            data["constraint"] = diag.constraint
        findings.append(
            Finding(
                code=diag.code,
                severity=diag.severity,
                message=diag.message,
                data=data,
            )
        )
    return tuple(findings)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def build_report(
    collection,
    constraints,
    components,
    structure_findings,
    feasibility,
) -> PreflightReport:
    """Assemble a :class:`PreflightReport` from already-computed parts.

    The solver uses this after running :func:`scan_structure` and the
    Phase-1 scan under its own telemetry spans; :func:`run_preflight`
    is the one-call form for everyone else.
    """
    all_findings = list(structure_findings)
    if feasibility is not None:
        all_findings.extend(_feasibility_findings(feasibility))
        if constraints is not None:
            all_findings.extend(
                component_findings(
                    collection, constraints, components, feasibility
                )
            )
    return PreflightReport(
        findings=tuple(all_findings),
        components=components,
        feasibility=feasibility,
    )


def run_preflight(
    collection, constraints=None, config=None, budget=None, feasibility=None
) -> PreflightReport:
    """Run the full preflight gate over a built collection.

    Structure scan always; constraint diagnosis when *constraints* is
    given (*feasibility* may pass in an already-computed Phase-1
    report — the solver does, so the scan is not repeated). Returns
    the combined :class:`PreflightReport`; call
    :meth:`PreflightReport.raise_if_failed` to enforce it.
    """
    components, findings = scan_structure(collection, budget=budget)
    if constraints is not None and feasibility is None:
        from .fact.feasibility import check_feasibility

        feasibility = check_feasibility(
            collection, constraints, config, budget=budget
        )
    return build_report(
        collection, constraints, components, findings, feasibility
    )
