"""Simple polygons — the area boundaries ``b_i``.

A :class:`Polygon` is a single closed ring of vertices (no holes; the
tessellations we generate, and census tracts for practical purposes,
are simple rings). Provides the measures and predicates needed by the
data layer: area, centroid, point containment and canonical edge
extraction for rook/queen contiguity detection.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from ..exceptions import GeometryError
from .bbox import BBox
from .point import Point

__all__ = ["Polygon"]


class Polygon:
    """An immutable simple polygon defined by its vertex ring.

    The ring is stored counter-clockwise without a repeated closing
    vertex; constructors accept either orientation and an optionally
    repeated first vertex.
    """

    __slots__ = ("_vertices", "_bbox")

    def __init__(self, vertices: Iterable[Point | Sequence[float]]):
        ring: list[Point] = []
        for vertex in vertices:
            if not isinstance(vertex, Point):
                vertex = Point(vertex[0], vertex[1])
            ring.append(vertex)
        if len(ring) >= 2 and ring[0] == ring[-1]:
            ring.pop()  # drop repeated closing vertex
        if len(ring) < 3:
            raise GeometryError(
                f"a polygon needs at least 3 distinct vertices, got {len(ring)}"
            )
        if _signed_area(ring) < 0:
            ring.reverse()  # normalize to counter-clockwise
        if _signed_area(ring) == 0:
            raise GeometryError("degenerate polygon with zero area")
        self._vertices: tuple[Point, ...] = tuple(ring)
        self._bbox = BBox.of_points(ring)

    # ------------------------------------------------------------------
    @property
    def vertices(self) -> tuple[Point, ...]:
        """The counter-clockwise vertex ring (no repeated closer)."""
        return self._vertices

    @property
    def bbox(self) -> BBox:
        """The polygon's bounding box."""
        return self._bbox

    def __len__(self) -> int:
        return len(self._vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self._vertices == other._vertices

    def __hash__(self) -> int:
        return hash(self._vertices)

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------
    @property
    def area(self) -> float:
        """Enclosed area (shoelace formula; always positive)."""
        return _signed_area(self._vertices)

    @property
    def perimeter(self) -> float:
        """Total boundary length."""
        total = 0.0
        for a, b in self.edges():
            total += a.distance_to(b)
        return total

    @property
    def centroid(self) -> Point:
        """Area-weighted centroid."""
        area2 = 0.0
        cx = 0.0
        cy = 0.0
        ring = self._vertices
        for i in range(len(ring)):
            a = ring[i]
            b = ring[(i + 1) % len(ring)]
            cross = a.x * b.y - b.x * a.y
            area2 += cross
            cx += (a.x + b.x) * cross
            cy += (a.y + b.y) * cross
        return Point(cx / (3 * area2), cy / (3 * area2))

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[tuple[Point, Point]]:
        """Yield the boundary segments ``(v_k, v_{k+1})``."""
        ring = self._vertices
        for i in range(len(ring)):
            yield ring[i], ring[(i + 1) % len(ring)]

    def canonical_edges(self, digits: int = 9) -> frozenset[tuple]:
        """Orientation-independent hashable edge keys.

        Two polygons of a tessellation are rook neighbors exactly when
        they share at least one canonical edge.
        """
        keys = set()
        for a, b in self.edges():
            ka, kb = a.rounded(digits), b.rounded(digits)
            keys.add((ka, kb) if ka <= kb else (kb, ka))
        return frozenset(keys)

    def canonical_vertices(self, digits: int = 9) -> frozenset[tuple]:
        """Hashable vertex keys (queen contiguity: shared vertex)."""
        return frozenset(v.rounded(digits) for v in self._vertices)

    def contains_point(self, point: Point) -> bool:
        """Ray-casting point-in-polygon test (boundary counts inside)."""
        if not self._bbox.contains_point(point):
            return False
        inside = False
        ring = self._vertices
        for i in range(len(ring)):
            a = ring[i]
            b = ring[(i + 1) % len(ring)]
            if _on_segment(point, a, b):
                return True
            if (a.y > point.y) != (b.y > point.y):
                x_cross = a.x + (point.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if point.x < x_cross:
                    inside = not inside
        return inside

    def translated(self, dx: float, dy: float) -> "Polygon":
        """A copy shifted by ``(dx, dy)``."""
        return Polygon(v.translated(dx, dy) for v in self._vertices)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Polygon(n_vertices={len(self._vertices)}, area={self.area:.3g})"


def _signed_area(ring: Sequence[Point]) -> float:
    """Shoelace signed area; positive for counter-clockwise rings."""
    total = 0.0
    for i in range(len(ring)):
        a = ring[i]
        b = ring[(i + 1) % len(ring)]
        total += a.x * b.y - b.x * a.y
    return total / 2.0


def _on_segment(p: Point, a: Point, b: Point, eps: float = 1e-12) -> bool:
    """True when *p* lies on segment ``ab`` (within *eps* of collinear)."""
    cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x)
    if abs(cross) > eps * max(1.0, abs(b.x - a.x) + abs(b.y - a.y)):
        return False
    dot = (p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)
    squared_len = (b.x - a.x) ** 2 + (b.y - a.y) ** 2
    return -eps <= dot <= squared_len + eps
