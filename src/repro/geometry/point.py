"""2-D points for the geometry substrate.

The paper's areas are census-tract polygons; the solvers themselves
only ever consume the contiguity graph, so this module provides just
what dataset construction, GeoJSON I/O and adjacency detection need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Point"]


@dataclass(frozen=True, order=True)
class Point:
    """An immutable 2-D point with float coordinates."""

    x: float
    y: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", float(self.x))
        object.__setattr__(self, "y", float(self.y))

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to *other*."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """Midpoint of the segment to *other*."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """This point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def rounded(self, digits: int = 9) -> tuple[float, float]:
        """Coordinates rounded for hashing/canonicalisation.

        Used when matching shared polygon edges: coordinates coming
        from two different polygons of the same tessellation agree up
        to float noise, so rounding to *digits* makes them hashable.
        """
        return (round(self.x, digits), round(self.y, digits))

    def as_tuple(self) -> tuple[float, float]:
        """The raw ``(x, y)`` tuple."""
        return (self.x, self.y)
