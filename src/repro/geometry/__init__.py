"""Pure-Python geometry substrate: points, boxes, polygons and
tessellations used to build and describe spatial datasets."""

from .bbox import BBox
from .point import Point
from .polygon import Polygon
from .tessellation import (
    Tessellation,
    grid_tessellation,
    hex_tessellation,
    multi_patch_tessellation,
    voronoi_tessellation,
)

__all__ = [
    "BBox",
    "Point",
    "Polygon",
    "Tessellation",
    "grid_tessellation",
    "hex_tessellation",
    "multi_patch_tessellation",
    "voronoi_tessellation",
]
