"""Tessellations — synthetic stand-ins for census-tract shapefiles.

The paper evaluates on US census tracts (irregular planar polygons).
We generate matching topology two ways:

- :func:`grid_tessellation` — a regular lattice; predictable, great for
  unit tests and worked examples (the paper's own running example is a
  3×3 grid).
- :func:`voronoi_tessellation` — a bounded Voronoi diagram of random
  seed points, optionally Lloyd-relaxed. Census tracts are effectively
  a centroidal Voronoi-like tessellation: irregular cells, average rook
  degree ≈ 6.

Bounded Voronoi cells are obtained with the reflection trick: every
seed is mirrored across the four sides of the bounding box, so the
cells of the original seeds are finite and clip exactly to the box.
Rook adjacency comes directly from scipy's ``ridge_points``.

:func:`multi_patch_tessellation` lays several tessellations side by
side with gaps, producing a dataset with multiple connected components
(the multi-state datasets of Table I; FaCT explicitly supports this
while classic max-p formulations do not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.spatial import Voronoi

from ..exceptions import GeometryError
from .bbox import BBox
from .point import Point
from .polygon import Polygon

__all__ = [
    "Tessellation",
    "grid_tessellation",
    "hex_tessellation",
    "voronoi_tessellation",
    "multi_patch_tessellation",
]


@dataclass(frozen=True)
class Tessellation:
    """A set of polygons plus their rook adjacency.

    ``polygons[i]`` is the cell of unit ``i``; ``adjacency[i]`` is the
    set of rook neighbors of ``i``. Indices are dense 0..n-1.
    """

    polygons: tuple[Polygon, ...]
    adjacency: dict[int, frozenset[int]]
    bbox: BBox

    def __post_init__(self) -> None:
        if len(self.polygons) != len(self.adjacency):
            raise GeometryError(
                "tessellation polygon count and adjacency size differ"
            )

    def __len__(self) -> int:
        return len(self.polygons)

    @property
    def n_units(self) -> int:
        """Number of cells."""
        return len(self.polygons)

    def centroids(self) -> list[Point]:
        """Centroid of every cell, by index."""
        return [polygon.centroid for polygon in self.polygons]

    def translated(self, dx: float, dy: float) -> "Tessellation":
        """A copy shifted by ``(dx, dy)`` (used to lay out patches)."""
        return Tessellation(
            tuple(p.translated(dx, dy) for p in self.polygons),
            dict(self.adjacency),
            BBox(
                self.bbox.min_x + dx,
                self.bbox.min_y + dy,
                self.bbox.max_x + dx,
                self.bbox.max_y + dy,
            ),
        )


def grid_tessellation(rows: int, cols: int, cell_size: float = 1.0) -> Tessellation:
    """A ``rows × cols`` lattice of unit squares with rook adjacency.

    Cell ``(r, c)`` has index ``r * cols + c``; row 0 is at the bottom.
    """
    if rows < 1 or cols < 1:
        raise GeometryError("grid tessellation needs rows >= 1 and cols >= 1")
    polygons: list[Polygon] = []
    adjacency: dict[int, frozenset[int]] = {}
    for r in range(rows):
        for c in range(cols):
            x0, y0 = c * cell_size, r * cell_size
            polygons.append(
                Polygon(
                    [
                        Point(x0, y0),
                        Point(x0 + cell_size, y0),
                        Point(x0 + cell_size, y0 + cell_size),
                        Point(x0, y0 + cell_size),
                    ]
                )
            )
            index = r * cols + c
            neighbors = set()
            if r > 0:
                neighbors.add(index - cols)
            if r < rows - 1:
                neighbors.add(index + cols)
            if c > 0:
                neighbors.add(index - 1)
            if c < cols - 1:
                neighbors.add(index + 1)
            adjacency[index] = frozenset(neighbors)
    return Tessellation(
        tuple(polygons),
        adjacency,
        BBox(0.0, 0.0, cols * cell_size, rows * cell_size),
    )


def hex_tessellation(rows: int, cols: int, size: float = 1.0) -> Tessellation:
    """A ``rows × cols`` pointy-top hexagon lattice (odd-row offset).

    Hexagonal lattices are a standard alternative to square grids in
    spatial analysis: every interior cell has exactly six neighbors
    and rook/queen contiguity coincide (hexagons never meet at a
    single point). Cell ``(r, c)`` has index ``r * cols + c``; odd
    rows are shifted right by half a cell width.

    *size* is the hexagon's circumradius (center to vertex).
    """
    if rows < 1 or cols < 1:
        raise GeometryError("hex tessellation needs rows >= 1 and cols >= 1")
    width = np.sqrt(3.0) * size  # flat-to-flat horizontal extent
    vertical_step = 1.5 * size

    polygons: list[Polygon] = []
    adjacency: dict[int, set[int]] = {}
    for r in range(rows):
        for c in range(cols):
            index = r * cols + c
            center_x = c * width + (width / 2 if r % 2 else 0.0) + width / 2
            center_y = r * vertical_step + size
            vertices = []
            for k in range(6):
                angle = np.pi / 180.0 * (60.0 * k - 30.0)  # pointy-top
                vertices.append(
                    Point(
                        center_x + size * float(np.cos(angle)),
                        center_y + size * float(np.sin(angle)),
                    )
                )
            polygons.append(Polygon(vertices))

            neighbors: set[int] = set()
            if c > 0:
                neighbors.add(index - 1)
            if c < cols - 1:
                neighbors.add(index + 1)
            # diagonal neighbors depend on the row parity offset
            offsets = (0, 1) if r % 2 else (-1, 0)
            for dr in (-1, 1):
                rr = r + dr
                if not 0 <= rr < rows:
                    continue
                for dc in offsets:
                    cc = c + dc
                    if 0 <= cc < cols:
                        neighbors.add(rr * cols + cc)
            adjacency[index] = neighbors

    all_points = [v for polygon in polygons for v in polygon.vertices]
    return Tessellation(
        tuple(polygons),
        {i: frozenset(n) for i, n in adjacency.items()},
        BBox.of_points(all_points),
    )


def voronoi_tessellation(
    n_units: int,
    seed: int = 0,
    bbox: BBox | None = None,
    lloyd_iterations: int = 1,
) -> Tessellation:
    """A bounded Voronoi tessellation of *n_units* random seed points.

    Parameters
    ----------
    n_units:
        Number of cells (>= 3 so the diagram is non-degenerate).
    seed:
        RNG seed; the tessellation is fully deterministic in it.
    bbox:
        Bounding box; defaults to a square whose side scales with
        ``sqrt(n_units)`` so cells keep unit-ish size at any n.
    lloyd_iterations:
        Rounds of Lloyd relaxation (seeds moved to cell centroids),
        which regularizes cell sizes the way census tracts are
        regularized by population.
    """
    if n_units < 3:
        raise GeometryError("voronoi tessellation needs at least 3 units")
    if bbox is None:
        side = float(np.sqrt(n_units))
        bbox = BBox(0.0, 0.0, side, side)
    rng = np.random.default_rng(seed)
    points = np.column_stack(
        [
            rng.uniform(bbox.min_x, bbox.max_x, size=n_units),
            rng.uniform(bbox.min_y, bbox.max_y, size=n_units),
        ]
    )
    for _ in range(max(0, lloyd_iterations)):
        diagram = _bounded_voronoi(points, bbox)
        points = np.array(
            [_cell_centroid(diagram, i) for i in range(n_units)]
        )
        points[:, 0] = points[:, 0].clip(bbox.min_x, bbox.max_x)
        points[:, 1] = points[:, 1].clip(bbox.min_y, bbox.max_y)
    diagram = _bounded_voronoi(points, bbox)

    polygons: list[Polygon] = []
    for i in range(n_units):
        region_index = diagram.point_region[i]
        vertex_indices = diagram.regions[region_index]
        if -1 in vertex_indices or not vertex_indices:
            raise GeometryError(
                f"unbounded voronoi cell for unit {i}; reflection failed"
            )
        polygons.append(
            Polygon(Point(*diagram.vertices[v]) for v in vertex_indices)
        )

    adjacency: dict[int, set[int]] = {i: set() for i in range(n_units)}
    for a, b in diagram.ridge_points:
        if a < n_units and b < n_units:
            adjacency[int(a)].add(int(b))
            adjacency[int(b)].add(int(a))
    return Tessellation(
        tuple(polygons),
        {i: frozenset(neighbors) for i, neighbors in adjacency.items()},
        bbox,
    )


def multi_patch_tessellation(
    patch_sizes: Sequence[int], seed: int = 0, gap_fraction: float = 0.25
) -> Tessellation:
    """Several Voronoi patches laid out in a row with gaps between.

    The result has ``len(patch_sizes)`` connected components — the
    synthetic analogue of the paper's multi-state datasets (Table I)
    where non-adjacent states form separate components.
    """
    if not patch_sizes:
        raise GeometryError("multi_patch_tessellation needs at least one patch")
    polygons: list[Polygon] = []
    adjacency: dict[int, frozenset[int]] = {}
    offset_x = 0.0
    max_height = 0.0
    base = 0
    for patch_index, size in enumerate(patch_sizes):
        patch = voronoi_tessellation(size, seed=seed + patch_index)
        patch = patch.translated(offset_x, 0.0)
        for local_index, polygon in enumerate(patch.polygons):
            polygons.append(polygon)
            adjacency[base + local_index] = frozenset(
                base + neighbor for neighbor in patch.adjacency[local_index]
            )
        offset_x = patch.bbox.max_x + gap_fraction * patch.bbox.width
        max_height = max(max_height, patch.bbox.max_y)
        base += size
    return Tessellation(
        tuple(polygons),
        adjacency,
        BBox(0.0, 0.0, offset_x, max_height),
    )


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------

def _bounded_voronoi(points: np.ndarray, bbox: BBox) -> Voronoi:
    """Voronoi diagram whose first ``len(points)`` cells are clipped to
    *bbox*, via reflection of all seeds across the four box sides."""
    left = points.copy()
    left[:, 0] = 2 * bbox.min_x - left[:, 0]
    right = points.copy()
    right[:, 0] = 2 * bbox.max_x - right[:, 0]
    down = points.copy()
    down[:, 1] = 2 * bbox.min_y - down[:, 1]
    up = points.copy()
    up[:, 1] = 2 * bbox.max_y - up[:, 1]
    return Voronoi(np.vstack([points, left, right, down, up]))


def _cell_centroid(diagram: Voronoi, index: int) -> tuple[float, float]:
    """Centroid of one bounded cell (for Lloyd relaxation)."""
    region_index = diagram.point_region[index]
    vertex_indices = diagram.regions[region_index]
    ring = [Point(*diagram.vertices[v]) for v in vertex_indices]
    centroid = Polygon(ring).centroid
    return (centroid.x, centroid.y)
