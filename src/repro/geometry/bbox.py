"""Axis-aligned bounding boxes.

Bounding boxes accelerate the shared-edge scan that derives contiguity
from raw polygons (only polygons with intersecting boxes can touch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..exceptions import GeometryError
from .point import Point

__all__ = ["BBox"]


@dataclass(frozen=True)
class BBox:
    """An axis-aligned rectangle ``[min_x, max_x] × [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "min_x", float(self.min_x))
        object.__setattr__(self, "min_y", float(self.min_y))
        object.__setattr__(self, "max_x", float(self.max_x))
        object.__setattr__(self, "max_y", float(self.max_y))
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise GeometryError(
                f"inverted bbox: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @classmethod
    def of_points(cls, points: Iterable[Point]) -> "BBox":
        """Smallest box containing all *points* (at least one)."""
        points = list(points)
        if not points:
            raise GeometryError("cannot build a bbox of zero points")
        return cls(
            min(p.x for p in points),
            min(p.y for p in points),
            max(p.x for p in points),
            max(p.y for p in points),
        )

    @property
    def width(self) -> float:
        """Horizontal extent."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Vertical extent."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Box area."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Box center point."""
        return Point((self.min_x + self.max_x) / 2, (self.min_y + self.max_y) / 2)

    def contains_point(self, point: Point) -> bool:
        """True when *point* lies inside or on the boundary."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def intersects(self, other: "BBox", tolerance: float = 0.0) -> bool:
        """True when the boxes overlap or touch (within *tolerance*)."""
        return not (
            self.max_x + tolerance < other.min_x
            or other.max_x + tolerance < self.min_x
            or self.max_y + tolerance < other.min_y
            or other.max_y + tolerance < self.min_y
        )

    def expanded(self, margin: float) -> "BBox":
        """A copy grown by *margin* on every side."""
        return BBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )
