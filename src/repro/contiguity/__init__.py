"""Contiguity substrate: spatial weights and graph algorithms."""

from .graph import (
    articulation_points,
    bfs_order,
    connected_components,
    is_connected,
)
from .network import (
    restrict_adjacency,
    restricted_collection,
    synthetic_road_network,
)
from .weights import (
    adjacency_to_edges,
    edges_to_adjacency,
    queen_adjacency,
    rook_adjacency,
    validate_adjacency,
)

__all__ = [
    "adjacency_to_edges",
    "articulation_points",
    "bfs_order",
    "connected_components",
    "edges_to_adjacency",
    "is_connected",
    "queen_adjacency",
    "restrict_adjacency",
    "restricted_collection",
    "rook_adjacency",
    "synthetic_road_network",
    "validate_adjacency",
]
