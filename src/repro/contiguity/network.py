"""Network-restricted contiguity — the network-max-p variant.

The paper's related work highlights variants that "use the road
network-based connectivity as an additional spatial constraint to
aggregate regions" (She, Duque & Ye, *The network-max-p-regions
model*, IJGIS 2017). Two areas that share a boundary but no road
connection (a river, a freeway wall, a mountain ridge) should not be
groupable.

This module provides that substrate:

- :func:`restrict_adjacency` — intersect a rook/queen neighbor map
  with a set of connected pairs (the road graph), yielding the
  *network contiguity* used in place of pure spatial contiguity;
- :func:`synthetic_road_network` — a synthetic road graph over a
  tessellation: a random spanning tree of the adjacency graph (every
  area reachable) plus a tunable fraction of the remaining adjacent
  pairs. ``density=1`` reproduces plain spatial contiguity;
  ``density=0`` keeps only the tree (maximally restrictive while
  still connected);
- :func:`restricted_collection` — one-call helper producing a new
  :class:`~repro.core.area.AreaCollection` whose adjacency is the
  network-restricted one, so every solver in the library — FaCT, the
  max-p baseline, the exact solvers — runs the network variant
  unchanged.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping

from ..core.area import AreaCollection
from ..exceptions import InvalidAreaError
from .weights import adjacency_to_edges, validate_adjacency

__all__ = [
    "restrict_adjacency",
    "synthetic_road_network",
    "restricted_collection",
]


def restrict_adjacency(
    adjacency: Mapping[int, frozenset[int]],
    connected_pairs: Iterable[tuple[int, int]],
) -> dict[int, frozenset[int]]:
    """Keep only neighbor pairs that also appear in *connected_pairs*.

    Pairs are undirected; pairs not present in *adjacency* are ignored
    (a road between non-touching areas does not create contiguity —
    the variant adds a restriction, not new edges).
    """
    allowed: set[tuple[int, int]] = set()
    for a, b in connected_pairs:
        a, b = int(a), int(b)
        allowed.add((a, b) if a < b else (b, a))
    restricted: dict[int, set[int]] = {node: set() for node in adjacency}
    for node, neighbors in adjacency.items():
        for neighbor in neighbors:
            key = (node, neighbor) if node < neighbor else (neighbor, node)
            if key in allowed:
                restricted[node].add(neighbor)
    return {node: frozenset(nbrs) for node, nbrs in restricted.items()}


def synthetic_road_network(
    adjacency: Mapping[int, frozenset[int]],
    density: float = 0.5,
    seed: int = 0,
) -> set[tuple[int, int]]:
    """A synthetic road graph over an adjacency structure.

    Builds a uniform random spanning tree (Wilson-lite: randomized
    BFS) per connected component so every area stays reachable, then
    adds each remaining adjacent pair independently with probability
    *density*.

    Returns the set of undirected road pairs ``(min, max)``.
    """
    if not 0.0 <= density <= 1.0:
        raise InvalidAreaError("road density must be within [0, 1]")
    validate_adjacency(adjacency)
    rng = random.Random(seed)

    roads: set[tuple[int, int]] = set()
    visited: set[int] = set()
    for start in adjacency:
        if start in visited:
            continue
        # randomized spanning tree of this component
        visited.add(start)
        frontier = [start]
        while frontier:
            index = rng.randrange(len(frontier))
            frontier[index], frontier[-1] = frontier[-1], frontier[index]
            current = frontier.pop()
            neighbors = list(adjacency[current])
            rng.shuffle(neighbors)
            for neighbor in neighbors:
                if neighbor not in visited:
                    visited.add(neighbor)
                    roads.add(
                        (current, neighbor)
                        if current < neighbor
                        else (neighbor, current)
                    )
                    frontier.append(neighbor)

    for a, b in sorted(adjacency_to_edges(adjacency)):
        if (a, b) in roads:
            continue
        if rng.random() < density:
            roads.add((a, b))
    return roads


def restricted_collection(
    collection: AreaCollection,
    connected_pairs: Iterable[tuple[int, int]] | None = None,
    density: float = 0.5,
    seed: int = 0,
) -> AreaCollection:
    """An :class:`AreaCollection` with network-restricted contiguity.

    With *connected_pairs* ``None`` a synthetic road network is
    generated first (see :func:`synthetic_road_network`). The returned
    collection carries the same areas (attributes, polygons,
    dissimilarities) under the restricted neighbor map, so any solver
    call works unchanged:

        network_world = restricted_collection(collection, density=0.3)
        solution = FaCT().solve(network_world, constraints)
    """
    adjacency = {
        area_id: collection.neighbors(area_id) for area_id in collection.ids
    }
    if connected_pairs is None:
        connected_pairs = synthetic_road_network(
            adjacency, density=density, seed=seed
        )
    restricted = restrict_adjacency(adjacency, connected_pairs)
    return AreaCollection(
        list(collection),
        restricted,
        dissimilarity_attribute=collection.dissimilarity_attribute,
    )
