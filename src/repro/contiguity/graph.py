"""Graph algorithms over contiguity structures.

The FaCT phases repeatedly answer two questions about the *induced
subgraph* of a region's member set:

- is it connected? (every region must be, Definition III.2)
- which members are articulation points? (an area may leave a region
  only if it is not one — the donor-side check in Step 3 swaps and in
  every Tabu move)

Both are implemented over a neighbor *function* rather than a
materialized graph so they work directly on
:meth:`repro.core.area.AreaCollection.neighbors` restricted to a set.
"""

from __future__ import annotations

from typing import Callable, Iterable

__all__ = [
    "is_connected",
    "connected_components",
    "articulation_points",
    "bfs_order",
    "removable_set",
    "csr_adjacency",
    "neighbors_from_csr",
]

NeighborFn = Callable[[int], Iterable[int]]


def csr_adjacency(
    nodes: Iterable[int], neighbors: NeighborFn
) -> tuple[list[int], list[int]]:
    """CSR ``(indptr, indices)`` of the subgraph induced by *nodes*.

    Rows follow the order of *nodes*; entries are *dense positions*
    (indexes into the node order, not raw ids), each row sorted
    ascending. Neighbors outside the node set are dropped, so the CSR
    is exactly the dict-of-sets graph restricted to *nodes*. Plain
    Python lists — the array backend converts them once; callers that
    need ids back use :func:`neighbors_from_csr`.
    """
    node_order = list(nodes)
    position = {node: i for i, node in enumerate(node_order)}
    indptr = [0]
    indices: list[int] = []
    for node in node_order:
        row = sorted(
            position[neighbor]
            for neighbor in neighbors(node)
            if neighbor in position
        )
        indices.extend(row)
        indptr.append(len(indices))
    return indptr, indices


def neighbors_from_csr(
    nodes: Iterable[int],
    indptr: "Iterable[int]",
    indices: "Iterable[int]",
) -> dict[int, frozenset[int]]:
    """Inverse of :func:`csr_adjacency`: dense CSR back to an
    id → neighbor-id-set mapping (for round-trip verification)."""
    node_order = list(nodes)
    indptr = list(indptr)
    indices = list(indices)
    return {
        node: frozenset(
            node_order[j] for j in indices[indptr[i] : indptr[i + 1]]
        )
        for i, node in enumerate(node_order)
    }


def bfs_order(start: int, nodes: frozenset[int] | set[int],
              neighbors: NeighborFn) -> list[int]:
    """Breadth-first visit order of the subgraph induced by *nodes*,
    starting from *start* (which must be a member)."""
    if start not in nodes:
        raise ValueError(f"start node {start} is not in the node set")
    seen = {start}
    order = [start]
    queue = [start]
    head = 0
    while head < len(order):
        current = order[head]
        head += 1
        for neighbor in neighbors(current):
            if neighbor in nodes and neighbor not in seen:
                seen.add(neighbor)
                order.append(neighbor)
    return order


def is_connected(nodes: Iterable[int], neighbors: NeighborFn) -> bool:
    """True when the induced subgraph over *nodes* is connected and
    non-empty."""
    node_set = set(nodes)
    if not node_set:
        return False
    start = next(iter(node_set))
    return len(bfs_order(start, node_set, neighbors)) == len(node_set)


def connected_components(
    nodes: Iterable[int], neighbors: NeighborFn
) -> list[frozenset[int]]:
    """Connected components of the induced subgraph over *nodes*."""
    remaining = set(nodes)
    components: list[frozenset[int]] = []
    while remaining:
        start = next(iter(remaining))
        component = frozenset(bfs_order(start, remaining, neighbors))
        remaining -= component
        components.append(component)
    return components


def articulation_points(
    nodes: Iterable[int], neighbors: NeighborFn
) -> frozenset[int]:
    """Articulation points of the induced subgraph over *nodes*.

    Iterative Hopcroft–Tarjan (no recursion, so arbitrarily large
    regions are safe). Nodes in other components than the start node
    are handled by restarting the DFS per component.
    """
    return _components_and_articulation(set(nodes), neighbors)[1]


# Epoch-stamped scratch for the combined components/articulation DFS:
# discovery/low are indexed by node id, a cell is valid only when its
# stamp equals the current epoch, so no per-call clearing — the oracle
# rebuilds this DFS twice per accepted Tabu move and the dict
# bookkeeping it replaces was the single hottest line of a solve.
# Node ids above the cap (sparse id spaces) use the dict variant.
_SCRATCH_NODE_CAP = 1 << 21
_scratch_epoch = 0
_scratch_stamp: list[int] = []
_scratch_disc: list[int] = []
_scratch_low: list[int] = []


def _components_and_articulation(
    node_set: set[int],
    neighbors: NeighborFn,
    adjacency: dict[int, list[int]] | None = None,
) -> tuple[list[frozenset[int]], frozenset[int]]:
    """Connected components *and* articulation points in one DFS pass.

    Every DFS restart roots a new component, so component membership
    falls out of the same Hopcroft–Tarjan traversal for free — this is
    what lets :func:`removable_set` answer with a single pass over the
    induced subgraph instead of one pass per question.

    When *adjacency* is given it must already be the induced adjacency
    (node → in-set neighbor list for exactly the nodes of *node_set*);
    the DFS then skips all membership filtering. Callers that maintain
    the induced rows incrementally (:class:`repro.core.region.Region`)
    turn every oracle rebuild from O(Σ full-degree) set probes into a
    bare traversal of the precomputed rows.
    """
    rows = adjacency
    if rows is None:
        rows = {
            node: [n for n in neighbors(node) if n in node_set]
            for node in node_set
        }
    max_node = max(node_set)
    if max_node > _SCRATCH_NODE_CAP:
        # Sparse id spaces (raw census GEOIDs) would blow the dense
        # scratch up; dict bookkeeping handles them at reference speed.
        return _dfs_sparse(node_set, rows)

    global _scratch_epoch
    stamp = _scratch_stamp
    if max_node >= len(stamp):
        grow = max_node + 1 - len(stamp)
        stamp.extend([0] * grow)
        _scratch_disc.extend([0] * grow)
        _scratch_low.extend([0] * grow)
    _scratch_epoch += 1
    epoch = _scratch_epoch
    disc = _scratch_disc
    low = _scratch_low

    components: list[frozenset[int]] = []
    articulation: set[int] = set()
    counter = 0

    for root in node_set:
        if stamp[root] == epoch:
            continue
        component = [root]
        root_children = 0
        # stack entries: (node, parent, iterator over its in-set rows)
        stack = [(root, None, iter(rows[root]))]
        stamp[root] = epoch
        disc[root] = low[root] = counter
        counter += 1
        while stack:
            node, parent_node, iterator = stack[-1]
            low_node = low[node]
            advanced = False
            for neighbor in iterator:
                if stamp[neighbor] != epoch:
                    if node == root:
                        root_children += 1
                    stamp[neighbor] = epoch
                    disc[neighbor] = low[neighbor] = counter
                    counter += 1
                    component.append(neighbor)
                    stack.append((neighbor, node, iter(rows[neighbor])))
                    advanced = True
                    break
                if neighbor != parent_node:
                    d = disc[neighbor]
                    if d < low_node:
                        low_node = d
            low[node] = low_node
            if advanced:
                continue
            stack.pop()
            if stack:
                pnode = stack[-1][0]
                if low_node < low[pnode]:
                    low[pnode] = low_node
                if pnode != root and low_node >= disc[pnode]:
                    articulation.add(pnode)
        if root_children > 1:
            articulation.add(root)
        components.append(frozenset(component))
    return components, frozenset(articulation)


def _dfs_sparse(
    node_set: set[int], rows: dict[int, list[int]]
) -> tuple[list[frozenset[int]], frozenset[int]]:
    """Dict-bookkeeping variant of the DFS above for node ids too
    large to index the dense scratch arrays. Identical traversal,
    identical results — only the discovery/low storage differs."""
    components: list[frozenset[int]] = []
    discovery: dict[int, int] = {}
    low: dict[int, int] = {}
    articulation: set[int] = set()
    discovery_get = discovery.get
    counter = 0

    for root in node_set:
        if root in discovery:
            continue
        component = [root]
        root_children = 0
        stack = [(root, None, iter(rows[root]))]
        discovery[root] = low[root] = counter
        counter += 1
        while stack:
            node, parent_node, iterator = stack[-1]
            low_node = low[node]
            advanced = False
            for neighbor in iterator:
                d = discovery_get(neighbor)
                if d is None:
                    if node == root:
                        root_children += 1
                    discovery[neighbor] = low[neighbor] = counter
                    counter += 1
                    component.append(neighbor)
                    stack.append((neighbor, node, iter(rows[neighbor])))
                    advanced = True
                    break
                if neighbor != parent_node and d < low_node:
                    low_node = d
            low[node] = low_node
            if advanced:
                continue
            stack.pop()
            if stack:
                pnode = stack[-1][0]
                if low_node < low[pnode]:
                    low[pnode] = low_node
                if pnode != root and low_node >= discovery[pnode]:
                    articulation.add(pnode)
        if root_children > 1:
            articulation.add(root)
        components.append(frozenset(component))
    return components, frozenset(articulation)


def removable_set(
    nodes: Iterable[int],
    neighbors: NeighborFn,
    adjacency: dict[int, list[int]] | None = None,
) -> tuple[bool, frozenset[int]]:
    """``(connected, removable)`` for the induced subgraph of *nodes*.

    ``removable`` is the set of nodes whose individual removal leaves
    the *remaining* node set connected and non-empty — exactly the
    verdict of a per-node BFS check, computed for every node at once:

    - one connected component: every non-articulation node (a single
      Hopcroft–Tarjan pass instead of ``|nodes|`` BFS runs);
    - two components: only an isolated node can leave (the other
      component is then the connected remainder);
    - three or more components, or a single node: nothing is removable
      (removal leaves a disconnected or empty remainder).

    This is the batch primitive behind the per-region contiguity
    oracle (:meth:`repro.core.region.Region.removable_areas`); it
    costs exactly one DFS traversal of the induced subgraph. Passing a
    precomputed induced *adjacency* (see
    :func:`_components_and_articulation`) skips the per-node membership
    filtering inside that traversal.
    """
    node_set = set(nodes)
    if not node_set:
        return False, frozenset()
    if len(node_set) == 1:
        return True, frozenset()
    components, articulation = _components_and_articulation(
        node_set, neighbors, adjacency
    )
    if len(components) == 1:
        return True, frozenset(node_set) - articulation
    if len(components) == 2:
        return False, frozenset(
            node
            for component in components
            if len(component) == 1
            for node in component
        )
    return False, frozenset()
