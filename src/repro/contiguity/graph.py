"""Graph algorithms over contiguity structures.

The FaCT phases repeatedly answer two questions about the *induced
subgraph* of a region's member set:

- is it connected? (every region must be, Definition III.2)
- which members are articulation points? (an area may leave a region
  only if it is not one — the donor-side check in Step 3 swaps and in
  every Tabu move)

Both are implemented over a neighbor *function* rather than a
materialized graph so they work directly on
:meth:`repro.core.area.AreaCollection.neighbors` restricted to a set.
"""

from __future__ import annotations

from typing import Callable, Iterable

__all__ = [
    "is_connected",
    "connected_components",
    "articulation_points",
    "bfs_order",
    "removable_set",
]

NeighborFn = Callable[[int], Iterable[int]]


def bfs_order(start: int, nodes: frozenset[int] | set[int],
              neighbors: NeighborFn) -> list[int]:
    """Breadth-first visit order of the subgraph induced by *nodes*,
    starting from *start* (which must be a member)."""
    if start not in nodes:
        raise ValueError(f"start node {start} is not in the node set")
    seen = {start}
    order = [start]
    queue = [start]
    head = 0
    while head < len(order):
        current = order[head]
        head += 1
        for neighbor in neighbors(current):
            if neighbor in nodes and neighbor not in seen:
                seen.add(neighbor)
                order.append(neighbor)
    return order


def is_connected(nodes: Iterable[int], neighbors: NeighborFn) -> bool:
    """True when the induced subgraph over *nodes* is connected and
    non-empty."""
    node_set = set(nodes)
    if not node_set:
        return False
    start = next(iter(node_set))
    return len(bfs_order(start, node_set, neighbors)) == len(node_set)


def connected_components(
    nodes: Iterable[int], neighbors: NeighborFn
) -> list[frozenset[int]]:
    """Connected components of the induced subgraph over *nodes*."""
    remaining = set(nodes)
    components: list[frozenset[int]] = []
    while remaining:
        start = next(iter(remaining))
        component = frozenset(bfs_order(start, remaining, neighbors))
        remaining -= component
        components.append(component)
    return components


def articulation_points(
    nodes: Iterable[int], neighbors: NeighborFn
) -> frozenset[int]:
    """Articulation points of the induced subgraph over *nodes*.

    Iterative Hopcroft–Tarjan (no recursion, so arbitrarily large
    regions are safe). Nodes in other components than the start node
    are handled by restarting the DFS per component.
    """
    return _components_and_articulation(set(nodes), neighbors)[1]


def _components_and_articulation(
    node_set: set[int], neighbors: NeighborFn
) -> tuple[list[frozenset[int]], frozenset[int]]:
    """Connected components *and* articulation points in one DFS pass.

    Every DFS restart roots a new component, so component membership
    falls out of the same Hopcroft–Tarjan traversal for free — this is
    what lets :func:`removable_set` answer with a single pass over the
    induced subgraph instead of one pass per question.
    """
    components: list[frozenset[int]] = []
    discovery: dict[int, int] = {}
    low: dict[int, int] = {}
    parent: dict[int, int | None] = {}
    articulation: set[int] = set()
    counter = 0

    for root in node_set:
        if root in discovery:
            continue
        component = [root]
        parent[root] = None
        root_children = 0
        # stack entries: (node, iterator over its in-set neighbors)
        stack = [(root, iter([n for n in neighbors(root) if n in node_set]))]
        discovery[root] = low[root] = counter
        counter += 1
        while stack:
            node, iterator = stack[-1]
            advanced = False
            for neighbor in iterator:
                if neighbor not in discovery:
                    parent[neighbor] = node
                    if node == root:
                        root_children += 1
                    discovery[neighbor] = low[neighbor] = counter
                    counter += 1
                    component.append(neighbor)
                    stack.append(
                        (
                            neighbor,
                            iter(
                                [
                                    n
                                    for n in neighbors(neighbor)
                                    if n in node_set
                                ]
                            ),
                        )
                    )
                    advanced = True
                    break
                if neighbor != parent[node]:
                    low[node] = min(low[node], discovery[neighbor])
            if advanced:
                continue
            stack.pop()
            if stack:
                parent_node = stack[-1][0]
                low[parent_node] = min(low[parent_node], low[node])
                if parent_node != root and low[node] >= discovery[parent_node]:
                    articulation.add(parent_node)
        if root_children > 1:
            articulation.add(root)
        components.append(frozenset(component))
    return components, frozenset(articulation)


def removable_set(
    nodes: Iterable[int], neighbors: NeighborFn
) -> tuple[bool, frozenset[int]]:
    """``(connected, removable)`` for the induced subgraph of *nodes*.

    ``removable`` is the set of nodes whose individual removal leaves
    the *remaining* node set connected and non-empty — exactly the
    verdict of a per-node BFS check, computed for every node at once:

    - one connected component: every non-articulation node (a single
      Hopcroft–Tarjan pass instead of ``|nodes|`` BFS runs);
    - two components: only an isolated node can leave (the other
      component is then the connected remainder);
    - three or more components, or a single node: nothing is removable
      (removal leaves a disconnected or empty remainder).

    This is the batch primitive behind the per-region contiguity
    oracle (:meth:`repro.core.region.Region.removable_areas`); it
    costs exactly one DFS traversal of the induced subgraph.
    """
    node_set = set(nodes)
    if not node_set:
        return False, frozenset()
    if len(node_set) == 1:
        return True, frozenset()
    components, articulation = _components_and_articulation(
        node_set, neighbors
    )
    if len(components) == 1:
        return True, frozenset(node_set) - articulation
    if len(components) == 2:
        return False, frozenset(
            node
            for component in components
            if len(component) == 1
            for node in component
        )
    return False, frozenset()
