"""Graph algorithms over contiguity structures.

The FaCT phases repeatedly answer two questions about the *induced
subgraph* of a region's member set:

- is it connected? (every region must be, Definition III.2)
- which members are articulation points? (an area may leave a region
  only if it is not one — the donor-side check in Step 3 swaps and in
  every Tabu move)

Both are implemented over a neighbor *function* rather than a
materialized graph so they work directly on
:meth:`repro.core.area.AreaCollection.neighbors` restricted to a set.
"""

from __future__ import annotations

from typing import Callable, Iterable

__all__ = [
    "is_connected",
    "connected_components",
    "articulation_points",
    "bfs_order",
    "removable_set",
    "block_cut_state",
    "BlockCutIndex",
    "csr_adjacency",
    "neighbors_from_csr",
]

NeighborFn = Callable[[int], Iterable[int]]


def csr_adjacency(
    nodes: Iterable[int], neighbors: NeighborFn
) -> tuple[list[int], list[int]]:
    """CSR ``(indptr, indices)`` of the subgraph induced by *nodes*.

    Rows follow the order of *nodes*; entries are *dense positions*
    (indexes into the node order, not raw ids), each row sorted
    ascending. Neighbors outside the node set are dropped, so the CSR
    is exactly the dict-of-sets graph restricted to *nodes*. Plain
    Python lists — the array backend converts them once; callers that
    need ids back use :func:`neighbors_from_csr`.
    """
    node_order = list(nodes)
    position = {node: i for i, node in enumerate(node_order)}
    indptr = [0]
    indices: list[int] = []
    for node in node_order:
        row = sorted(
            position[neighbor]
            for neighbor in neighbors(node)
            if neighbor in position
        )
        indices.extend(row)
        indptr.append(len(indices))
    return indptr, indices


def neighbors_from_csr(
    nodes: Iterable[int],
    indptr: "Iterable[int]",
    indices: "Iterable[int]",
) -> dict[int, frozenset[int]]:
    """Inverse of :func:`csr_adjacency`: dense CSR back to an
    id → neighbor-id-set mapping (for round-trip verification)."""
    node_order = list(nodes)
    indptr = list(indptr)
    indices = list(indices)
    return {
        node: frozenset(
            node_order[j] for j in indices[indptr[i] : indptr[i + 1]]
        )
        for i, node in enumerate(node_order)
    }


def bfs_order(start: int, nodes: frozenset[int] | set[int],
              neighbors: NeighborFn) -> list[int]:
    """Breadth-first visit order of the subgraph induced by *nodes*,
    starting from *start* (which must be a member)."""
    if start not in nodes:
        raise ValueError(f"start node {start} is not in the node set")
    seen = {start}
    order = [start]
    queue = [start]
    head = 0
    while head < len(order):
        current = order[head]
        head += 1
        for neighbor in neighbors(current):
            if neighbor in nodes and neighbor not in seen:
                seen.add(neighbor)
                order.append(neighbor)
    return order


def is_connected(nodes: Iterable[int], neighbors: NeighborFn) -> bool:
    """True when the induced subgraph over *nodes* is connected and
    non-empty."""
    node_set = set(nodes)
    if not node_set:
        return False
    start = next(iter(node_set))
    return len(bfs_order(start, node_set, neighbors)) == len(node_set)


def connected_components(
    nodes: Iterable[int], neighbors: NeighborFn
) -> list[frozenset[int]]:
    """Connected components of the induced subgraph over *nodes*."""
    remaining = set(nodes)
    components: list[frozenset[int]] = []
    while remaining:
        start = next(iter(remaining))
        component = frozenset(bfs_order(start, remaining, neighbors))
        remaining -= component
        components.append(component)
    return components


def articulation_points(
    nodes: Iterable[int], neighbors: NeighborFn
) -> frozenset[int]:
    """Articulation points of the induced subgraph over *nodes*.

    Iterative Hopcroft–Tarjan (no recursion, so arbitrarily large
    regions are safe). Nodes in other components than the start node
    are handled by restarting the DFS per component.
    """
    return _components_and_articulation(set(nodes), neighbors)[1]


# Epoch-stamped scratch for the combined components/articulation DFS:
# discovery/low are indexed by node id, a cell is valid only when its
# stamp equals the current epoch, so no per-call clearing — the oracle
# rebuilds this DFS twice per accepted Tabu move and the dict
# bookkeeping it replaces was the single hottest line of a solve.
# Node ids above the cap (sparse id spaces) use the dict variant.
_SCRATCH_NODE_CAP = 1 << 21
_scratch_epoch = 0
_scratch_stamp: list[int] = []
_scratch_disc: list[int] = []
_scratch_low: list[int] = []


def _components_and_articulation(
    node_set: set[int],
    neighbors: NeighborFn,
    adjacency: dict[int, list[int]] | None = None,
) -> tuple[list[frozenset[int]], frozenset[int]]:
    """Connected components *and* articulation points in one DFS pass.

    Every DFS restart roots a new component, so component membership
    falls out of the same Hopcroft–Tarjan traversal for free — this is
    what lets :func:`removable_set` answer with a single pass over the
    induced subgraph instead of one pass per question.

    When *adjacency* is given it must already be the induced adjacency
    (node → in-set neighbor list for exactly the nodes of *node_set*);
    the DFS then skips all membership filtering. Callers that maintain
    the induced rows incrementally (:class:`repro.core.region.Region`)
    turn every oracle rebuild from O(Σ full-degree) set probes into a
    bare traversal of the precomputed rows.
    """
    rows = adjacency
    if rows is None:
        rows = {
            node: [n for n in neighbors(node) if n in node_set]
            for node in node_set
        }
    max_node = max(node_set)
    if max_node > _SCRATCH_NODE_CAP:
        # Sparse id spaces (raw census GEOIDs) would blow the dense
        # scratch up; dict bookkeeping handles them at reference speed.
        return _dfs_sparse(node_set, rows)

    global _scratch_epoch
    stamp = _scratch_stamp
    if max_node >= len(stamp):
        grow = max_node + 1 - len(stamp)
        stamp.extend([0] * grow)
        _scratch_disc.extend([0] * grow)
        _scratch_low.extend([0] * grow)
    _scratch_epoch += 1
    epoch = _scratch_epoch
    disc = _scratch_disc
    low = _scratch_low

    components: list[frozenset[int]] = []
    articulation: set[int] = set()
    counter = 0

    for root in node_set:
        if stamp[root] == epoch:
            continue
        component = [root]
        root_children = 0
        # stack entries: (node, parent, iterator over its in-set rows)
        stack = [(root, None, iter(rows[root]))]
        stamp[root] = epoch
        disc[root] = low[root] = counter
        counter += 1
        while stack:
            node, parent_node, iterator = stack[-1]
            low_node = low[node]
            advanced = False
            for neighbor in iterator:
                if stamp[neighbor] != epoch:
                    if node == root:
                        root_children += 1
                    stamp[neighbor] = epoch
                    disc[neighbor] = low[neighbor] = counter
                    counter += 1
                    component.append(neighbor)
                    stack.append((neighbor, node, iter(rows[neighbor])))
                    advanced = True
                    break
                if neighbor != parent_node:
                    d = disc[neighbor]
                    if d < low_node:
                        low_node = d
            low[node] = low_node
            if advanced:
                continue
            stack.pop()
            if stack:
                pnode = stack[-1][0]
                if low_node < low[pnode]:
                    low[pnode] = low_node
                if pnode != root and low_node >= disc[pnode]:
                    articulation.add(pnode)
        if root_children > 1:
            articulation.add(root)
        components.append(frozenset(component))
    return components, frozenset(articulation)


def _dfs_sparse(
    node_set: set[int], rows: dict[int, list[int]]
) -> tuple[list[frozenset[int]], frozenset[int]]:
    """Dict-bookkeeping variant of the DFS above for node ids too
    large to index the dense scratch arrays. Identical traversal,
    identical results — only the discovery/low storage differs."""
    components: list[frozenset[int]] = []
    discovery: dict[int, int] = {}
    low: dict[int, int] = {}
    articulation: set[int] = set()
    discovery_get = discovery.get
    counter = 0

    for root in node_set:
        if root in discovery:
            continue
        component = [root]
        root_children = 0
        stack = [(root, None, iter(rows[root]))]
        discovery[root] = low[root] = counter
        counter += 1
        while stack:
            node, parent_node, iterator = stack[-1]
            low_node = low[node]
            advanced = False
            for neighbor in iterator:
                d = discovery_get(neighbor)
                if d is None:
                    if node == root:
                        root_children += 1
                    discovery[neighbor] = low[neighbor] = counter
                    counter += 1
                    component.append(neighbor)
                    stack.append((neighbor, node, iter(rows[neighbor])))
                    advanced = True
                    break
                if neighbor != parent_node and d < low_node:
                    low_node = d
            low[node] = low_node
            if advanced:
                continue
            stack.pop()
            if stack:
                pnode = stack[-1][0]
                if low_node < low[pnode]:
                    low[pnode] = low_node
                if pnode != root and low_node >= discovery[pnode]:
                    articulation.add(pnode)
        if root_children > 1:
            articulation.add(root)
        components.append(frozenset(component))
    return components, frozenset(articulation)


def removable_set(
    nodes: Iterable[int],
    neighbors: NeighborFn,
    adjacency: dict[int, list[int]] | None = None,
) -> tuple[bool, frozenset[int]]:
    """``(connected, removable)`` for the induced subgraph of *nodes*.

    ``removable`` is the set of nodes whose individual removal leaves
    the *remaining* node set connected and non-empty — exactly the
    verdict of a per-node BFS check, computed for every node at once:

    - one connected component: every non-articulation node (a single
      Hopcroft–Tarjan pass instead of ``|nodes|`` BFS runs);
    - two components: only an isolated node can leave (the other
      component is then the connected remainder);
    - three or more components, or a single node: nothing is removable
      (removal leaves a disconnected or empty remainder).

    This is the batch primitive behind the per-region contiguity
    oracle (:meth:`repro.core.region.Region.removable_areas`); it
    costs exactly one DFS traversal of the induced subgraph. Passing a
    precomputed induced *adjacency* (see
    :func:`_components_and_articulation`) skips the per-node membership
    filtering inside that traversal.
    """
    node_set = set(nodes)
    if not node_set:
        return False, frozenset()
    if len(node_set) == 1:
        return True, frozenset()
    components, articulation = _components_and_articulation(
        node_set, neighbors, adjacency
    )
    if len(components) == 1:
        return True, frozenset(node_set) - articulation
    if len(components) == 2:
        return False, frozenset(
            node
            for component in components
            if len(component) == 1
            for node in component
        )
    return False, frozenset()


def block_cut_state(
    node_set: set[int] | frozenset[int],
    neighbors: NeighborFn,
    adjacency: dict[int, list[int]] | None = None,
) -> tuple[list[frozenset[int]], frozenset[int], list[set[int]]]:
    """``(components, articulation, biconnected blocks)`` in one pass.

    The edge-stack variant of the Hopcroft–Tarjan DFS: every tree/back
    edge is pushed once, and whenever a child subtree closes with
    ``low(child) >= disc(parent)`` the edges popped down to the tree
    edge form one biconnected block (emitted as its vertex set). An
    isolated vertex forms a singleton block, so the blocks always cover
    the node set and a vertex is an articulation point exactly when it
    belongs to two or more blocks.

    Storage dispatch mirrors :func:`_components_and_articulation`:
    dense epoch-stamped scratch below ``_SCRATCH_NODE_CAP``, dict
    bookkeeping above it. Same *adjacency* contract too.
    """
    if not node_set:
        return [], frozenset(), []
    rows = adjacency
    if rows is None:
        rows = {
            node: [n for n in neighbors(node) if n in node_set]
            for node in node_set
        }
    max_node = max(node_set)
    if max_node > _SCRATCH_NODE_CAP:
        return _block_dfs_sparse(node_set, rows)

    global _scratch_epoch
    stamp = _scratch_stamp
    if max_node >= len(stamp):
        grow = max_node + 1 - len(stamp)
        stamp.extend([0] * grow)
        _scratch_disc.extend([0] * grow)
        _scratch_low.extend([0] * grow)
    _scratch_epoch += 1
    epoch = _scratch_epoch
    disc = _scratch_disc
    low = _scratch_low

    components: list[frozenset[int]] = []
    articulation: set[int] = set()
    blocks: list[set[int]] = []
    counter = 0

    for root in node_set:
        if stamp[root] == epoch:
            continue
        component = [root]
        root_children = 0
        stack = [(root, None, iter(rows[root]))]
        stamp[root] = epoch
        disc[root] = low[root] = counter
        counter += 1
        edges: list[tuple[int, int]] = []
        while stack:
            node, parent_node, iterator = stack[-1]
            disc_node = disc[node]
            low_node = low[node]
            advanced = False
            for neighbor in iterator:
                if stamp[neighbor] != epoch:
                    if node == root:
                        root_children += 1
                    stamp[neighbor] = epoch
                    disc[neighbor] = low[neighbor] = counter
                    counter += 1
                    component.append(neighbor)
                    edges.append((node, neighbor))
                    stack.append((neighbor, node, iter(rows[neighbor])))
                    advanced = True
                    break
                if neighbor != parent_node:
                    d = disc[neighbor]
                    if d < disc_node:
                        # Back edge to an ancestor: push once (the
                        # descendant side sees the smaller disc).
                        edges.append((node, neighbor))
                        if d < low_node:
                            low_node = d
            low[node] = low_node
            if advanced:
                continue
            stack.pop()
            if stack:
                pnode = stack[-1][0]
                if low_node < low[pnode]:
                    low[pnode] = low_node
                if low_node >= disc[pnode]:
                    block: set[int] = set()
                    while True:
                        u, w = edges.pop()
                        block.add(u)
                        block.add(w)
                        if u == pnode and w == node:
                            break
                    blocks.append(block)
                    if pnode != root:
                        articulation.add(pnode)
        if root_children > 1:
            articulation.add(root)
        elif len(component) == 1:
            blocks.append({root})
        components.append(frozenset(component))
    return components, frozenset(articulation), blocks


def _block_dfs_sparse(
    node_set: set[int] | frozenset[int], rows: dict[int, list[int]]
) -> tuple[list[frozenset[int]], frozenset[int], list[set[int]]]:
    """Dict-bookkeeping variant of :func:`block_cut_state` for node ids
    too large to index the dense scratch. Identical traversal and
    results — only the discovery/low storage differs."""
    components: list[frozenset[int]] = []
    articulation: set[int] = set()
    blocks: list[set[int]] = []
    discovery: dict[int, int] = {}
    low: dict[int, int] = {}
    counter = 0

    for root in node_set:
        if root in discovery:
            continue
        component = [root]
        root_children = 0
        stack = [(root, None, iter(rows[root]))]
        discovery[root] = low[root] = counter
        counter += 1
        edges: list[tuple[int, int]] = []
        while stack:
            node, parent_node, iterator = stack[-1]
            disc_node = discovery[node]
            low_node = low[node]
            advanced = False
            for neighbor in iterator:
                d = discovery.get(neighbor)
                if d is None:
                    if node == root:
                        root_children += 1
                    discovery[neighbor] = low[neighbor] = counter
                    counter += 1
                    component.append(neighbor)
                    edges.append((node, neighbor))
                    stack.append((neighbor, node, iter(rows[neighbor])))
                    advanced = True
                    break
                if neighbor != parent_node and d < disc_node:
                    edges.append((node, neighbor))
                    if d < low_node:
                        low_node = d
            low[node] = low_node
            if advanced:
                continue
            stack.pop()
            if stack:
                pnode = stack[-1][0]
                if low_node < low[pnode]:
                    low[pnode] = low_node
                if low_node >= discovery[pnode]:
                    block: set[int] = set()
                    while True:
                        u, w = edges.pop()
                        block.add(u)
                        block.add(w)
                        if u == pnode and w == node:
                            break
                    blocks.append(block)
                    if pnode != root:
                        articulation.add(pnode)
        if root_children > 1:
            articulation.add(root)
        elif len(component) == 1:
            blocks.append({root})
        components.append(frozenset(component))
    return components, frozenset(articulation), blocks


class BlockCutIndex:
    """Incrementally maintained block-cut structure of one *connected*
    induced subgraph.

    Holds the biconnected blocks (block id → vertex set), each vertex's
    block memberships, and the articulation set — which is exactly the
    vertices belonging to two or more blocks. The per-region contiguity
    oracle keeps one of these alive between queries and applies the
    region's membership mutations to it instead of re-running the full
    Hopcroft–Tarjan DFS:

    - **adding** a vertex with ``k`` in-set neighbors never needs a
      DFS: ``k = 1`` hangs a new two-vertex leaf block off the
      neighbor, and each further neighbor edge merges the blocks along
      one path of the block-cut tree into a single biconnected block
      (the Westbrook–Tarjan incremental-biconnectivity step);
    - **removing** a non-articulation vertex re-splits only its single
      containing block (one localized DFS over that block, O(1) for
      two-vertex blocks) — every other block is untouched;
    - everything else — removal of an articulation point, a
      disconnecting mutation, a desynchronized snapshot — returns
      ``False``, and the caller falls back to a full rebuild
      (``PerfCounters.oracle_fallbacks``).

    Mutation methods that return ``False`` may leave the structure
    partially updated; the contract is that the caller discards it and
    rebuilds.
    """

    __slots__ = (
        "blocks",
        "vertex_blocks",
        "articulation",
        "_block_cuts",
        "_next_id",
    )

    def __init__(self) -> None:
        self.blocks: dict[int, set[int]] = {}
        self.vertex_blocks: dict[int, set[int]] = {}
        self.articulation: set[int] = set()
        # block id → its articulation vertices: the block-cut tree's
        # adjacency, kept explicit so path searches never scan a whole
        # block's member set.
        self._block_cuts: dict[int, set[int]] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self.vertex_blocks)

    # -- construction ---------------------------------------------------
    def load(
        self,
        blocks: Iterable[Iterable[int]],
        articulation: Iterable[int],
    ) -> None:
        """Populate from a :func:`block_cut_state` result (replacing
        any previous content)."""
        self.blocks.clear()
        self.vertex_blocks.clear()
        self.articulation.clear()
        self._block_cuts.clear()
        vertex_blocks = self.vertex_blocks
        for members in blocks:
            bid = self._new_block(set(members))
            for vertex in self.blocks[bid]:
                row = vertex_blocks.get(vertex)
                if row is None:
                    vertex_blocks[vertex] = {bid}
                else:
                    row.add(bid)
        self.articulation.update(articulation)
        for vertex in self.articulation:
            for bid in vertex_blocks[vertex]:
                self._block_cuts[bid].add(vertex)

    def rebuild(
        self,
        node_set: set[int] | frozenset[int],
        neighbors: NeighborFn,
        adjacency: dict[int, list[int]] | None = None,
    ) -> bool:
        """Full-DFS (re)build; ``False`` (and an empty structure) when
        the node set is not a single connected component."""
        components, articulation, blocks = block_cut_state(
            node_set, neighbors, adjacency
        )
        if len(components) > 1:
            self.load((), ())
            return False
        self.load(blocks, articulation)
        return True

    # -- incremental mutation -------------------------------------------
    def add_vertex(self, vertex: int, member_neighbors: Iterable[int]) -> bool:
        """Apply "vertex joined, adjacent to *member_neighbors*".

        *member_neighbors* must be the vertex's in-set neighbors at the
        moment of the mutation. No DFS: pure block-cut tree surgery.
        """
        vertex_blocks = self.vertex_blocks
        if vertex in vertex_blocks:
            return False
        nbrs = list(member_neighbors)
        if not vertex_blocks:
            if nbrs:
                return False
            vertex_blocks[vertex] = {self._new_block({vertex})}
            return True
        if not nbrs:
            return False  # second component — no longer connected
        for u in nbrs:
            if u not in vertex_blocks:
                return False  # snapshot disagrees with the structure
        first = nbrs[0]
        first_blocks = vertex_blocks[first]
        lone = next(iter(first_blocks)) if len(first_blocks) == 1 else None
        if lone is not None and len(self.blocks[lone]) == 1:
            # Singleton structure {first}: widen its lone block.
            self.blocks[lone].add(vertex)
            vertex_blocks[vertex] = {lone}
        else:
            bid = self._new_block({first, vertex})
            vertex_blocks[vertex] = {bid}
            first_blocks.add(bid)
            self._update_articulation(first)
        for u in nbrs[1:]:
            if not self._insert_edge(vertex, u):
                return False
        return True

    def remove_vertex(self, vertex: int, neighbors: NeighborFn) -> bool:
        """Apply "vertex left". Only non-articulation vertices can be
        removed incrementally (anything else splits the graph); the
        localized re-split runs over the vertex's single block only.
        *neighbors* is the collection-level neighbor function used by
        that re-split (filtered to the block internally)."""
        vertex_blocks = self.vertex_blocks
        bids = vertex_blocks.get(vertex)
        if bids is None or vertex in self.articulation or len(bids) != 1:
            return False
        bid = next(iter(bids))
        members = self.blocks[bid]
        if len(members) == 1:
            # Last vertex of a singleton structure.
            if len(vertex_blocks) != 1:
                return False
            del self.blocks[bid]
            del self._block_cuts[bid]
            del vertex_blocks[vertex]
            return True
        if len(members) == 2:
            other = next(m for m in members if m != vertex)
            del vertex_blocks[vertex]
            if len(vertex_blocks) == 1:
                # Two-vertex structure shrinks to a singleton block.
                members.discard(vertex)
                self._update_articulation(other)
                return True
            other_blocks = vertex_blocks[other]
            if len(other_blocks) == 1:
                return False  # `other` would be isolated: corrupt input
            del self.blocks[bid]
            del self._block_cuts[bid]
            other_blocks.discard(bid)
            self._update_articulation(other)
            return True
        # |block| >= 3: biconnected minus one vertex stays connected,
        # but may shatter into smaller blocks — one localized DFS.
        local = set(members)
        local.discard(vertex)
        components, _, new_blocks = block_cut_state(local, neighbors)
        if len(components) != 1:
            return False  # impossible for a true biconnected block
        del self.blocks[bid]
        del self._block_cuts[bid]
        del vertex_blocks[vertex]
        for member in local:
            vertex_blocks[member].discard(bid)
        for block_members in new_blocks:
            new_id = self._new_block(block_members)
            for member in block_members:
                vertex_blocks[member].add(new_id)
        for member in local:
            self._update_articulation(member)
        return True

    # -- internals ------------------------------------------------------
    def _new_block(self, members: set[int]) -> int:
        bid = self._next_id
        self._next_id += 1
        self.blocks[bid] = members
        self._block_cuts[bid] = set()
        return bid

    def _update_articulation(self, vertex: int) -> None:
        """Re-derive one vertex's articulation status from its block
        count and mirror it into the per-block cut-vertex sets."""
        bids = self.vertex_blocks[vertex]
        if len(bids) >= 2:
            self.articulation.add(vertex)
            for bid in bids:
                self._block_cuts[bid].add(vertex)
        else:
            self.articulation.discard(vertex)
            for bid in bids:
                self._block_cuts[bid].discard(vertex)

    def _insert_edge(self, v: int, u: int) -> bool:
        """Westbrook–Tarjan edge insertion: if the endpoints already
        share a block the edge is internal; otherwise every block on
        the block-cut tree path between them collapses into one."""
        vertex_blocks = self.vertex_blocks
        if vertex_blocks[v] & vertex_blocks[u]:
            return True
        path = self._tree_path_blocks(v, u)
        if path is None:
            return False
        self._merge_blocks(path)
        return True

    def _tree_path_blocks(self, v: int, u: int) -> list[int] | None:
        """Block ids on the block-cut tree path between the tree nodes
        of *v* and *u* (a vertex is a tree node only when it is an
        articulation point; otherwise its unique block stands in)."""
        articulation = self.articulation
        vertex_blocks = self.vertex_blocks
        src = ("v", v) if v in articulation else (
            "b", next(iter(vertex_blocks[v]))
        )
        dst = ("v", u) if u in articulation else (
            "b", next(iter(vertex_blocks[u]))
        )
        if src == dst:
            return []
        parent: dict[tuple[str, int], tuple[str, int] | None] = {src: None}
        queue = [src]
        head = 0
        found = False
        while head < len(queue):
            node = queue[head]
            head += 1
            if node == dst:
                found = True
                break
            kind, key = node
            if kind == "b":
                for cut in self._block_cuts[key]:
                    nxt = ("v", cut)
                    if nxt not in parent:
                        parent[nxt] = node
                        queue.append(nxt)
            else:
                for bid in vertex_blocks[key]:
                    nxt = ("b", bid)
                    if nxt not in parent:
                        parent[nxt] = node
                        queue.append(nxt)
        if not found:
            return None  # not one tree — the structure is corrupt
        path: list[int] = []
        node: tuple[str, int] | None = dst
        while node is not None:
            if node[0] == "b":
                path.append(node[1])
            node = parent[node]
        return path

    def _merge_blocks(self, bids: list[int]) -> None:
        """Collapse the given blocks into one, folding smaller blocks
        into the largest so repeated merges into a dominant block stay
        cheap (weighted-union)."""
        if len(bids) <= 1:
            return
        blocks = self.blocks
        survivor = max(bids, key=lambda b: len(blocks[b]))
        target = blocks[survivor]
        vertex_blocks = self.vertex_blocks
        changed: set[int] = set()
        for bid in bids:
            if bid == survivor:
                continue
            for member in blocks.pop(bid):
                row = vertex_blocks[member]
                row.discard(bid)
                row.add(survivor)
                target.add(member)
                changed.add(member)
            del self._block_cuts[bid]
        for member in changed:
            self._update_articulation(member)

    # -- validation (test/debug aid) ------------------------------------
    def check(self, node_set: Iterable[int], neighbors: NeighborFn) -> None:
        """Assert this structure equals a fresh full rebuild over
        *node_set* — blocks as vertex sets, articulation set, and the
        vertex→block / block→cut-vertex mirrors. O(V+E); never called
        on hot paths."""
        expected = BlockCutIndex()
        if not expected.rebuild(set(node_set), neighbors):
            raise AssertionError("check() requires a connected node set")
        mine = sorted(
            (sorted(members) for members in self.blocks.values())
        )
        theirs = sorted(
            (sorted(members) for members in expected.blocks.values())
        )
        assert mine == theirs, f"blocks diverged: {mine} != {theirs}"
        assert self.articulation == expected.articulation, (
            f"articulation diverged: {sorted(self.articulation)} != "
            f"{sorted(expected.articulation)}"
        )
        derived: dict[int, set[int]] = {}
        for bid, members in self.blocks.items():
            for vertex in members:
                derived.setdefault(vertex, set()).add(bid)
        assert derived == self.vertex_blocks, "vertex→block map diverged"
        for bid, members in self.blocks.items():
            assert self._block_cuts[bid] == (
                members & self.articulation
            ), f"cut-vertex mirror diverged for block {bid}"
