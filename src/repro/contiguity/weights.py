"""Spatial contiguity weights from polygons.

Census-tract analyses conventionally use *rook* contiguity (two tracts
are neighbors when they share a boundary edge) or *queen* contiguity
(sharing a single point suffices). This module derives both from raw
polygons via canonical-edge / canonical-vertex hashing, so a dataset
loaded from GeoJSON gets exactly the same adjacency structure that
libpysal would produce for the shapefile.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping, Sequence

from ..exceptions import InvalidAreaError
from ..geometry.polygon import Polygon

__all__ = [
    "rook_adjacency",
    "queen_adjacency",
    "validate_adjacency",
    "adjacency_to_edges",
    "edges_to_adjacency",
]


def rook_adjacency(
    polygons: Sequence[Polygon], digits: int = 9
) -> dict[int, frozenset[int]]:
    """Rook contiguity: polygons sharing at least one boundary edge.

    Edges are canonicalized by rounding vertex coordinates to *digits*
    decimal places, so polygons produced by the same tessellation (or
    the same shapefile) match despite float noise.
    """
    owners: dict[tuple, list[int]] = defaultdict(list)
    for index, polygon in enumerate(polygons):
        for edge in polygon.canonical_edges(digits):
            owners[edge].append(index)
    adjacency: dict[int, set[int]] = {i: set() for i in range(len(polygons))}
    for indices in owners.values():
        for i in range(len(indices)):
            for j in range(i + 1, len(indices)):
                adjacency[indices[i]].add(indices[j])
                adjacency[indices[j]].add(indices[i])
    return {i: frozenset(neighbors) for i, neighbors in adjacency.items()}


def queen_adjacency(
    polygons: Sequence[Polygon], digits: int = 9
) -> dict[int, frozenset[int]]:
    """Queen contiguity: polygons sharing at least one vertex."""
    owners: dict[tuple, list[int]] = defaultdict(list)
    for index, polygon in enumerate(polygons):
        for vertex in polygon.canonical_vertices(digits):
            owners[vertex].append(index)
    adjacency: dict[int, set[int]] = {i: set() for i in range(len(polygons))}
    for indices in owners.values():
        for i in range(len(indices)):
            for j in range(i + 1, len(indices)):
                adjacency[indices[i]].add(indices[j])
                adjacency[indices[j]].add(indices[i])
    return {i: frozenset(neighbors) for i, neighbors in adjacency.items()}


def validate_adjacency(adjacency: Mapping[int, frozenset[int]]) -> None:
    """Raise :class:`InvalidAreaError` unless *adjacency* is a valid
    symmetric, loop-free neighbor map over its own key set."""
    for node, neighbors in adjacency.items():
        if node in neighbors:
            raise InvalidAreaError(f"node {node} is adjacent to itself")
        for neighbor in neighbors:
            if neighbor not in adjacency:
                raise InvalidAreaError(
                    f"node {node} adjacent to unknown node {neighbor}"
                )
            if node not in adjacency[neighbor]:
                raise InvalidAreaError(
                    f"asymmetric adjacency: {node} -> {neighbor}"
                )


def adjacency_to_edges(
    adjacency: Mapping[int, frozenset[int]]
) -> set[tuple[int, int]]:
    """The undirected edge set ``{(min, max), …}`` of a neighbor map."""
    edges: set[tuple[int, int]] = set()
    for node, neighbors in adjacency.items():
        for neighbor in neighbors:
            edges.add((node, neighbor) if node < neighbor else (neighbor, node))
    return edges


def edges_to_adjacency(
    edges, nodes=None
) -> dict[int, frozenset[int]]:
    """Build a neighbor map from an undirected edge list.

    *nodes* optionally supplies isolated nodes that appear in no edge.
    """
    adjacency: dict[int, set[int]] = {}
    if nodes is not None:
        for node in nodes:
            adjacency[int(node)] = set()
    for a, b in edges:
        a, b = int(a), int(b)
        if a == b:
            raise InvalidAreaError(f"self-loop on node {a}")
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    return {node: frozenset(neighbors) for node, neighbors in adjacency.items()}
