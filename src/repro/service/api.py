"""Zero-dependency HTTP API over the durable job store.

Built on :mod:`http.server` (``ThreadingHTTPServer``) so the service
runs anywhere the library does. Every response is JSON except
``/metrics`` (Prometheus text exposition, reusing
:func:`repro.obs.exporters.prometheus_text`).

Endpoints
---------
===========================================  =================================
``POST /jobs``                               submit a job (JSON body =
                                             :class:`~repro.service.jobs.JobSpec`;
                                             ``422`` + preflight report
                                             for provably doomed specs)
``GET /jobs``                                list jobs (``?state=queued`` …)
``GET /jobs/<id>``                           job status (state machine view)
``POST /jobs/<id>/cancel``                   request cancellation
``GET /jobs/<id>/result``                    final result (404 until done)
``GET /jobs/<id>/certificate``               the solution certificate
``GET /jobs/<id>/events``                    live progress from the solve's
                                             event log (``?offset=N`` for
                                             incremental polls)
``GET /healthz``                             liveness + per-state job counts
``GET /metrics``                             Prometheus text exposition
===========================================  =================================

Every error payload is ``{"error": <message>, "code": <identifier>}``
where ``code`` is the stable machine-readable code declared by the
:mod:`repro.exceptions` class that produced it (``"bad-request"`` for
non-library validation errors), so clients match on the field instead
of parsing prose.

The server owns a background *reaper* thread: expired leases are
re-queued on a fixed cadence even when every worker is dead — the
store's liveness guarantee must not depend on worker processes.

An optional FastAPI adapter (:func:`create_fastapi_app`) exposes the
same routes for deployments that already run uvicorn; it is gated
behind the import so the stdlib path never needs the dependency.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..exceptions import InfeasibleProblemError, JobError, ReproError
from ..preflight import run_preflight
from .jobs import JobSpec
from .store import JobStore

__all__ = ["ServiceAPI", "create_fastapi_app", "serve"]

_JOB_ROUTE = re.compile(
    r"^/jobs/(?P<job_id>[A-Za-z0-9_.-]+)"
    r"(?:/(?P<action>cancel|result|certificate|events))?$"
)


def _error(error, **extra) -> dict:
    """JSON error payload carrying the stable machine-readable code.

    Every :class:`~repro.exceptions.ReproError` subclass declares a
    class-level ``code``; non-library errors (``TypeError`` on a
    malformed spec, say) fall back to ``"bad-request"`` so clients can
    always match on the field.
    """
    payload = {
        "error": str(error),
        "code": getattr(error, "code", "bad-request"),
    }
    payload.update(extra)
    return payload


class ServiceAPI:
    """Transport-independent request handling over a :class:`JobStore`.

    Each public method maps to one endpoint and returns
    ``(http_status, payload)`` with a JSON-plain payload, so the
    stdlib handler, the FastAPI adapter and the tests all share one
    implementation.
    """

    def __init__(self, store: JobStore):
        self.store = store

    # -- submit / query -------------------------------------------------
    def submit(self, payload: dict) -> tuple[int, dict]:
        """Validate, preflight-gate and enqueue one job.

        Unless the spec's config disables preflight, the dataset and
        constraints are preflighted *before* the job is journaled: a
        provably unsolvable job is rejected here with ``422`` and the
        full :class:`~repro.preflight.PreflightReport` (per-constraint
        slack numbers included) instead of occupying a worker just to
        fail deterministically.
        """
        try:
            spec = JobSpec.from_dict(payload)
            rejection = self._preflight_gate(spec)
            if rejection is not None:
                return rejection
            job = self.store.submit(spec)
        except (JobError, ReproError, TypeError, ValueError) as error:
            return 400, _error(error)
        return 201, job.as_dict()

    def _preflight_gate(self, spec: JobSpec) -> tuple[int, dict] | None:
        """422 rejection payload for a doomed spec, or None to admit."""
        if not spec.build_config().preflight:
            return None
        report = run_preflight(
            spec.build_collection(), spec.build_constraints()
        )
        try:
            report.raise_if_failed()
        except InfeasibleProblemError as error:
            return 422, _error(error, preflight=report.as_dict())
        return None

    def list_jobs(self, state: str | None = None) -> tuple[int, dict]:
        try:
            jobs = self.store.jobs(state=state)
        except JobError as error:
            return 400, _error(error)
        return 200, {
            "jobs": [job.as_dict() for job in jobs],
            "counts": self.store.counts(),
        }

    def status(self, job_id: str) -> tuple[int, dict]:
        try:
            return 200, self.store.get(job_id).as_dict()
        except JobError as error:
            return 404, _error(error)

    def cancel(self, job_id: str) -> tuple[int, dict]:
        try:
            return 200, self.store.cancel(job_id).as_dict()
        except JobError as error:
            return 404, _error(error)

    def result(self, job_id: str) -> tuple[int, dict]:
        status, payload = self.status(job_id)
        if status != 200:
            return status, payload
        result = self.store.read_result(job_id)
        if result is None:
            return 404, {
                "error": f"job {job_id!r} has no result yet",
                "state": payload["state"],
            }
        return 200, result

    def certificate(self, job_id: str) -> tuple[int, dict]:
        status, payload = self.status(job_id)
        if status != 200:
            return status, payload
        certificate = self.store.read_certificate(job_id)
        if certificate is None:
            return 404, {
                "error": f"job {job_id!r} has no certificate",
                "state": payload["state"],
            }
        return 200, certificate

    def events(self, job_id: str, offset: int = 0) -> tuple[int, dict]:
        """Live progress: the job's solve events from *offset* on."""
        status, payload = self.status(job_id)
        if status != 200:
            return status, payload
        events = self.store.read_events(job_id)
        offset = max(0, min(int(offset), len(events)))
        return 200, {
            "job_id": job_id,
            "state": payload["state"],
            "events": events[offset:],
            "next_offset": len(events),
        }

    # -- operational ----------------------------------------------------
    def healthz(self) -> tuple[int, dict]:
        return 200, {"ok": True, "counts": self.store.counts()}

    def metrics_text(self) -> str:
        """Service gauges in Prometheus text exposition."""
        from ..obs.exporters import prometheus_text

        counts = self.store.counts()
        gauges = {
            f'service_jobs{{state="{state}"}}': float(count)
            for state, count in sorted(counts.items())
        }
        return prometheus_text({"counters": {}, "gauges": gauges})

    # -- dispatch (shared by stdlib handler and tests) ------------------
    def dispatch(
        self, method: str, path: str, query: dict, body: dict | None
    ) -> tuple[int, dict] | tuple[int, str, str]:
        """Route one request; returns ``(status, json_payload)`` or
        ``(status, text, content_type)`` for non-JSON endpoints."""
        if method == "GET" and path == "/healthz":
            return self.healthz()
        if method == "GET" and path == "/metrics":
            return 200, self.metrics_text(), "text/plain; version=0.0.4"
        if path == "/jobs":
            if method == "POST":
                return self.submit(body or {})
            if method == "GET":
                return self.list_jobs(state=query.get("state"))
            return 405, {"error": f"{method} not allowed on {path}"}
        match = _JOB_ROUTE.match(path)
        if match is None:
            return 404, {"error": f"no route for {path!r}"}
        job_id, action = match.group("job_id"), match.group("action")
        if action == "cancel":
            if method != "POST":
                return 405, {"error": "cancel requires POST"}
            return self.cancel(job_id)
        if method != "GET":
            return 405, {"error": f"{method} not allowed on {path}"}
        if action is None:
            return self.status(job_id)
        if action == "result":
            return self.result(job_id)
        if action == "certificate":
            return self.certificate(job_id)
        offset = query.get("offset", "0")
        try:
            offset = int(offset)
        except ValueError:
            return 400, {"error": f"offset must be an integer, got {offset!r}"}
        return self.events(job_id, offset=offset)


class _Handler(BaseHTTPRequestHandler):
    """stdlib glue: parse → :meth:`ServiceAPI.dispatch` → JSON."""

    api: ServiceAPI  # set by serve()
    protocol_version = "HTTP/1.1"

    # Quiet by default; the CLI decides what to log.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _respond(self) -> None:
        path, _, query_text = self.path.partition("?")
        query = {}
        for pair in query_text.split("&"):
            if "=" in pair:
                key, _, value = pair.partition("=")
                query[key] = value
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            try:
                body = json.loads(self.rfile.read(length).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                self._send(400, {"error": f"request body is not JSON: {error}"})
                return
        try:
            outcome = self.api.dispatch(self.command, path, query, body)
        except Exception as error:  # noqa: BLE001 - server must survive
            self._send(500, _error(error, code="internal-error"))
            return
        if len(outcome) == 3:
            status, text, content_type = outcome
            self._send_raw(status, text.encode("utf-8"), content_type)
        else:
            status, payload = outcome
            self._send(status, payload)

    def _send(self, status: int, payload: dict) -> None:
        self._send_raw(
            status,
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
            "application/json",
        )

    def _send_raw(self, status: int, data: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    do_GET = _respond
    do_POST = _respond


class _Reaper(threading.Thread):
    """Re-queues expired leases on a fixed cadence."""

    def __init__(self, store: JobStore, interval_seconds: float):
        super().__init__(name="lease-reaper", daemon=True)
        self.store = store
        self.interval_seconds = interval_seconds
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self.store.reap_expired()
            except Exception:  # noqa: BLE001 - reaper must survive
                pass


def serve(
    store: JobStore,
    host: str = "127.0.0.1",
    port: int = 8008,
    reap_seconds: float = 1.0,
) -> tuple[ThreadingHTTPServer, _Reaper]:
    """Build the HTTP server + reaper (not yet serving).

    The caller drives ``server.serve_forever()`` (the CLI does, with
    SIGTERM wired to ``shutdown`` for graceful drain) and is
    responsible for ``reaper.stop()`` on the way out.
    """
    api = ServiceAPI(store)
    handler = type("Handler", (_Handler,), {"api": api})
    server = ThreadingHTTPServer((host, port), handler)
    reaper = _Reaper(store, reap_seconds)
    reaper.start()
    return server, reaper


def create_fastapi_app(store: JobStore):
    """The same API as a FastAPI app, for uvicorn deployments.

    Requires the optional ``fastapi`` extra; raises a clear error when
    it is not installed (the stdlib server needs nothing).
    """
    try:
        from fastapi import FastAPI, Request
        from fastapi.responses import PlainTextResponse, JSONResponse
    except ImportError as error:  # pragma: no cover - optional extra
        raise ReproError(
            "FastAPI is not installed; use the stdlib server "
            "(python -m repro serve) or install the 'service' extra"
        ) from error

    api = ServiceAPI(store)
    app = FastAPI(title="repro solve service")

    def _json(outcome) -> JSONResponse:
        status, payload = outcome
        return JSONResponse(payload, status_code=status)

    @app.get("/healthz")
    def healthz():
        return _json(api.healthz())

    @app.get("/metrics", response_class=PlainTextResponse)
    def metrics():
        return api.metrics_text()

    @app.post("/jobs")
    async def submit(request: Request):
        return _json(api.submit(await request.json()))

    @app.get("/jobs")
    def list_jobs(state: str | None = None):
        return _json(api.list_jobs(state=state))

    @app.get("/jobs/{job_id}")
    def status(job_id: str):
        return _json(api.status(job_id))

    @app.post("/jobs/{job_id}/cancel")
    def cancel(job_id: str):
        return _json(api.cancel(job_id))

    @app.get("/jobs/{job_id}/result")
    def result(job_id: str):
        return _json(api.result(job_id))

    @app.get("/jobs/{job_id}/certificate")
    def certificate(job_id: str):
        return _json(api.certificate(job_id))

    @app.get("/jobs/{job_id}/events")
    def events(job_id: str, offset: int = 0):
        return _json(api.events(job_id, offset=offset))

    return app
