"""Zero-dependency HTTP API over the durable job store.

Built on :mod:`http.server` (``ThreadingHTTPServer``) so the service
runs anywhere the library does. Every response is JSON except
``/metrics`` (Prometheus text exposition, reusing
:func:`repro.obs.exporters.prometheus_text`).

Endpoints
---------
===========================================  =================================
``POST /jobs``                               submit a job (JSON body =
                                             :class:`~repro.service.jobs.JobSpec`;
                                             ``422`` + preflight report
                                             for provably doomed specs)
``GET /jobs``                                list jobs (``?state=queued`` …)
``GET /jobs/<id>``                           job status (state machine view)
``POST /jobs/<id>/cancel``                   request cancellation
``GET /jobs/<id>/result``                    final result (404 until done)
``GET /jobs/<id>/certificate``               the solution certificate
``GET /jobs/<id>/events``                    live progress from the solve's
                                             event log (``?offset=N`` for
                                             incremental polls)
``GET /jobs/<id>/metrics``                   per-job Prometheus text: the
                                             solve's live metrics snapshot
                                             plus progress/health gauges
``GET /healthz``                             liveness + per-state job counts
``GET /metrics``                             fleet Prometheus text: per-state
                                             gauges, worker/lease/retry/
                                             quarantine counters, lease-age
                                             and queue-wait gauges,
                                             solve/phase-duration histograms
===========================================  =================================

Every error payload is ``{"error": <message>, "code": <identifier>}``
where ``code`` is the stable machine-readable code declared by the
:mod:`repro.exceptions` class that produced it (``"bad-request"`` for
non-library validation errors), so clients match on the field instead
of parsing prose.

The server owns a background *reaper* thread: expired leases are
re-queued on a fixed cadence even when every worker is dead — the
store's liveness guarantee must not depend on worker processes. The
same thread runs the stall watchdog: every sweep classifies each
active job with :class:`repro.obs.health.StallDetector` and journals
the verdict (a ``health`` record, surfaced in job status and firing
the ``service.stalled`` checkpoint on a stall).

An optional FastAPI adapter (:func:`create_fastapi_app`) exposes the
same routes for deployments that already run uvicorn; it is gated
behind the import so the stdlib path never needs the dependency.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..exceptions import InfeasibleProblemError, JobError, ReproError
from ..obs.exporters import final_metrics_snapshot, prometheus_text
from ..obs.health import HealthState, StallDetector
from ..obs.metrics import MetricsRegistry
from ..obs.progress import ProgressModel, weights_for_spec
from ..preflight import run_preflight
from .jobs import JobSpec, JobState
from .store import JobStore

__all__ = ["ServiceAPI", "create_fastapi_app", "health_sweep", "serve"]

_JOB_ROUTE = re.compile(
    r"^/jobs/(?P<job_id>[A-Za-z0-9_.-]+)"
    r"(?:/(?P<action>cancel|result|certificate|events|metrics))?$"
)

_PROM_CONTENT_TYPE = "text/plain; version=0.0.4"

# HELP catalogue for the fleet exposition (escaped on render).
_FLEET_HELP = {
    "service_jobs": "Jobs per state, from journal replay.",
    "service_workers": "Distinct workers holding an active lease.",
    "service_leases_total": "Leases granted since the journal began.",
    "service_retries_total": "Failure/reap requeues (drain requeues excluded).",
    "service_quarantines_total": "Poison jobs dead-lettered on a repeated fault signature.",
    "service_completions_total": "Jobs finalized COMPLETED.",
    "service_failures_total": "Jobs finalized FAILED.",
    "service_cancellations_total": "Jobs finalized CANCELLED.",
    "service_dead_total": "Jobs dead-lettered.",
    "service_heartbeats_total": "Lease renewals journaled.",
    "service_stalled_jobs": "Active jobs currently classified stalled.",
    "service_lease_age_seconds": "Oldest active lease's age (now - last renewal).",
    "service_queue_oldest_seconds": "Age of the oldest queued job.",
    "service_solve_seconds": "RUNNING-to-terminal wall clock per job.",
    "service_queue_wait_seconds": "Submit/requeue-to-lease wall clock per lease.",
    "service_phase_seconds": "Solver phase wall clock of completed jobs.",
}

_JOB_HELP = {
    "job_progress_fraction": "Phase-weighted completion in [0, 1].",
    "job_progress_eta_seconds": "Naive proportional ETA (-1 when unknown).",
    "job_elapsed_seconds": "Wall clock since the solve's run.start.",
    "job_events_total": "Events in the solve's event log.",
    "job_state": "1 on the job's current state label.",
    "job_health": "1 on the watchdog's current classification.",
}


def _error(error, **extra) -> dict:
    """JSON error payload carrying the stable machine-readable code.

    Every :class:`~repro.exceptions.ReproError` subclass declares a
    class-level ``code``; non-library errors (``TypeError`` on a
    malformed spec, say) fall back to ``"bad-request"`` so clients can
    always match on the field.
    """
    payload = {
        "error": str(error),
        "code": getattr(error, "code", "bad-request"),
    }
    payload.update(extra)
    return payload


class ServiceAPI:
    """Transport-independent request handling over a :class:`JobStore`.

    Each public method maps to one endpoint and returns
    ``(http_status, payload)`` with a JSON-plain payload, so the
    stdlib handler, the FastAPI adapter and the tests all share one
    implementation.
    """

    def __init__(self, store: JobStore):
        self.store = store
        # job_id -> {phase: seconds} of completed jobs; a completed
        # job's event log is immutable, so one read per job suffices.
        self._phase_cache: dict[str, dict[str, float]] = {}

    # -- submit / query -------------------------------------------------
    def submit(self, payload: dict) -> tuple[int, dict]:
        """Validate, preflight-gate and enqueue one job.

        Unless the spec's config disables preflight, the dataset and
        constraints are preflighted *before* the job is journaled: a
        provably unsolvable job is rejected here with ``422`` and the
        full :class:`~repro.preflight.PreflightReport` (per-constraint
        slack numbers included) instead of occupying a worker just to
        fail deterministically.
        """
        try:
            spec = JobSpec.from_dict(payload)
            rejection = self._preflight_gate(spec)
            if rejection is not None:
                return rejection
            job = self.store.submit(spec)
        except (JobError, ReproError, TypeError, ValueError) as error:
            return 400, _error(error)
        return 201, job.as_dict()

    def _preflight_gate(self, spec: JobSpec) -> tuple[int, dict] | None:
        """422 rejection payload for a doomed spec, or None to admit."""
        if not spec.build_config().preflight:
            return None
        report = run_preflight(
            spec.build_collection(), spec.build_constraints()
        )
        try:
            report.raise_if_failed()
        except InfeasibleProblemError as error:
            return 422, _error(error, preflight=report.as_dict())
        return None

    def list_jobs(self, state: str | None = None) -> tuple[int, dict]:
        try:
            jobs = self.store.jobs(state=state)
        except JobError as error:
            return 400, _error(error)
        return 200, {
            "jobs": [job.as_dict() for job in jobs],
            "counts": self.store.counts(),
        }

    def status(self, job_id: str) -> tuple[int, dict]:
        try:
            return 200, self.store.get(job_id).as_dict()
        except JobError as error:
            return 404, _error(error)

    def cancel(self, job_id: str) -> tuple[int, dict]:
        try:
            return 200, self.store.cancel(job_id).as_dict()
        except JobError as error:
            return 404, _error(error)

    def result(self, job_id: str) -> tuple[int, dict]:
        status, payload = self.status(job_id)
        if status != 200:
            return status, payload
        result = self.store.read_result(job_id)
        if result is None:
            return 404, {
                "error": f"job {job_id!r} has no result yet",
                "state": payload["state"],
            }
        return 200, result

    def certificate(self, job_id: str) -> tuple[int, dict]:
        status, payload = self.status(job_id)
        if status != 200:
            return status, payload
        certificate = self.store.read_certificate(job_id)
        if certificate is None:
            return 404, {
                "error": f"job {job_id!r} has no certificate",
                "state": payload["state"],
            }
        return 200, certificate

    def events(self, job_id: str, offset: int = 0) -> tuple[int, dict]:
        """Live progress: the job's solve events from *offset* on."""
        status, payload = self.status(job_id)
        if status != 200:
            return status, payload
        events = self.store.read_events(job_id)
        offset = max(0, min(int(offset), len(events)))
        return 200, {
            "job_id": job_id,
            "state": payload["state"],
            "events": events[offset:],
            "next_offset": len(events),
        }

    def job_metrics(self, job_id: str) -> tuple[int, dict] | tuple[int, str, str]:
        """Per-job Prometheus text: the solve's live metrics snapshot
        (the last ``metrics.snapshot`` in its event log) merged with
        progress, state and health gauges derived client-visibly from
        the same events."""
        status, payload = self.status(job_id)
        if status != 200:
            return status, payload
        events = self.store.read_events(job_id)
        snapshot = final_metrics_snapshot(events) or {}
        merged = {
            "counters": dict(snapshot.get("counters") or {}),
            "gauges": dict(snapshot.get("gauges") or {}),
            "histograms": dict(snapshot.get("histograms") or {}),
        }
        active = payload["state"] in (JobState.LEASED, JobState.RUNNING)
        model = ProgressModel(weights_for_spec(payload.get("spec")))
        progress = model.snapshot(
            events, now=self.store.clock() if active else None
        )
        extra = MetricsRegistry()
        extra.gauge("job_progress_fraction").set(progress["fraction"])
        eta = progress["eta_seconds"]
        extra.gauge("job_progress_eta_seconds").set(
            eta if eta is not None else -1.0
        )
        if progress["elapsed_seconds"] is not None:
            extra.gauge("job_elapsed_seconds").set(
                progress["elapsed_seconds"]
            )
        extra.counter("job_events_total").inc(len(events))
        extra.gauge("job_state", state=payload["state"]).set(1.0)
        if payload.get("health"):
            extra.gauge("job_health", health=payload["health"]).set(1.0)
        if progress["phase"]:
            extra.gauge(
                "job_progress_phase", phase=progress["phase"]
            ).set(1.0)
        extra_view = extra.snapshot()
        for kind in ("counters", "gauges", "histograms"):
            merged[kind].update(extra_view.get(kind, {}))
        text = prometheus_text(merged, help_text=_JOB_HELP)
        return 200, text, _PROM_CONTENT_TYPE

    # -- operational ----------------------------------------------------
    def healthz(self) -> tuple[int, dict]:
        return 200, {"ok": True, "counts": self.store.counts()}

    def metrics_text(self) -> str:
        """Fleet metrics in Prometheus text exposition.

        Everything routes through a real :class:`MetricsRegistry`, so
        label values (states, worker ids) are escaped per the text
        format — never interpolated raw into metric keys.
        """
        registry = MetricsRegistry()
        for state, count in sorted(self.store.counts().items()):
            registry.gauge("service_jobs", state=state).set(count)
        stats = self.store.fleet_stats()
        for name in (
            "leases",
            "retries",
            "quarantines",
            "completions",
            "failures",
            "cancellations",
            "dead",
            "heartbeats",
        ):
            registry.counter(f"service_{name}_total").set_to(stats[name])
        now = self.store.clock()
        workers: set[str] = set()
        lease_age = 0.0
        stalled = 0
        oldest_queued = 0.0
        for job in self.store.jobs():
            if job.state == JobState.QUEUED:
                oldest_queued = max(oldest_queued, now - job.created_at)
            elif job.state in (JobState.LEASED, JobState.RUNNING):
                if job.worker_id:
                    workers.add(job.worker_id)
                lease_age = max(lease_age, now - job.updated_at)
                if job.health == HealthState.STALLED:
                    stalled += 1
        registry.gauge("service_workers").set(len(workers))
        registry.gauge("service_stalled_jobs").set(stalled)
        registry.gauge("service_lease_age_seconds").set(lease_age)
        registry.gauge("service_queue_oldest_seconds").set(oldest_queued)
        for seconds in stats["solve_durations"]:
            registry.histogram("service_solve_seconds").observe(seconds)
        for seconds in stats["queue_waits"]:
            registry.histogram("service_queue_wait_seconds").observe(seconds)
        for phase, seconds in self._completed_phase_seconds():
            registry.histogram(
                "service_phase_seconds", phase=phase
            ).observe(seconds)
        return prometheus_text(registry.snapshot(), help_text=_FLEET_HELP)

    def _completed_phase_seconds(self):
        """``(phase, seconds)`` samples over completed jobs' final
        metric snapshots (one event-log read per job, then cached)."""
        samples: list[tuple[str, float]] = []
        for job in self.store.jobs(state=JobState.COMPLETED):
            phases = self._phase_cache.get(job.job_id)
            if phases is None:
                phases = {}
                snapshot = final_metrics_snapshot(
                    self.store.read_events(job.job_id)
                )
                for key, value in (
                    (snapshot or {}).get("counters") or {}
                ).items():
                    if key.startswith('phase_seconds{phase="'):
                        phases[key[len('phase_seconds{phase="'):-2]] = float(
                            value
                        )
                self._phase_cache[job.job_id] = phases
            samples.extend(phases.items())
        return samples

    # -- dispatch (shared by stdlib handler and tests) ------------------
    def dispatch(
        self, method: str, path: str, query: dict, body: dict | None
    ) -> tuple[int, dict] | tuple[int, str, str]:
        """Route one request; returns ``(status, json_payload)`` or
        ``(status, text, content_type)`` for non-JSON endpoints."""
        if method == "GET" and path == "/healthz":
            return self.healthz()
        if method == "GET" and path == "/metrics":
            return 200, self.metrics_text(), _PROM_CONTENT_TYPE
        if path == "/jobs":
            if method == "POST":
                return self.submit(body or {})
            if method == "GET":
                return self.list_jobs(state=query.get("state"))
            return 405, {"error": f"{method} not allowed on {path}"}
        match = _JOB_ROUTE.match(path)
        if match is None:
            return 404, {"error": f"no route for {path!r}"}
        job_id, action = match.group("job_id"), match.group("action")
        if action == "cancel":
            if method != "POST":
                return 405, {"error": "cancel requires POST"}
            return self.cancel(job_id)
        if method != "GET":
            return 405, {"error": f"{method} not allowed on {path}"}
        if action is None:
            return self.status(job_id)
        if action == "result":
            return self.result(job_id)
        if action == "certificate":
            return self.certificate(job_id)
        if action == "metrics":
            return self.job_metrics(job_id)
        offset = query.get("offset", "0")
        try:
            offset = int(offset)
        except ValueError:
            return 400, {"error": f"offset must be an integer, got {offset!r}"}
        return self.events(job_id, offset=offset)


class _Handler(BaseHTTPRequestHandler):
    """stdlib glue: parse → :meth:`ServiceAPI.dispatch` → JSON."""

    api: ServiceAPI  # set by serve()
    protocol_version = "HTTP/1.1"

    # Quiet by default; the CLI decides what to log.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _respond(self) -> None:
        path, _, query_text = self.path.partition("?")
        query = {}
        for pair in query_text.split("&"):
            if "=" in pair:
                key, _, value = pair.partition("=")
                query[key] = value
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            try:
                body = json.loads(self.rfile.read(length).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                self._send(400, {"error": f"request body is not JSON: {error}"})
                return
        try:
            outcome = self.api.dispatch(self.command, path, query, body)
        except Exception as error:  # noqa: BLE001 - server must survive
            self._send(500, _error(error, code="internal-error"))
            return
        if len(outcome) == 3:
            status, text, content_type = outcome
            self._send_raw(status, text.encode("utf-8"), content_type)
        else:
            status, payload = outcome
            self._send(status, payload)

    def _send(self, status: int, payload: dict) -> None:
        self._send_raw(
            status,
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
            "application/json",
        )

    def _send_raw(self, status: int, data: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    do_GET = _respond
    do_POST = _respond


def health_sweep(store: JobStore, detector: StallDetector) -> list[tuple]:
    """One watchdog pass: classify every active job and journal the
    verdicts that changed. Returns ``(job_id, state, reason)`` per
    classified job (tests call this synchronously; the server's reaper
    thread calls it every interval)."""
    verdicts = []
    for job in store.jobs():
        if job.state not in (JobState.LEASED, JobState.RUNNING):
            continue
        state, reason = detector.classify(
            job.as_dict(), store.read_events(job.job_id)
        )
        store.record_health(job.job_id, state, reason)
        verdicts.append((job.job_id, state, reason))
    return verdicts


class _Reaper(threading.Thread):
    """Re-queues expired leases and runs the stall watchdog, on one
    fixed cadence."""

    def __init__(
        self,
        store: JobStore,
        interval_seconds: float,
        detector: StallDetector | None = None,
    ):
        super().__init__(name="lease-reaper", daemon=True)
        self.store = store
        self.interval_seconds = interval_seconds
        self.detector = detector
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self.store.reap_expired()
            except Exception:  # noqa: BLE001 - reaper must survive
                pass
            if self.detector is None:
                continue
            try:
                health_sweep(self.store, self.detector)
            except Exception:  # noqa: BLE001 - watchdog must survive
                pass


def serve(
    store: JobStore,
    host: str = "127.0.0.1",
    port: int = 8008,
    reap_seconds: float = 1.0,
    stall_seconds: float = 10.0,
) -> tuple[ThreadingHTTPServer, _Reaper]:
    """Build the HTTP server + reaper/watchdog thread (not yet
    serving).

    The caller drives ``server.serve_forever()`` (the CLI does, with
    SIGTERM wired to ``shutdown`` for graceful drain) and is
    responsible for ``reaper.stop()`` on the way out. *stall_seconds*
    is the watchdog's silence threshold (``0`` disables the watchdog);
    the sweep cadence is *reap_seconds*, so a dead worker's job is
    reported STALLED within one interval of crossing the threshold.
    """
    api = ServiceAPI(store)
    handler = type("Handler", (_Handler,), {"api": api})
    server = ThreadingHTTPServer((host, port), handler)
    detector = (
        StallDetector(
            stall_after_seconds=stall_seconds, clock=store.clock
        )
        if stall_seconds > 0
        else None
    )
    reaper = _Reaper(store, reap_seconds, detector=detector)
    reaper.start()
    return server, reaper


def create_fastapi_app(store: JobStore):
    """The same API as a FastAPI app, for uvicorn deployments.

    Requires the optional ``fastapi`` extra; raises a clear error when
    it is not installed (the stdlib server needs nothing).
    """
    try:
        from fastapi import FastAPI, Request
        from fastapi.responses import PlainTextResponse, JSONResponse
    except ImportError as error:  # pragma: no cover - optional extra
        raise ReproError(
            "FastAPI is not installed; use the stdlib server "
            "(python -m repro serve) or install the 'service' extra"
        ) from error

    api = ServiceAPI(store)
    app = FastAPI(title="repro solve service")

    def _json(outcome) -> JSONResponse:
        status, payload = outcome
        return JSONResponse(payload, status_code=status)

    @app.get("/healthz")
    def healthz():
        return _json(api.healthz())

    @app.get("/metrics")
    def metrics():
        return PlainTextResponse(
            api.metrics_text(), media_type=_PROM_CONTENT_TYPE
        )

    @app.post("/jobs")
    async def submit(request: Request):
        return _json(api.submit(await request.json()))

    @app.get("/jobs")
    def list_jobs(state: str | None = None):
        return _json(api.list_jobs(state=state))

    @app.get("/jobs/{job_id}")
    def status(job_id: str):
        return _json(api.status(job_id))

    @app.post("/jobs/{job_id}/cancel")
    def cancel(job_id: str):
        return _json(api.cancel(job_id))

    @app.get("/jobs/{job_id}/result")
    def result(job_id: str):
        return _json(api.result(job_id))

    @app.get("/jobs/{job_id}/certificate")
    def certificate(job_id: str):
        return _json(api.certificate(job_id))

    @app.get("/jobs/{job_id}/events")
    def events(job_id: str, offset: int = 0):
        return _json(api.events(job_id, offset=offset))

    @app.get("/jobs/{job_id}/metrics")
    def job_metrics(job_id: str):
        outcome = api.job_metrics(job_id)
        if len(outcome) == 3:
            status, text, content_type = outcome
            return PlainTextResponse(
                text, status_code=status, media_type=content_type
            )
        return _json(outcome)

    return app
