"""Priority selection over queued jobs.

Kept separate from the store so the dispatch order is trivially
testable: :func:`select_next` is a pure function from a set of queued
jobs and a wall-clock instant to the job a worker should lease next.

Ordering contract
-----------------
1. Jobs inside a retry backoff window (``now < not_before``) are not
   runnable yet and are skipped entirely.
2. Higher ``priority`` wins.
3. Ties break by submission order (``created_seq``), i.e. FIFO within
   a priority class — so equal-priority jobs cannot starve each other.

The deadline in a job's spec does **not** reorder the queue; it bounds
the solve itself once leased. (Earliest-deadline-first would let a
late flood of tight-deadline jobs starve patient ones; operators who
want urgency express it through ``priority``.)
"""

from __future__ import annotations

from typing import Iterable

from .jobs import Job, JobState

__all__ = ["runnable", "select_next"]


def runnable(jobs: Iterable[Job], now: float) -> list[Job]:
    """The queued jobs eligible to lease at *now*, in dispatch order."""
    eligible = [
        job
        for job in jobs
        if job.state == JobState.QUEUED and now >= job.not_before
    ]
    eligible.sort(key=lambda job: (-job.spec.priority, job.created_seq))
    return eligible


def select_next(jobs: Iterable[Job], now: float) -> Job | None:
    """The single job a worker should lease next, or ``None``."""
    ordered = runnable(jobs, now)
    return ordered[0] if ordered else None
