"""Job model of the durable solve service: specs, states, transitions.

A *job* is one requested solve travelling through the state machine::

    QUEUED ──▶ LEASED ──▶ RUNNING ──▶ COMPLETED
      ▲          │           │   └──▶ FAILED      (permanent error)
      │          │           │
      └──────────┴───────────┘──▶ CANCELLED      (operator request)
      (lease expiry / transient     └─ or ─▶ DEAD (attempts exhausted)
       failure, via RetryPolicy)

Every arrow is validated against :data:`ALLOWED_TRANSITIONS`; the
store refuses anything else, so a replayed journal can never fold into
a state the machine cannot reach. Four states are terminal
(:data:`TERMINAL_STATES`) — the chaos invariant of the service is that
*every* submitted job ends in one of them, no matter which process
died when.

:class:`JobSpec` is the durable description of what to solve — dataset
coordinates, constraint strings, :class:`repro.fact.FaCTConfig`
overrides, priority, per-job deadline, optional retry override. It is
plain JSON-serializable data: the spec travels in the journal's submit
record, so journal replay alone reconstructs every job without
consulting secondary files.

:class:`Job` is the folded runtime view: current state, lease, attempt
count, timestamps. It is what the store hands to workers and the API.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import JobError
from ..runtime.retry import RetryPolicy

__all__ = [
    "ALLOWED_TRANSITIONS",
    "ACTIVE_STATES",
    "Job",
    "JobSpec",
    "JobState",
    "TERMINAL_STATES",
]


class JobState:
    """The job lifecycle states (plain strings — they live in JSON)."""

    QUEUED = "queued"
    LEASED = "leased"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"
    DEAD = "dead"

    ALL = (QUEUED, LEASED, RUNNING, COMPLETED, FAILED, CANCELLED, DEAD)

    @classmethod
    def validate(cls, value: str) -> str:
        value = str(value).lower()
        if value not in cls.ALL:
            raise JobError(
                f"unknown job state {value!r}; expected one of {cls.ALL}"
            )
        return value


TERMINAL_STATES = frozenset(
    (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED, JobState.DEAD)
)
"""States a job never leaves. The service's liveness contract: every
job reaches one of these."""

ACTIVE_STATES = frozenset(
    (JobState.QUEUED, JobState.LEASED, JobState.RUNNING)
)
"""States still owed work."""

ALLOWED_TRANSITIONS: dict[str, frozenset[str]] = {
    JobState.QUEUED: frozenset((JobState.LEASED, JobState.CANCELLED)),
    JobState.LEASED: frozenset(
        (
            JobState.RUNNING,
            JobState.QUEUED,  # lease expired / drained before starting
            JobState.CANCELLED,
            JobState.FAILED,
            JobState.DEAD,
        )
    ),
    JobState.RUNNING: frozenset(
        (
            JobState.COMPLETED,
            JobState.FAILED,
            JobState.QUEUED,  # lease expired / transient failure / drain
            JobState.CANCELLED,
            JobState.DEAD,
        )
    ),
    JobState.COMPLETED: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
    JobState.DEAD: frozenset(),
}


def check_transition(job_id: str, current: str, target: str) -> None:
    """Raise :class:`repro.exceptions.JobError` unless ``current →
    target`` is a legal arrow of the state machine."""
    if target not in ALLOWED_TRANSITIONS.get(current, frozenset()):
        raise JobError(
            f"job {job_id!r}: illegal transition {current!r} -> {target!r}"
        )


@dataclass
class JobSpec:
    """What to solve, durably. Everything here is JSON-plain.

    Parameters
    ----------
    dataset / scale / dataset_seed:
        Coordinates into :func:`repro.data.load_dataset`.
    constraints:
        Compact constraint strings (``AGG:ATTR:LOWER:UPPER``, ``-`` for
        an open bound — the CLI grammar). Empty means the schema's
        default constraint set.
    config:
        :class:`repro.fact.FaCTConfig` overrides (``rng_seed``,
        ``n_jobs``, ``tabu_portfolio``, ``lease_seconds``, …). Validated
        at submit time so a bad config is rejected before it is queued.
    priority:
        Higher runs first; ties go to submission order.
    deadline_seconds:
        Per-job wall-clock :class:`repro.runtime.Budget`. A resumed
        attempt only gets the time earlier attempts left unconsumed
        (the checkpoint carries the spent seconds).
    retry:
        Optional :class:`repro.runtime.RetryPolicy` override as a dict;
        ``None`` uses the service's policy.
    label:
        Free-form operator note.
    """

    dataset: str = "2k"
    scale: float = 1.0
    dataset_seed: int | None = None
    constraints: list[str] = field(default_factory=list)
    config: dict = field(default_factory=dict)
    priority: int = 0
    deadline_seconds: float | None = None
    retry: dict | None = None
    label: str = ""

    def __post_init__(self) -> None:
        self.dataset = str(self.dataset)
        self.scale = float(self.scale)
        if self.scale <= 0:
            raise JobError(f"scale must be positive, got {self.scale!r}")
        self.constraints = [str(c) for c in self.constraints]
        if not isinstance(self.config, dict):
            raise JobError(
                f"config must be a dict of FaCTConfig overrides, got "
                f"{self.config!r}"
            )
        self.priority = int(self.priority)
        if self.deadline_seconds is not None:
            self.deadline_seconds = float(self.deadline_seconds)
            if self.deadline_seconds <= 0:
                raise JobError(
                    "deadline_seconds must be positive or None, got "
                    f"{self.deadline_seconds!r}"
                )
        # Fail fast on impossible specs: a malformed config or retry
        # override must bounce at submit, not after a worker leased it.
        self.build_config()
        self.retry_policy()

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def build_config(self, **overrides):
        """A validated :class:`repro.fact.FaCTConfig` for this job.

        *overrides* (checkpoint/trace paths, certification level) win
        over the spec's own ``config`` entries; the per-job deadline
        rides in unless the spec's config pins its own.
        """
        from ..fact.config import FaCTConfig

        options = dict(self.config)
        if self.deadline_seconds is not None:
            options.setdefault("deadline_seconds", self.deadline_seconds)
        options.update(overrides)
        try:
            return FaCTConfig(**options)
        except TypeError as error:
            raise JobError(f"invalid job config: {error}") from error

    def retry_policy(self, default: RetryPolicy | None = None) -> RetryPolicy | None:
        """The job's retry override, or *default*."""
        if self.retry is None:
            return default
        return RetryPolicy.from_dict(self.retry)

    def build_collection(self):
        """Load the job's area collection from the dataset registry."""
        from ..data.datasets import load_dataset

        return load_dataset(
            self.dataset, scale=self.scale, seed=self.dataset_seed
        )

    def build_constraints(self):
        """Parse the constraint strings (empty = schema defaults)."""
        from ..core.constraints import ConstraintSet

        if not self.constraints:
            from ..data.schema import default_constraints

            return ConstraintSet(default_constraints())
        from ..__main__ import parse_constraint

        return ConstraintSet(
            [parse_constraint(text) for text in self.constraints]
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "scale": self.scale,
            "dataset_seed": self.dataset_seed,
            "constraints": list(self.constraints),
            "config": dict(self.config),
            "priority": self.priority,
            "deadline_seconds": self.deadline_seconds,
            "retry": dict(self.retry) if self.retry is not None else None,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        if not isinstance(payload, dict):
            raise JobError(f"job spec must be an object, got {payload!r}")
        known = {
            name: payload[name]
            for name in (
                "dataset",
                "scale",
                "dataset_seed",
                "constraints",
                "config",
                "priority",
                "deadline_seconds",
                "retry",
                "label",
            )
            if name in payload and payload[name] is not None
        }
        # Empty-list / empty-dict defaults still apply when the payload
        # carried explicit nulls.
        return cls(**known)


@dataclass
class Job:
    """The folded runtime view of one job (journal replay output)."""

    job_id: str
    spec: JobSpec
    state: str = JobState.QUEUED
    attempts: int = 0
    worker_id: str | None = None
    lease_expires_at: float | None = None
    not_before: float = 0.0
    created_at: float = 0.0
    updated_at: float = 0.0
    created_seq: int = 0
    cancel_requested: bool = False
    error: str | None = None
    detail: str | None = None
    result_status: str | None = None
    fault_signature: str | None = None
    # Watchdog verdict (healthy/slow/stalled) — journal `health` kind.
    health: str | None = None
    health_detail: str | None = None
    # When the current RUNNING stretch started; feeds the fleet
    # solve-duration histogram at the terminal transition.
    running_since: float | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def lease_expired(self, now: float) -> bool:
        return (
            self.state in (JobState.LEASED, JobState.RUNNING)
            and self.lease_expires_at is not None
            and now > self.lease_expires_at
        )

    def as_dict(self) -> dict:
        """The API/CLI view of this job."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "attempts": self.attempts,
            "worker_id": self.worker_id,
            "lease_expires_at": self.lease_expires_at,
            "not_before": self.not_before,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
            "detail": self.detail,
            "result_status": self.result_status,
            "fault_signature": self.fault_signature,
            "health": self.health,
            "health_detail": self.health_detail,
            "priority": self.spec.priority,
            "label": self.spec.label,
            "spec": self.spec.as_dict(),
        }
