"""``python -m repro.service`` — the service CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
