"""Lease heartbeating for service workers.

A worker that leased a job runs the solve on its main thread; a
:class:`LeaseKeeper` daemon thread beats alongside it, renewing the
lease against the :class:`~repro.service.store.JobStore` every
``heartbeat_seconds``. The heartbeat interval must be comfortably
shorter than the lease (FaCTConfig validates ``heartbeat_seconds <
lease_seconds``), so a healthy worker never lets its lease lapse,
while a SIGKILLed or wedged one stops beating and loses the lease
within one lease window — at which point the reaper re-queues the job
for another worker to resume.

The keeper is also the worker's cancellation nerve: it observes the
store on every beat, and when the job has a pending cancel request —
or the lease was lost to another owner — it cancels the solve's
:class:`repro.runtime.CancellationToken`. The budgeted solver notices
at its next checkpoint, snapshots best-so-far, and unwinds; the worker
then finalizes (or, on a lost lease, quietly discards its work, since
the new owner's result is the one that counts).
"""

from __future__ import annotations

import threading

from ..exceptions import JobError

__all__ = ["LeaseKeeper"]


class LeaseKeeper:
    """Background heartbeat for one leased job.

    Parameters
    ----------
    store:
        The shared :class:`~repro.service.store.JobStore`.
    job_id / worker_id:
        The lease to keep alive.
    heartbeat_seconds:
        Beat interval; must be positive.
    token:
        The running solve's :class:`repro.runtime.CancellationToken`;
        cancelled when the store says stop (cancel request or lost
        lease).

    Use as a context manager around the solve::

        with LeaseKeeper(store, job.job_id, worker_id, 1.0, token) as keeper:
            result = fact.solve(...)
        if keeper.lease_lost: ...      # discard result
        if keeper.cancel_observed: ... # finalize CANCELLED
    """

    def __init__(self, store, job_id, worker_id, heartbeat_seconds, token):
        if heartbeat_seconds <= 0:
            raise JobError(
                f"heartbeat_seconds must be positive, got {heartbeat_seconds!r}"
            )
        self.store = store
        self.job_id = job_id
        self.worker_id = worker_id
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.token = token
        self.lease_lost = False
        self.cancel_observed = False
        self.beats = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-{job_id}", daemon=True
        )

    # ------------------------------------------------------------------
    def start(self) -> "LeaseKeeper":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=self.heartbeat_seconds * 4 + 1.0)

    def __enter__(self) -> "LeaseKeeper":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def beat_once(self) -> bool:
        """One heartbeat: renew, observe cancellation. False = stop."""
        try:
            job = self.store.renew(self.job_id, self.worker_id)
        except JobError:
            # Reaped, re-leased to someone else, or finalized behind
            # our back. Our result must not be published.
            self.lease_lost = True
            self.token.cancel()
            return False
        self.beats += 1
        if job.cancel_requested:
            self.cancel_observed = True
            self.token.cancel()
            return False
        return True

    def _run(self) -> None:
        while not self._stop.wait(self.heartbeat_seconds):
            if not self.beat_once():
                return
