"""The service worker: lease a job, solve it, survive anything.

One :class:`ServiceWorker` loops: claim the next runnable job from the
:class:`~repro.service.store.JobStore`, mark it RUNNING, and execute
the solve through :class:`repro.fact.FaCT` with the full resilience
stack wired in:

- **checkpointing** — the solve writes its
  :class:`~repro.fact.checkpointing.SolveLedger` into the job
  directory, so *any* later attempt (same worker or another, after a
  crash, SIGKILL or drain) resumes from completed work units and
  produces a **bit-identical** partition;
- **lease heartbeats** — a :class:`~repro.service.lease.LeaseKeeper`
  thread renews the lease while solving and cancels the solve's
  :class:`repro.runtime.CancellationToken` when the job is cancelled
  or the lease is lost;
- **budgets** — a per-job deadline from the spec becomes a
  :class:`repro.runtime.Budget`; a resumed attempt only gets the
  seconds earlier attempts left unconsumed (read from the checkpoint);
- **event log** — the solve's :class:`repro.obs.SolveTelemetry`
  appends to ``events.jsonl`` in the job directory, which the HTTP
  API streams as live progress;
- **certification** — unless the spec opts out, completion writes an
  independently validated :class:`repro.certify.Certificate` next to
  the result.

Failure routing: deterministic rejections (infeasible query, malformed
spec, certification veto) fail the job permanently — retrying a
deterministic solve reproduces the same answer. Everything else
(worker crash, OS error, poisoned pool) is retryable and goes back
through the store's :class:`repro.runtime.RetryPolicy` — unless two
consecutive attempts crash with the same :func:`fault_signature`, in
which case the store quarantines the poison job straight to DEAD
without burning the remaining retry budget.

Graceful drain: :meth:`ServiceWorker.drain` (wired to SIGTERM by the
CLI) cancels the in-flight solve at its next checkpoint; the job is
re-queued *without* burning a retry attempt and the next lease resumes
from the checkpoint just written.
"""

from __future__ import annotations

import json
import os
import re
import time
import traceback
import uuid

from ..exceptions import (
    CertificationError,
    InfeasibleProblemError,
    JobError,
    ReproError,
)
from ..runtime.budget import Budget, CancellationToken, RunStatus
from .jobs import Job
from .lease import LeaseKeeper
from .store import JobStore

__all__ = ["ServiceWorker"]

# Heartbeat when neither the job config nor the worker pins one:
# a third of the lease keeps three beats inside every lease window.
_HEARTBEAT_FRACTION = 3.0


def fault_signature(error: BaseException) -> str:
    """Normalized identity of a failure for poison-job detection.

    Exception type plus its message with digit runs masked — so two
    attempts that crash the same way match even when the message
    embeds attempt counters, ordinals or addresses (fault-injection
    messages carry the checkpoint visit number, for example).
    """
    masked = re.sub(r"\d+", "#", str(error))
    return f"{type(error).__name__}:{masked}"


class ServiceWorker:
    """Claims and executes jobs from a :class:`JobStore`.

    Parameters
    ----------
    store:
        The shared job store.
    worker_id:
        Stable identity in leases/journal records; generated if omitted.
    poll_seconds:
        Idle sleep between claim attempts in :meth:`run_forever`.
    heartbeat_seconds:
        Default beat interval; a job config's ``heartbeat_seconds``
        overrides it, and both default to a third of the job's lease.
    reap:
        When true (the default), the worker also reaps expired leases
        before each claim — so a single-worker deployment still
        recovers jobs lost by a crashed predecessor.
    """

    def __init__(
        self,
        store: JobStore,
        worker_id: str | None = None,
        poll_seconds: float = 0.2,
        heartbeat_seconds: float | None = None,
        reap: bool = True,
    ):
        self.store = store
        self.worker_id = worker_id or f"w-{uuid.uuid4().hex[:8]}"
        self.poll_seconds = float(poll_seconds)
        self.heartbeat_seconds = heartbeat_seconds
        self.reap = reap
        self.jobs_run = 0
        self._draining = False
        self._active_token: CancellationToken | None = None
        self._active_job_id: str | None = None

    # ------------------------------------------------------------------
    # loop
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Stop after the in-flight job; cancel its solve now.

        The solve checkpoints best-so-far at its next budget
        checkpoint and unwinds; the job is re-queued for resumption.
        Safe to call from a signal handler.
        """
        self._draining = True
        token = self._active_token
        if token is not None:
            token.cancel()

    @property
    def draining(self) -> bool:
        return self._draining

    def run_once(self) -> bool:
        """Reap, claim and execute one job. False when queue is idle."""
        if self.reap:
            self.store.reap_expired()
        job = self.store.claim(self.worker_id)
        if job is None:
            return False
        self.execute(job)
        self.jobs_run += 1
        return True

    def run_forever(self, max_jobs: int | None = None) -> int:
        """Process jobs until drained (or *max_jobs*); returns count."""
        while not self._draining:
            if max_jobs is not None and self.jobs_run >= max_jobs:
                break
            if not self.run_once():
                time.sleep(self.poll_seconds)
        return self.jobs_run

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, job: Job) -> None:
        """Run one leased job to a journal-recorded outcome.

        Every exit path lands the job back in the store: COMPLETED,
        FAILED (non-retryable), CANCELLED, re-QUEUED (drain / retryable
        failure via the retry policy) or DEAD — unless the lease was
        lost mid-solve, in which case the result is discarded because
        the job already belongs to someone else.
        """
        job_id = job.job_id
        try:
            self._execute_inner(job)
        except JobError:
            # Lease lost while finalizing (reaped or re-owned): the new
            # owner's outcome wins; ours is abandoned.
            pass
        except (InfeasibleProblemError, CertificationError) as error:
            self._fail(job_id, error, retryable=False)
        except ReproError as error:
            self._fail(
                job_id, error, retryable=True,
                signature=fault_signature(error),
            )
        except Exception as error:  # noqa: BLE001 - worker must survive
            detail = "".join(
                traceback.format_exception_only(type(error), error)
            ).strip()
            self._fail(
                job_id, detail, retryable=True,
                signature=fault_signature(error),
            )

    def _fail(
        self, job_id: str, error, retryable: bool, signature: str | None = None
    ) -> None:
        try:
            self.store.fail(
                job_id,
                self.worker_id,
                str(error),
                retryable=retryable,
                signature=signature,
            )
        except JobError:
            pass  # lease already lost; the reaper handled the job

    def _execute_inner(self, job: Job) -> None:
        from ..fact.solver import FaCT

        store = self.store
        job_id = job.job_id
        checkpoint_path = store.checkpoint_path(job_id)
        resume_from = (
            checkpoint_path if os.path.exists(checkpoint_path) else None
        )

        overrides = {
            "checkpoint_path": checkpoint_path,
            "trace_path": store.events_path(job_id),
            # Keep the ledger for audit; the job directory owns it.
            "checkpoint_keep_on_complete": True,
        }
        if "certify" not in job.spec.config:
            # Service results ship with a certificate unless the spec
            # explicitly opts out (config entry "certify": "off").
            overrides["certify"] = "final"
        config = job.spec.build_config(**overrides)

        token = CancellationToken()
        budget = Budget(
            deadline_seconds=self._remaining_deadline(config, resume_from),
            token=token,
        )
        self._active_token = token
        self._active_job_id = job_id
        if self._draining:
            token.cancel()

        store.start_running(job_id, self.worker_id)
        keeper = LeaseKeeper(
            store,
            job_id,
            self.worker_id,
            self._heartbeat_for(job, config),
            token,
        )
        try:
            with keeper:
                collection = job.spec.build_collection()
                constraints = job.spec.build_constraints()
                solution = FaCT(config).solve(
                    collection,
                    constraints,
                    budget=budget,
                    resume_from=resume_from,
                )
        finally:
            self._active_token = None
            self._active_job_id = None

        if keeper.lease_lost:
            return  # job re-owned; discard our result

        result = self._result_payload(job, solution)
        if solution.status is RunStatus.CANCELLED:
            # Operator cancel or drain: persist best-so-far either way.
            store.write_result(job_id, result)
            if keeper.cancel_observed or job.cancel_requested:
                store.finalize_cancel(job_id, self.worker_id)
            else:
                store.requeue_drained(job_id, self.worker_id)
            return

        store.write_result(job_id, result)
        if solution.certificate is not None:
            store.write_certificate(
                job_id, solution.certificate.as_dict()
            )
        store.complete(
            job_id, self.worker_id, result_status=solution.status.value
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _heartbeat_for(self, job: Job, config) -> float:
        if config.heartbeat_seconds is not None:
            return config.heartbeat_seconds
        if self.heartbeat_seconds is not None:
            return self.heartbeat_seconds
        return self.store.lease_for(job) / _HEARTBEAT_FRACTION

    def _remaining_deadline(self, config, resume_from) -> float | None:
        """The seconds this attempt may spend.

        The worker owns the :class:`Budget` (the lease keeper needs its
        token), so the solver's own consumed-seconds carryover does not
        apply — replicate it here by reading the checkpoint directly.
        """
        deadline = config.deadline_seconds
        if deadline is None or resume_from is None:
            return deadline
        try:
            with open(resume_from, "r", encoding="utf-8") as handle:
                consumed = float(
                    json.load(handle).get("consumed_seconds", 0.0)
                )
        except (OSError, ValueError):
            consumed = 0.0
        return max(deadline - consumed, 1e-3)

    def _result_payload(self, job: Job, solution) -> dict:
        labels = {
            str(area): int(region)
            for area, region in solution.partition.labels().items()
        }
        return {
            "job_id": job.job_id,
            "worker_id": self.worker_id,
            "attempt": job.attempts,
            "backend": solution.backend,
            "summary": solution.summary(),
            "labels": labels,
        }
