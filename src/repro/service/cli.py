"""Service command line: ``python -m repro.service <command>``.

Commands
--------
``serve``
    Start the HTTP API (plus an optional fleet of worker subprocesses)
    over a store directory. SIGTERM/SIGINT drain gracefully: workers
    checkpoint and re-queue their in-flight solves, the server stops
    accepting requests, and every lease is either released or left to
    expire — no job is ever lost.
``worker``
    Run one worker loop against a store directory (what ``serve
    --workers N`` spawns as subprocesses, and what the crash-recovery
    tests SIGKILL).
``submit``
    Queue a job straight into the store (no HTTP round trip).
``status``
    Show one job, or per-state counts for the whole store.
``cancel``
    Request cancellation of a job.
``reap``
    One manual pass of lease expiry (normally automatic).

``python -m repro serve …`` is an alias for ``serve`` here.
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import time
from typing import Sequence

from ..exceptions import ReproError
from ..runtime.retry import RetryPolicy
from .jobs import JobSpec
from .store import JobStore
from .worker import ServiceWorker

__all__ = ["main"]


def _add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="job store directory (journal, leases, results)",
    )


def _add_retry(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retry-max-attempts", type=int, default=3, metavar="N",
        help="attempts per job before dead-lettering (default 3)",
    )
    parser.add_argument(
        "--retry-base-delay", type=float, default=0.5, metavar="SECONDS",
        help="backoff before the first retry (default 0.5)",
    )
    parser.add_argument(
        "--retry-backoff-factor", type=float, default=2.0, metavar="X",
        help="exponential backoff multiplier (default 2.0)",
    )
    parser.add_argument(
        "--retry-max-delay", type=float, default=60.0, metavar="SECONDS",
        help="backoff ceiling (default 60)",
    )
    parser.add_argument(
        "--lease-seconds", type=float, default=30.0, metavar="SECONDS",
        help="lease granted per claim; expiry re-queues the job "
        "(default 30)",
    )


def _store_from(args) -> JobStore:
    return JobStore(
        args.store,
        retry_policy=RetryPolicy(
            max_attempts=args.retry_max_attempts,
            base_delay_seconds=args.retry_base_delay,
            backoff_factor=args.retry_backoff_factor,
            max_delay_seconds=args.retry_max_delay,
        ),
        lease_seconds=args.lease_seconds,
    )


def _spawn_worker(args, index: int) -> subprocess.Popen:
    command = [
        sys.executable,
        "-m",
        "repro.service",
        "worker",
        "--store",
        args.store,
        "--worker-id",
        f"serve-w{index}",
        "--retry-max-attempts",
        str(args.retry_max_attempts),
        "--retry-base-delay",
        str(args.retry_base_delay),
        "--retry-backoff-factor",
        str(args.retry_backoff_factor),
        "--retry-max-delay",
        str(args.retry_max_delay),
        "--lease-seconds",
        str(args.lease_seconds),
    ]
    if args.heartbeat_seconds is not None:
        command += ["--heartbeat-seconds", str(args.heartbeat_seconds)]
    return subprocess.Popen(command)


def _run_serve(args) -> int:
    from .api import serve

    store = _store_from(args)
    server, reaper = serve(
        store,
        host=args.host,
        port=args.port,
        reap_seconds=args.reap_seconds,
        stall_seconds=args.stall_seconds,
    )
    workers = [_spawn_worker(args, index) for index in range(args.workers)]

    def _drain(signum, frame):
        # Graceful drain: workers checkpoint + re-queue, then exit; the
        # HTTP server stops from a helper thread (shutdown() must not
        # run on the serve_forever thread).
        for proc in workers:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        import threading

        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)

    host, port = server.server_address[:2]
    print(f"repro solve service on http://{host}:{port} "
          f"(store: {args.store}, workers: {args.workers})", flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        reaper.stop()
        server.server_close()
        deadline = time.monotonic() + args.drain_seconds
        for proc in workers:
            remaining = max(deadline - time.monotonic(), 0.1)
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        # Final reap so leases the drain released show as QUEUED.
        store.reap_expired()
    print("drained.", flush=True)
    return 0


def _run_worker(args) -> int:
    store = _store_from(args)
    worker = ServiceWorker(
        store,
        worker_id=args.worker_id,
        poll_seconds=args.poll_seconds,
        heartbeat_seconds=args.heartbeat_seconds,
    )

    signal.signal(signal.SIGTERM, lambda signum, frame: worker.drain())
    signal.signal(signal.SIGINT, lambda signum, frame: worker.drain())

    processed = worker.run_forever(max_jobs=args.max_jobs)
    print(f"worker {worker.worker_id}: {processed} job(s) processed",
          flush=True)
    return 0


def _run_submit(args) -> int:
    store = _store_from(args)
    config = json.loads(args.config) if args.config else {}
    retry = None
    if args.job_retry_max_attempts is not None:
        retry = RetryPolicy(
            max_attempts=args.job_retry_max_attempts,
            base_delay_seconds=args.retry_base_delay,
            backoff_factor=args.retry_backoff_factor,
            max_delay_seconds=args.retry_max_delay,
        ).as_dict()
    spec = JobSpec(
        dataset=args.dataset,
        scale=args.scale,
        dataset_seed=args.dataset_seed,
        constraints=args.constraint,
        config=config,
        priority=args.priority,
        deadline_seconds=args.deadline,
        retry=retry,
        label=args.label,
    )
    job = store.submit(spec)
    print(json.dumps(job.as_dict(), indent=1, sort_keys=True))
    return 0


def _run_status(args) -> int:
    store = _store_from(args)
    if args.job_id:
        print(json.dumps(store.get(args.job_id).as_dict(), indent=1,
                         sort_keys=True))
        return 0
    counts = store.counts()
    print(json.dumps(
        {
            "counts": counts,
            "jobs": [
                {"job_id": job.job_id, "state": job.state,
                 "attempts": job.attempts, "label": job.spec.label}
                for job in store.jobs()
            ],
        },
        indent=1, sort_keys=True,
    ))
    return 0


def _run_cancel(args) -> int:
    store = _store_from(args)
    job = store.cancel(args.job_id)
    print(f"{job.job_id}: {job.state}"
          + (" (cancel requested)" if job.cancel_requested else ""))
    return 0


def _run_reap(args) -> int:
    store = _store_from(args)
    reaped = store.reap_expired()
    for job in reaped:
        print(f"{job.job_id}: {job.state} ({job.detail})")
    print(f"{len(reaped)} lease(s) reaped")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="durable EMP solve service (job queue + worker fleet)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve_cmd = commands.add_parser("serve", help="HTTP API + worker fleet")
    _add_store(serve_cmd)
    _add_retry(serve_cmd)
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8008)
    serve_cmd.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker subprocesses to run (0 = API only)",
    )
    serve_cmd.add_argument(
        "--heartbeat-seconds", type=float, default=None, metavar="SECONDS",
        help="worker heartbeat interval (default: lease/3)",
    )
    serve_cmd.add_argument(
        "--reap-seconds", type=float, default=1.0, metavar="SECONDS",
        help="lease-expiry sweep cadence (default 1.0)",
    )
    serve_cmd.add_argument(
        "--drain-seconds", type=float, default=30.0, metavar="SECONDS",
        help="grace period for workers on shutdown (default 30)",
    )
    serve_cmd.add_argument(
        "--stall-seconds", type=float, default=10.0, metavar="SECONDS",
        help="watchdog silence threshold before a running job is "
        "reported stalled (0 disables the watchdog; default 10)",
    )

    worker_cmd = commands.add_parser("worker", help="run one worker loop")
    _add_store(worker_cmd)
    _add_retry(worker_cmd)
    worker_cmd.add_argument("--worker-id", default=None)
    worker_cmd.add_argument(
        "--poll-seconds", type=float, default=0.2, metavar="SECONDS"
    )
    worker_cmd.add_argument(
        "--heartbeat-seconds", type=float, default=None, metavar="SECONDS"
    )
    worker_cmd.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="exit after N jobs (default: run until drained)",
    )

    submit_cmd = commands.add_parser("submit", help="queue a job")
    _add_store(submit_cmd)
    _add_retry(submit_cmd)
    submit_cmd.add_argument("--dataset", default="2k")
    submit_cmd.add_argument("--scale", type=float, default=1.0)
    submit_cmd.add_argument("--dataset-seed", type=int, default=None)
    submit_cmd.add_argument(
        "--constraint", "-c", action="append", default=[],
        metavar="AGG:ATTR:L:U", help="may repeat; '-' for an open bound",
    )
    submit_cmd.add_argument(
        "--config", default=None, metavar="JSON",
        help='FaCTConfig overrides, e.g. \'{"rng_seed": 11, "n_jobs": 2}\'',
    )
    submit_cmd.add_argument("--priority", type=int, default=0)
    submit_cmd.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget",
    )
    submit_cmd.add_argument(
        "--job-retry-max-attempts", type=int, default=None, metavar="N",
        help="override the service retry policy for this job",
    )
    submit_cmd.add_argument("--label", default="")

    status_cmd = commands.add_parser("status", help="job / store status")
    _add_store(status_cmd)
    _add_retry(status_cmd)
    status_cmd.add_argument("job_id", nargs="?", default=None)

    cancel_cmd = commands.add_parser("cancel", help="cancel a job")
    _add_store(cancel_cmd)
    _add_retry(cancel_cmd)
    cancel_cmd.add_argument("job_id")

    reap_cmd = commands.add_parser("reap", help="sweep expired leases once")
    _add_store(reap_cmd)
    _add_retry(reap_cmd)

    args = parser.parse_args(argv)
    runners = {
        "serve": _run_serve,
        "worker": _run_worker,
        "submit": _run_submit,
        "status": _run_status,
        "cancel": _run_cancel,
        "reap": _run_reap,
    }
    try:
        return runners[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - CLI dispatch
    raise SystemExit(main())
